package iroram

// Benchmarks for the extension studies (Ring ORAM integration, co-run
// interference, the Section IV-D future work, the Section VI-F energy
// model, and the design-choice ablations) plus the functional-store
// primitives added beyond the simulator.

import (
	"bytes"
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/core"
	"iroram/internal/dram"
	"iroram/internal/merkle"
	"iroram/internal/rng"
)

func BenchmarkRingIntegration(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"dee"}
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("ring", opts)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "gmean", "Ring blk/acc", "ring-blk-per-acc")
	}
}

func BenchmarkCoRunInterference(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("corun", opts)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "gcc+mcf", "Baseline", "interference")
	}
}

func BenchmarkFutureWorkProactiveRemap(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"mcf"}
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("futurework", opts)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "gmean", "IR-ORAM/LLC-D", "proactive-speedup")
	}
}

func BenchmarkEnergyModel(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"dee"}
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("energy", opts)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "mean", "IR-ORAM energy", "energy-ratio")
	}
}

func BenchmarkAblationSStashAssoc(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"gcc"}
	for i := 0; i < b.N; i++ {
		if _, err := Experiment("ablation-sstash", opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterval(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"gcc"}
	opts.Requests = 800
	for i := 0; i < b.N; i++ {
		if _, err := Experiment("ablation-interval", opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContextSwitch(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := core.NewController(cfg, mem, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	is := core.NewIssuer(c, nil)
	r := rng.New(2)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = is.ReadBlock(now+500, block.ID(1+2*r.Uint64n(1000)))
		now = c.ContextSwitch(now)
	}
}

func BenchmarkMerkleUpdateVerify(b *testing.B) {
	tr, err := merkle.New(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	d := merkle.LeafDigest(0, []byte("payload"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % (1 << 12)
		if err := tr.Update(idx, d); err != nil {
			b.Fatal(err)
		}
		if err := tr.Verify(idx, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecursiveStoreAccess(b *testing.B) {
	store, err := NewRecursiveObliviousStore(ObliviousStoreConfig{
		Blocks: 2048, BlockSize: 64, Key: bytes.Repeat([]byte{2}, 32), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	payload := []byte("recursive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Write(r.Uint64n(2048), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrityStoreAccess(b *testing.B) {
	store, err := NewObliviousStore(ObliviousStoreConfig{
		Blocks: 2048, BlockSize: 64, Key: bytes.Repeat([]byte{3}, 32),
		Seed: 1, Integrity: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(4)
	payload := []byte("sealed+merkle")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Write(r.Uint64n(2048), payload); err != nil {
			b.Fatal(err)
		}
	}
}
