module iroram

go 1.22
