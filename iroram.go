package iroram

import (
	"io"

	"iroram/internal/config"
	"iroram/internal/experiments"
	"iroram/internal/flight"
	"iroram/internal/metrics"
	"iroram/internal/obliv"
	"iroram/internal/runner"
	"iroram/internal/sim"
	"iroram/internal/stats"
	"iroram/internal/trace"
)

// Config is the full simulator configuration (ORAM geometry, DRAM timing,
// caches, CPU model, scheme). Validate before use; the preset constructors
// return valid configurations.
type Config = config.System

// Scheme selects one of the compared designs.
type Scheme = config.Scheme

// ZProfile is the per-level bucket-size profile that IR-Alloc tunes.
type ZProfile = config.ZProfile

// System is one wired simulation instance.
type System = sim.System

// Result summarizes one run.
type Result = sim.Result

// Table is the row/series result container every experiment returns.
type Table = stats.Table

// TraceRequest is one record of a workload trace.
type TraceRequest = trace.Request

// TraceGenerator produces workload request streams.
type TraceGenerator = trace.Generator

// PaperConfig returns the Table I system: L=25, 8 GB protected space with
// 4 GB user data, 10 tree-top levels on-chip, T=1000, 2 MB LLC. Full scale:
// budget ~1.5 GB of memory per System.
func PaperConfig() Config { return config.Paper() }

// ScaledConfig returns the default experiment geometry (L=21): the same
// level structure relative to the tree-top cache at 1/16 the capacity.
func ScaledConfig() Config { return config.Scaled() }

// TinyConfig returns a small geometry (L=14) for tests and quick smoke
// runs.
func TinyConfig() Config { return config.Tiny() }

// Baseline is Freecursive Path ORAM with the dedicated 10-level tree-top
// cache, subtree layout and background eviction.
func Baseline() Scheme { return config.Baseline() }

// Rho is the ρ design (smaller hot tree, fixed 1:2 issue pattern).
func Rho() Scheme { return config.RhoScheme() }

// IRAlloc is the utilization-aware node-size allocator alone.
func IRAlloc() Scheme { return config.IRAllocScheme() }

// IRStash is the double-indexed tree-top sub-stash alone.
func IRStash() Scheme { return config.IRStashScheme() }

// IRDWB is the dummy-to-early-write-back conversion alone.
func IRDWB() Scheme { return config.IRDWBScheme() }

// IROram integrates IR-Alloc, IR-Stash and IR-DWB.
func IROram() Scheme { return config.IROramScheme() }

// LLCD is Baseline plus the delayed block remapping policy.
func LLCD() Scheme { return config.LLCDScheme() }

// IROramLLCD is the paper's Section IV-D future-work extension: the full
// IR-ORAM stack over an LLC-D baseline with proactive PosMap prefetching.
func IROramLLCD() Scheme { return config.IROramOnLLCD() }

// Ring is Ring ORAM (Ren et al.), the alternative read protocol Section
// VII cites as orthogonal to IR-ORAM.
func Ring() Scheme { return config.RingScheme() }

// RingWithIRAlloc composes Ring ORAM with the IR-Alloc profile.
func RingWithIRAlloc() Scheme { return config.RingIRAlloc() }

// AllSchemes returns the Fig 10 scheme list in plot order.
func AllSchemes() []Scheme { return config.AllSchemes() }

// NewSystem builds a simulation instance for cfg.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// Benchmarks returns the Table II benchmark names.
func Benchmarks() []string { return trace.BenchmarkNames() }

// BenchmarkTrace returns the synthetic generator for a Table II benchmark
// over a protected space of universe blocks; it panics on unknown names
// (use trace names from Benchmarks).
func BenchmarkTrace(name string, universe, seed uint64) TraceGenerator {
	return trace.MustBenchmark(name, universe, seed)
}

// RandomTrace returns a uniform random workload with the given write
// fraction.
func RandomTrace(universe uint64, writeFraction float64, seed uint64) TraceGenerator {
	return trace.Random(universe, writeFraction, seed)
}

// MixTrace returns the paper's 3-benchmark mix (gcc + mcf + lbm).
func MixTrace(universe, seed uint64) TraceGenerator {
	return trace.PaperMix(universe, seed)
}

// NewTrace returns the generator for a named workload: "mix", "random", or
// a Table II benchmark (see Benchmarks) over a protected space of universe
// blocks.
func NewTrace(name string, universe, seed uint64) (TraceGenerator, error) {
	switch name {
	case "mix":
		return MixTrace(universe, seed), nil
	case "random":
		return RandomTrace(universe, 0.5, seed), nil
	default:
		return trace.Benchmark(name, universe, seed)
	}
}

// RunBenchmark is the one-call convenience: build a system for cfg, run the
// named workload ("mix", "random", or a Table II benchmark) for requests
// records, and return the result.
func RunBenchmark(cfg Config, benchmark string, requests int) (Result, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	gen, err := NewTrace(benchmark, cfg.ORAM.DataBlocks(), cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	return sys.Run(gen, requests), nil
}

// ExperimentOptions scales a figure regeneration run and configures its
// parallelism: Jobs bounds the number of concurrently simulated
// (scheme, benchmark) cells (0 means GOMAXPROCS; 1 reproduces the
// sequential loops exactly), Context cancels an in-flight sweep at the next
// cell boundary, and Progress observes per-batch completion. Results are
// bit-identical for every Jobs value — see the experiments package doc for
// the determinism contract.
type ExperimentOptions = experiments.Options

// Progress reports how far a parallel experiment batch has advanced; it is
// delivered to ExperimentOptions.Progress after each completed cell.
type Progress = runner.Progress

// CellSeed derives a stable per-cell seed from a base seed and identity
// labels (scheme, benchmark, sweep index, ...). Use it to decorrelate
// repetitions of a sweep without sharing an RNG stream across cells, which
// would make results depend on scheduling.
func CellSeed(base uint64, labels ...string) uint64 {
	return runner.CellSeed(base, labels...)
}

// DefaultExperiments returns full-fidelity options (scaled geometry).
func DefaultExperiments() ExperimentOptions { return experiments.Default() }

// QuickExperiments returns reduced options for smoke runs and benchmarks.
func QuickExperiments() ExperimentOptions { return experiments.Quick() }

// MetricDesc describes one registered instrument: name, unit, help text and
// kind. The name set and meanings are the JSONL artifact schema documented
// in docs/METRICS.md.
type MetricDesc = metrics.Desc

// MetricsSnapshot is a point-in-time copy of every registered instrument,
// as embedded in Result.Metrics and in JSONL artifact records.
type MetricsSnapshot = metrics.Snapshot

// MetricDescriptors returns the full instrument catalogue of a System —
// the registry's self-description, sorted by name. The set is identical
// for every configuration (scheme-specific counters simply stay zero), so
// any valid config describes the schema; `make docscheck` validates
// docs/METRICS.md against it.
func MetricDescriptors() []MetricDesc {
	sys, err := NewSystem(TinyConfig())
	if err != nil {
		panic("iroram: TinyConfig no longer constructs: " + err.Error())
	}
	return sys.Metrics().Descs()
}

// ArtifactSchemaVersion is the JSONL artifact schema version (the "schema"
// field of every record).
const ArtifactSchemaVersion = experiments.SchemaVersion

// ArtifactRecord is one JSONL artifact line: the full metric dump of one
// simulated (figure, scheme, benchmark) cell. See docs/METRICS.md.
type ArtifactRecord = experiments.Record

// ArtifactLog accumulates artifact records during a sweep and writes them
// as JSONL sidecar files; attach one to ExperimentOptions.Artifacts. It is
// single-goroutine, like everything on the driver's calling path.
type ArtifactLog = experiments.ArtifactLog

// NewArtifactRecord assembles an artifact record from one run result; the
// figure field names the producing driver (cmd/irsim uses "irsim").
func NewArtifactRecord(figure, scheme, bench, label string, seed uint64, r Result) ArtifactRecord {
	return experiments.NewRecord(figure, scheme, bench, label, seed, r)
}

// FlightRecorder is the cycle-domain flight recorder: a fixed-capacity ring
// of cycle-stamped events sampled from the simulation. Attach one to a
// System before its first Step; a nil recorder is valid and inert, so the
// steady-state cost when tracing is off is a single branch (and zero
// allocations either way — `make alloccheck` enforces both).
type FlightRecorder = flight.Recorder

// NewFlightRecorder returns a recorder holding up to capacity events
// (0 means the default, 16384) that samples one in every sampleEvery path
// accesses (0 means every access). When the ring wraps, the oldest events
// are dropped and counted; see Trace.Dropped in the export.
func NewFlightRecorder(capacity int, sampleEvery uint64) *FlightRecorder {
	return flight.New(capacity, sampleEvery)
}

// FlightTrace is an immutable snapshot of a recorder's ring, as captured
// into Result.Flight when a traced run completes.
type FlightTrace = flight.Trace

// FlightProcess names one trace for export: each process becomes one
// Perfetto process row with the controller phases and DRAM channels as its
// threads.
type FlightProcess = flight.Process

// WriteFlightTrace writes the processes as one Chrome trace-event JSON
// document (loadable at https://ui.perfetto.dev). Output bytes are a pure
// function of the traces, so identical runs export identical files.
func WriteFlightTrace(w io.Writer, procs []FlightProcess) error {
	return flight.Write(w, procs)
}

// FlightCell pairs one simulated cell's identity with its trace snapshot,
// as accumulated by a FlightLog during a sweep.
type FlightCell = experiments.FlightCell

// FlightLog accumulates flight traces during a sweep and writes them as one
// <figure>.trace.json file per figure; attach one to
// ExperimentOptions.Flight alongside an ArtifactLog. Single-goroutine, like
// everything on the driver's calling path.
type FlightLog = experiments.FlightLog

// ObliviousStoreConfig sizes a functional oblivious store.
type ObliviousStoreConfig = obliv.Config

// ObliviousStore is a working Path ORAM over sealed memory.
type ObliviousStore = obliv.Store

// NewObliviousStore builds a functional Path ORAM: real data, real
// AES-CTR+HMAC sealing, oblivious access pattern. Set Integrity for the
// Merkle tree that additionally defeats replay of stale memory.
func NewObliviousStore(cfg ObliviousStoreConfig) (*ObliviousStore, error) {
	return obliv.NewStore(cfg)
}

// RecursiveObliviousStore is a functional Path ORAM whose position map
// lives in a second, 16x-smaller Path ORAM (Freecursive-style recursion).
type RecursiveObliviousStore = obliv.RecursiveStore

// NewRecursiveObliviousStore builds the two-level construction: client
// state shrinks to one leaf per 16 blocks, and every access costs exactly
// one position-map path plus one data path.
func NewRecursiveObliviousStore(cfg ObliviousStoreConfig) (*RecursiveObliviousStore, error) {
	return obliv.NewRecursiveStore(cfg)
}
