package iroram

import (
	"testing"
)

func TestPublicMixAndRandomArms(t *testing.T) {
	for _, bench := range []string{"mix", "random"} {
		res, err := RunBenchmark(TinyConfig(), bench, 800)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%s: empty run", bench)
		}
	}
}

func TestPublicTraceConstructors(t *testing.T) {
	u := TinyConfig().ORAM.DataBlocks()
	for _, gen := range []TraceGenerator{
		BenchmarkTrace("gcc", u, 1),
		RandomTrace(u, 0.5, 1),
		MixTrace(u, 1),
	} {
		req, ok := gen.Next()
		if !ok || req.Addr >= u {
			t.Errorf("%s: bad first record %+v ok=%v", gen.Name(), req, ok)
		}
	}
}

func TestPublicPresetsDiffer(t *testing.T) {
	p, s, ti := PaperConfig(), ScaledConfig(), TinyConfig()
	if !(p.ORAM.Levels > s.ORAM.Levels && s.ORAM.Levels > ti.ORAM.Levels) {
		t.Error("preset geometry ordering wrong")
	}
	for _, cfg := range []Config{p, s, ti} {
		if err := cfg.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestPublicSchemeNames(t *testing.T) {
	want := map[string]Scheme{
		"Baseline": Baseline(), "Rho": Rho(), "IR-Alloc": IRAlloc(),
		"IR-Stash": IRStash(), "IR-DWB": IRDWB(), "IR-ORAM": IROram(),
		"LLC-D": LLCD(),
	}
	for name, sch := range want {
		if sch.Name != name {
			t.Errorf("scheme %q reports name %q", name, sch.Name)
		}
	}
	if len(AllSchemes()) != 7 {
		t.Errorf("AllSchemes has %d entries", len(AllSchemes()))
	}
}

func TestPublicNewSystemValidates(t *testing.T) {
	bad := TinyConfig()
	bad.ORAM.StashCapacity = 0
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPublicBenchmarkTracePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BenchmarkTrace("nope", 100, 1)
}
