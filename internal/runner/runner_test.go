package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 16} {
		got, err := Map(Pool{Jobs: jobs}, 50, func(i int) (int, error) {
			// Finish out of order: later indices sleep less.
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var cur, peak atomic.Int64
	_, err := Map(Pool{Jobs: jobs}, 40, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("observed %d concurrent cells, want <= %d", p, jobs)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errBoom := errors.New("boom")
	for _, jobs := range []int{1, 4} {
		_, err := Map(Pool{Jobs: jobs}, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("cell %d: %w", i, errBoom)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, errBoom) {
			t.Fatalf("jobs=%d: err = %v, want wrapped boom", jobs, err)
		}
		// Sequential must report cell 7; parallel reports the lowest failed
		// index among the cells that ran, which is 7 here because cell 7 is
		// always dispatched before cell 13.
		if want := "cell 7: boom"; err.Error() != want {
			t.Errorf("jobs=%d: err = %q, want %q", jobs, err.Error(), want)
		}
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	var started atomic.Int64
	_, err := Map(Pool{Jobs: 2}, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("first cell fails")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 20 {
		t.Errorf("%d cells started after an immediate failure; dispatch not stopped", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	var once sync.Once
	start := time.Now()
	_, err := Map(Pool{Jobs: 2, Context: ctx}, 1000, func(i int) (int, error) {
		done.Add(1)
		once.Do(cancel) // cancel as soon as the first cell runs
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; want prompt return", elapsed)
	}
	if n := done.Load(); n > 20 {
		t.Errorf("%d cells ran after cancellation", n)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(Pool{Jobs: 1, Context: ctx}, 10, func(i int) (int, error) {
		ran = true
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("a cell ran under a pre-cancelled context")
	}
}

func TestMapProgress(t *testing.T) {
	for _, jobs := range []int{1, 3} {
		var mu sync.Mutex
		var seen []int
		_, err := Map(Pool{Jobs: jobs, OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Total != 12 {
				t.Errorf("Total = %d, want 12", p.Total)
			}
			seen = append(seen, p.Done)
		}}, 12, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 12 {
			t.Fatalf("jobs=%d: %d progress reports, want 12", jobs, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("jobs=%d: Done sequence %v not monotone by 1", jobs, seen)
			}
		}
	}
}

func TestProgressETA(t *testing.T) {
	p := Progress{Done: 2, Total: 6, Elapsed: 2 * time.Second}
	if eta := p.ETA(); eta != 4*time.Second {
		t.Errorf("ETA = %v, want 4s", eta)
	}
	if eta := (Progress{Done: 0, Total: 5}).ETA(); eta != 0 {
		t.Errorf("ETA before first cell = %v, want 0", eta)
	}
	if eta := (Progress{Done: 5, Total: 5, Elapsed: time.Second}).ETA(); eta != 0 {
		t.Errorf("ETA at completion = %v, want 0", eta)
	}
	if f := (Progress{Done: 3, Total: 4}).Fraction(); f != 0.75 {
		t.Errorf("Fraction = %v, want 0.75", f)
	}
}

func TestMapZeroCells(t *testing.T) {
	got, err := Map(Pool{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestCellSeedStableAndDistinct(t *testing.T) {
	a := CellSeed(1, "IR-ORAM", "mcf")
	if b := CellSeed(1, "IR-ORAM", "mcf"); a != b {
		t.Errorf("CellSeed not stable: %d vs %d", a, b)
	}
	seen := map[uint64][]string{}
	for _, labels := range [][]string{
		{"IR-ORAM", "mcf"}, {"IR-ORAM", "gcc"}, {"Baseline", "mcf"},
		{"IR-ORAMm", "cf"}, // label-boundary ambiguity must not collide
		{}, {"x"},
	} {
		s := CellSeed(1, labels...)
		if prev, dup := seen[s]; dup {
			t.Errorf("CellSeed collision: %v and %v -> %d", prev, labels, s)
		}
		seen[s] = labels
	}
	if CellSeed(1, "a") == CellSeed(2, "a") {
		t.Error("CellSeed ignores the base seed")
	}
}

// TestLimitBoundsAcrossPools runs several concurrent Map batches sharing one
// Limit and asserts the cross-pool peak concurrency never exceeds the
// limit's capacity even though each pool alone could run more workers.
func TestLimitBoundsAcrossPools(t *testing.T) {
	const capTokens = 2
	limit := NewLimit(capTokens)
	if limit.Cap() != capTokens {
		t.Fatalf("Cap() = %d, want %d", limit.Cap(), capTokens)
	}
	var cur, peak atomic.Int64
	cell := func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return struct{}{}, nil
	}
	var wg sync.WaitGroup
	for pool := 0; pool < 4; pool++ {
		jobs := 1 + pool // cover the inline path (jobs=1) and worker pools
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Map(Pool{Jobs: jobs, Limit: limit}, 12, cell); err != nil {
				t.Errorf("jobs=%d: %v", jobs, err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capTokens {
		t.Errorf("observed %d concurrent cells across pools, want <= %d", p, capTokens)
	}
}

// TestLimitAcquireCancellation: a cancelled sweep must not sit in the token
// queue — Map returns the context error instead of executing more cells.
func TestLimitDoesNotQueueAfterCancel(t *testing.T) {
	limit := NewLimit(1)
	ctx, cancel := context.WithCancel(context.Background())
	blocker := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the only token until after the cancelled Map returns
		defer wg.Done()
		_, err := Map(Pool{Jobs: 1, Limit: limit}, 1, func(int) (int, error) {
			<-blocker
			return 0, nil
		})
		if err != nil {
			t.Errorf("token holder: %v", err)
		}
	}()
	// Wait for the token to be held, then cancel the second sweep.
	for len(limit.tokens) == 0 {
		time.Sleep(10 * time.Microsecond)
	}
	cancel()
	ran := false
	_, err := Map(Pool{Jobs: 1, Context: ctx, Limit: limit}, 1, func(int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("cell ran despite cancelled context and exhausted limit")
	}
	close(blocker)
	wg.Wait()
}

// TestLimitDefaultsToGOMAXPROCS pins the n <= 0 fallback.
func TestLimitDefaultsToGOMAXPROCS(t *testing.T) {
	if got := NewLimit(0).Cap(); got < 1 {
		t.Errorf("Cap() = %d, want >= 1", got)
	}
}
