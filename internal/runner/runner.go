// Package runner fans independent simulation cells across a bounded worker
// pool with deterministic result collection.
//
// The experiment drivers in internal/experiments evaluate grids of
// (scheme × benchmark) cells. Every cell constructs a private sim.System and
// trace.Generator from the cell's configuration and seed, so cells share no
// mutable state and are embarrassingly parallel. This package supplies the
// one fan-out primitive they all use, Map, the seeding helper CellSeed, and
// the cross-pool concurrency bound Limit that lets several overlapping
// batches (the -fig all figure drivers) share one global worker budget.
//
// # Determinism contract
//
// Map guarantees that its result slice is ordered by cell index, never by
// completion order, and every cell function must be a pure function of its
// index (all randomness derived from an explicit per-cell seed, never from a
// shared RNG stream or from scheduling). Under that contract the output of a
// sweep is bit-identical for every worker count: Pool{Jobs: 1} reproduces
// the historical sequential loops exactly, and Pool{Jobs: n} produces the
// same bytes faster.
//
// # Concurrency contract
//
// A sim.System (and every generator, stash and DRAM model inside it) is
// single-goroutine: parallelism is always one System per worker, built
// inside the cell function. Cell functions run on pool goroutines; anything
// they close over must be read-only for the duration of the sweep.
// Cancellation is checked at cell boundaries — an individual cell, once
// started, runs to completion (the simulators have no preemption points),
// but no new cell starts after the context is cancelled or a cell fails.
package runner

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Progress reports how far a batch of cells has advanced. It is delivered to
// Pool.OnProgress after each cell completes.
type Progress struct {
	// Done and Total count completed and scheduled cells of the batch.
	Done, Total int
	// Elapsed is the wall-clock time since the batch started.
	Elapsed time.Duration
}

// Fraction returns completion as a value in [0, 1].
func (p Progress) Fraction() float64 {
	if p.Total == 0 {
		return 1
	}
	return float64(p.Done) / float64(p.Total)
}

// ETA estimates the remaining wall-clock time by linear extrapolation of the
// per-cell rate observed so far; it returns 0 until the first cell lands.
func (p Progress) ETA() time.Duration {
	if p.Done == 0 || p.Done >= p.Total {
		return 0
	}
	return p.Elapsed / time.Duration(p.Done) * time.Duration(p.Total-p.Done)
}

// Pool configures how a batch of independent cells is executed.
//
// The zero value is valid: it runs on GOMAXPROCS workers with a background
// context and no progress reporting.
type Pool struct {
	// Jobs bounds the number of concurrently executing cells. Zero or
	// negative means runtime.GOMAXPROCS(0). Jobs == 1 executes cells inline
	// on the calling goroutine, reproducing a plain sequential loop.
	Jobs int
	// Context cancels the sweep at the next cell boundary; nil means
	// context.Background().
	Context context.Context
	// OnProgress, when non-nil, observes each completed cell. Calls are
	// serialized (never concurrent with each other), but under Jobs > 1 they
	// arrive in completion order, so Done is monotone while the cell that
	// finished is unspecified.
	OnProgress func(Progress)
	// Limit, when non-nil, additionally bounds cell execution across every
	// pool sharing the Limit: each cell acquires one token for the duration
	// of its function. Jobs stays the per-batch worker bound; Limit is the
	// machine-wide bound when several batches (the overlapped figure
	// drivers of -fig all) run concurrently. A nil Limit changes nothing.
	Limit *Limit
}

// Limit is a counting semaphore shared by several pools: together with
// Pool.Limit it caps how many cells across all participating batches
// execute at any moment, regardless of how many worker goroutines the
// individual pools spawned.
//
// Sharing a Limit is safe with single-flight memoization layered inside the
// cell functions (internal/cellcache): a waiter blocked on an in-flight
// cell does hold its token, but the owner of that cell acquired its own
// token before registering the entry and never re-acquires, so the owner
// always runs to completion and no token cycle can form.
type Limit struct {
	tokens chan struct{}
}

// NewLimit returns a Limit admitting n concurrent cells; n <= 0 means
// runtime.GOMAXPROCS(0).
func NewLimit(n int) *Limit {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limit{tokens: make(chan struct{}, n)}
}

// Cap returns the number of concurrent cells the limit admits.
func (l *Limit) Cap() int { return cap(l.tokens) }

// acquire blocks until a token is free or ctx is cancelled.
func (l *Limit) acquire(ctx context.Context) error {
	select {
	case l.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *Limit) release() { <-l.tokens }

func (p Pool) jobs() int {
	if p.Jobs > 0 {
		return p.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (p Pool) context() context.Context {
	if p.Context != nil {
		return p.Context
	}
	return context.Background()
}

// Map runs fn(i) for every i in [0, n) on the pool's workers and returns the
// results ordered by index. The first cell error cancels the sweep: cells
// already in flight finish, no new cell starts, and the error of the
// lowest-index failed cell is returned. If the pool's context is cancelled
// the sweep stops the same way and returns the context's error.
func Map[T any](p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	outer := p.context()
	jobs := p.jobs()
	if jobs > n {
		jobs = n
	}
	start := time.Now()

	// call wraps fn with the shared cross-pool token, when one is
	// configured. The token covers exactly one cell; acquisition respects
	// cancellation so a cancelled sweep never queues for execution slots.
	call := func(ctx context.Context, i int) (T, error) {
		if p.Limit != nil {
			if err := p.Limit.acquire(ctx); err != nil {
				var zero T
				return zero, err
			}
			defer p.Limit.release()
		}
		return fn(i)
	}

	if jobs <= 1 {
		// Inline fast path: byte-for-byte the historical sequential loop,
		// with cancellation checked between cells.
		for i := 0; i < n; i++ {
			if err := outer.Err(); err != nil {
				return nil, err
			}
			v, err := call(outer, i)
			if err != nil {
				return nil, err
			}
			results[i] = v
			p.report(Progress{Done: i + 1, Total: n, Elapsed: time.Since(start)})
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(outer)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error
		errIndex = -1
	)
	// The feeder stops handing out indices as soon as the sweep is
	// cancelled, which is what bounds post-error work to the cells already
	// in flight.
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := call(ctx, i)
				mu.Lock()
				if err != nil {
					if errIndex < 0 || i < errIndex {
						firstErr, errIndex = err, i
					}
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = v
				done++
				p.report(Progress{Done: done, Total: n, Elapsed: time.Since(start)})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if errIndex >= 0 {
		return nil, firstErr
	}
	if err := outer.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func (p Pool) report(pr Progress) {
	if p.OnProgress != nil {
		p.OnProgress(pr)
	}
}

// CellSeed derives a stable per-cell seed from a base seed and the cell's
// identity labels (scheme name, benchmark name, sweep index, ...) via
// FNV-1a. Identical inputs yield the identical seed on every platform and in
// every scheduling order, and distinct label tuples yield uncorrelated seeds
// once passed through the simulator's splitmix64 seeding.
//
// The experiment drivers seed each cell as a pure function of (base seed,
// cell identity); for single-seed sweeps that function is the identity on
// the base seed (each cell builds a private System from it), while
// multi-seed sweeps use CellSeed to decorrelate repetitions without any
// shared RNG stream.
func CellSeed(base uint64, labels ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], base)
	h.Write(b[:])
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	return h.Sum64()
}
