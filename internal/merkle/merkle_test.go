package merkle

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEmptyTreeConsistent(t *testing.T) {
	tr, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	var zero Digest
	for i := 0; i < 10; i++ {
		if err := tr.Verify(i, zero); err != nil {
			t.Errorf("leaf %d of fresh tree fails: %v", i, err)
		}
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tr, _ := New(16)
	d := LeafDigest(3, []byte("hello"))
	if err := tr.Update(3, d); err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(3, d); err != nil {
		t.Errorf("verify after update: %v", err)
	}
	if err := tr.Verify(3, LeafDigest(3, []byte("other"))); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong digest accepted: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	// The attack sealer MACs cannot stop: write v1, remember it, write v2,
	// then "replay" v1. The root has moved on, so v1 must fail.
	tr, _ := New(8)
	v1 := LeafDigest(5, []byte("v1"))
	v2 := LeafDigest(5, []byte("v2"))
	tr.Update(5, v1)
	tr.Update(5, v2)
	if err := tr.Verify(5, v1); !errors.Is(err, ErrMismatch) {
		t.Errorf("replayed old version accepted: %v", err)
	}
	if err := tr.Verify(5, v2); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
}

func TestRootChangesOnEveryUpdate(t *testing.T) {
	tr, _ := New(32)
	seen := map[Digest]bool{tr.Root(): true}
	for i := 0; i < 32; i++ {
		tr.Update(i, LeafDigest(i, []byte{byte(i)}))
		r := tr.Root()
		if seen[r] {
			t.Fatalf("root repeated after update %d", i)
		}
		seen[r] = true
	}
}

func TestInteriorTamperDetected(t *testing.T) {
	tr, _ := New(8)
	d := LeafDigest(2, []byte("x"))
	tr.Update(2, d)
	// Corrupt an interior node the leaf's verification path crosses. The
	// root (nodes[1]) is trusted, so tamper below it.
	if !tr.Tamper(2) && !tr.Tamper(3) {
		t.Fatal("tamper failed")
	}
	bad := 0
	for i := 0; i < 8; i++ {
		var want Digest
		if i == 2 {
			want = d
		}
		if err := tr.Verify(i, want); err != nil {
			bad++
		}
	}
	if bad == 0 {
		t.Error("interior tampering went completely undetected")
	}
}

func TestProofRoundTrip(t *testing.T) {
	tr, _ := New(20)
	for i := 0; i < 20; i++ {
		tr.Update(i, LeafDigest(i, []byte{byte(i), byte(i >> 1)}))
	}
	root := tr.Root()
	for i := 0; i < 20; i++ {
		proof, err := tr.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		d := LeafDigest(i, []byte{byte(i), byte(i >> 1)})
		if err := VerifyProof(root, i, d, proof); err != nil {
			t.Errorf("leaf %d proof rejected: %v", i, err)
		}
		// A proof for the wrong leaf must fail.
		if i > 0 {
			if err := VerifyProof(root, i-1, d, proof); err == nil {
				t.Errorf("leaf %d proof verified under wrong index", i)
			}
		}
	}
}

func TestBounds(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero-leaf tree accepted")
	}
	tr, _ := New(4)
	var d Digest
	if err := tr.Update(4, d); err == nil {
		t.Error("out-of-range update accepted")
	}
	if err := tr.Verify(-1, d); err == nil {
		t.Error("negative verify accepted")
	}
	if _, err := tr.Proof(9); err == nil {
		t.Error("out-of-range proof accepted")
	}
	if tr.Tamper(0) || tr.Tamper(1000) {
		t.Error("out-of-range tamper accepted")
	}
}

func TestLeafDigestBindsIndex(t *testing.T) {
	if LeafDigest(1, []byte("a")) == LeafDigest(2, []byte("a")) {
		t.Error("leaf digest does not bind the index")
	}
}

// TestUpdateVerifyProperty: random update sequences keep every current leaf
// verifiable and every stale value rejected.
func TestUpdateVerifyProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		tr, _ := New(16)
		current := make(map[int][]byte)
		for n, op := range ops {
			idx := int(op % 16)
			data := []byte{byte(op >> 8), byte(n)}
			old, had := current[idx]
			tr.Update(idx, LeafDigest(idx, data))
			current[idx] = data
			if tr.Verify(idx, LeafDigest(idx, data)) != nil {
				return false
			}
			if had && string(old) != string(data) &&
				tr.Verify(idx, LeafDigest(idx, old)) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
