// Package merkle implements the integrity tree the paper's threat model
// assumes (Section II-A: "A Merkle tree is built on the user data to
// prevent unauthorized changes", Gassend et al.). The per-slot MACs of
// internal/sealer authenticate contents and bind them to positions, but
// they cannot stop an attacker from *replaying* an old (slot, counter,
// ciphertext) triple — freshness needs a root of trust. This package keeps
// a hash tree over arbitrary leaf digests with only the root stored in the
// TCB; the ObliviousStore wires bucket digests into it so replayed or
// reordered memory is detected on the next path access.
//
// The tree shape intentionally mirrors the ORAM tree: one leaf per ORAM
// bucket, so a path access verifies and updates exactly the ancestor chain
// it touched — the O(log N) integrity traffic real secure processors pay.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// DigestSize is the node digest size in bytes.
const DigestSize = sha256.Size

// Digest is one tree node's hash.
type Digest [DigestSize]byte

// ErrMismatch reports a failed verification: the stored data is not what
// the root of trust committed to.
var ErrMismatch = errors.New("merkle: digest mismatch")

// Tree is a binary hash tree over n leaves (padded to a power of two).
// Interior nodes are stored in untrusted-equivalent memory (the attacker
// model lets them be read, but any tampering changes the root); only Root()
// belongs in the TCB.
type Tree struct {
	leaves int
	size   int // leaves padded to a power of two
	// nodes is heap-indexed: nodes[1] is the root, leaf i is nodes[size+i].
	nodes []Digest
}

// New builds a tree over leaves zero-valued leaf digests.
func New(leaves int) (*Tree, error) {
	if leaves <= 0 {
		return nil, fmt.Errorf("merkle: %d leaves", leaves)
	}
	size := 1
	for size < leaves {
		size <<= 1
	}
	t := &Tree{leaves: leaves, size: size, nodes: make([]Digest, 2*size)}
	// Build the initial tree bottom-up over zero leaves.
	for i := size - 1; i >= 1; i-- {
		t.nodes[i] = hashPair(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t, nil
}

func hashPair(l, r Digest) Digest {
	h := sha256.New()
	h.Write(l[:])
	h.Write(r[:])
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// LeafDigest hashes application data (with its leaf index bound in) into a
// leaf digest.
func LeafDigest(index int, data []byte) Digest {
	h := sha256.New()
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(index))
	h.Write(idx[:])
	h.Write(data)
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// Leaves returns the leaf count.
func (t *Tree) Leaves() int { return t.leaves }

// Root returns the current root digest — the only value that must live in
// trusted storage.
func (t *Tree) Root() Digest { return t.nodes[1] }

// Update sets leaf index to d and recomputes its ancestor chain (O(log N)).
func (t *Tree) Update(index int, d Digest) error {
	if index < 0 || index >= t.leaves {
		return fmt.Errorf("merkle: leaf %d out of [0,%d)", index, t.leaves)
	}
	i := t.size + index
	t.nodes[i] = d
	for i >>= 1; i >= 1; i >>= 1 {
		t.nodes[i] = hashPair(t.nodes[2*i], t.nodes[2*i+1])
	}
	return nil
}

// Verify checks that leaf index currently holds d by walking its ancestor
// chain against the trusted root, exactly the check a secure processor
// performs per fetched block.
func (t *Tree) Verify(index int, d Digest) error {
	if index < 0 || index >= t.leaves {
		return fmt.Errorf("merkle: leaf %d out of [0,%d)", index, t.leaves)
	}
	i := t.size + index
	cur := d
	for ; i > 1; i >>= 1 {
		var sib Digest
		if i%2 == 0 {
			sib = t.nodes[i+1]
			cur = hashPair(cur, sib)
		} else {
			sib = t.nodes[i-1]
			cur = hashPair(sib, cur)
		}
	}
	if cur != t.nodes[1] {
		return fmt.Errorf("%w: leaf %d", ErrMismatch, index)
	}
	return nil
}

// Proof returns the sibling chain for leaf index, for external verifiers
// holding only the root.
func (t *Tree) Proof(index int) ([]Digest, error) {
	if index < 0 || index >= t.leaves {
		return nil, fmt.Errorf("merkle: leaf %d out of [0,%d)", index, t.leaves)
	}
	var proof []Digest
	for i := t.size + index; i > 1; i >>= 1 {
		proof = append(proof, t.nodes[i^1])
	}
	return proof, nil
}

// VerifyProof checks a (leaf digest, proof) pair against a root, without
// access to the tree.
func VerifyProof(root Digest, index int, d Digest, proof []Digest) error {
	cur := d
	for _, sib := range proof {
		if index%2 == 0 {
			cur = hashPair(cur, sib)
		} else {
			cur = hashPair(sib, cur)
		}
		index >>= 1
	}
	if cur != root {
		return ErrMismatch
	}
	return nil
}

// Tamper corrupts a stored interior node (test hook for the attacker who
// rewrites untrusted metadata). It returns false if the node index is out
// of range.
func (t *Tree) Tamper(node int) bool {
	if node < 1 || node >= len(t.nodes) {
		return false
	}
	t.nodes[node][0] ^= 0xFF
	return true
}
