package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"iroram/internal/block"
)

func TestPathCounters(t *testing.T) {
	var c PathCounters
	c.Add(block.PathData, 60, 60)
	c.Add(block.PathData, 60, 60)
	c.Add(block.PathPos1, 60, 60)
	c.Add(block.PathDummy, 60, 60)
	if c.Total() != 4 {
		t.Fatalf("total = %d, want 4", c.Total())
	}
	if f := c.Fraction(block.PathData); f != 0.5 {
		t.Errorf("PTd fraction = %v, want 0.5", f)
	}
	if c.BlocksRead != 240 || c.BlocksWrit != 240 {
		t.Errorf("traffic = %d/%d, want 240/240", c.BlocksRead, c.BlocksWrit)
	}
}

func TestPathCountersEmptyFraction(t *testing.T) {
	var c PathCounters
	if c.Fraction(block.PathData) != 0 {
		t.Error("empty counters should report zero fractions")
	}
}

func TestPathCountersMerge(t *testing.T) {
	var a, b PathCounters
	a.Add(block.PathData, 1, 2)
	b.Add(block.PathDummy, 3, 4)
	a.Merge(b)
	if a.Total() != 2 || a.BlocksRead != 4 || a.BlocksWrit != 6 {
		t.Errorf("merge result %+v unexpected", a)
	}
}

func TestLevelHist(t *testing.T) {
	h := NewLevelHist(10)
	for l := 0; l < 10; l++ {
		for i := 0; i <= l; i++ {
			h.Add(l)
		}
	}
	if h.Total() != 55 {
		t.Fatalf("total = %d, want 55", h.Total())
	}
	if f := h.FractionUpTo(9); f != 1 {
		t.Errorf("FractionUpTo(9) = %v, want 1", f)
	}
	if f := h.FractionUpTo(0); math.Abs(f-1.0/55) > 1e-12 {
		t.Errorf("FractionUpTo(0) = %v, want 1/55", f)
	}
}

func TestTableAlignmentAndLookup(t *testing.T) {
	tab := NewTable("Fig X", "gcc", "mcf", "mean")
	tab.AddSeries("Baseline", []float64{1, 1, 1})
	tab.AddSeries("IR-ORAM", []float64{1.8, 1.3, 1.57})
	if v, ok := tab.Get("mcf", "IR-ORAM"); !ok || v != 1.3 {
		t.Errorf("Get(mcf, IR-ORAM) = %v, %v", v, ok)
	}
	if _, ok := tab.Get("nope", "IR-ORAM"); ok {
		t.Error("lookup of absent row should fail")
	}
	if _, ok := tab.Get("gcc", "nope"); ok {
		t.Error("lookup of absent series should fail")
	}
	out := tab.String()
	for _, want := range []string{"Fig X", "benchmark", "Baseline", "IR-ORAM", "gcc", "1.570"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddSeries("s", []float64{0.5, 2})
	csv := tab.CSV()
	want := "benchmark,s\na,0.5\nb,2\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestAddSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewTable("t", "a").AddSeries("s", []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{0, 2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean should skip non-positive entries, got %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	vs := []float64{1, 2, 3, 4}
	if m := Mean(vs); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(vs); m != 2.5 {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %v", m)
	}
	if s := StdDev([]float64{5, 5, 5}); s != 0 {
		t.Errorf("StdDev of constant = %v", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	check := func(a, b, c uint16) bool {
		vs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(vs)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("Fig X", "gcc", "mcf")
	tab.AddSeries("speedup", []float64{1.5, 0.7})
	md := tab.Markdown()
	for _, want := range []string{"**Fig X**", "| benchmark | speedup |", "| gcc | 1.500 |", "| mcf | 0.700 |", "|---|---|"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
