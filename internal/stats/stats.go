// Package stats collects and reports simulator statistics: path-access
// counters by type (Fig 2, 15), per-level histograms (Fig 6), utilization
// snapshots (Fig 3, 4, 13), and simple text/CSV tables used by the
// experiment harness.
//
// The raw instruments are built on internal/metrics — LevelHist is the
// metrics.LinearHist primitive, and every counter here is registered into a
// metrics.Registry by the component that owns it (see core.Stats and
// internal/sim), which is what makes the JSONL metric dumps and the
// docs/METRICS.md self-description possible. The instruments inherit the
// metrics package's contracts: allocation-free updates on the access path,
// and fully deterministic values for a given seed.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"iroram/internal/block"
	"iroram/internal/metrics"
)

// PathCounters tallies path accesses by type, plus the DRAM block traffic
// they generate.
type PathCounters struct {
	Paths      [block.NumPathTypes]uint64
	BlocksRead uint64
	BlocksWrit uint64
}

// Add records one path access of type t that moved r reads and w writes.
func (c *PathCounters) Add(t block.PathType, r, w int) {
	c.Paths[t]++
	c.BlocksRead += uint64(r)
	c.BlocksWrit += uint64(w)
}

// Total returns the total number of path accesses.
func (c *PathCounters) Total() uint64 {
	var n uint64
	for _, v := range c.Paths {
		n += v
	}
	return n
}

// Fraction returns the share of type t among all path accesses, or 0 when
// nothing was recorded.
func (c *PathCounters) Fraction(t block.PathType) float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.Paths[t]) / float64(total)
}

// Merge accumulates other into c.
func (c *PathCounters) Merge(other PathCounters) {
	for i, v := range other.Paths {
		c.Paths[i] += v
	}
	c.BlocksRead += other.BlocksRead
	c.BlocksWrit += other.BlocksWrit
}

// LevelHist is a histogram indexed by tree level — the metrics package's
// linear histogram under its historical name (Add increments level l;
// Total and FractionUpTo summarize the mass).
type LevelHist = metrics.LinearHist

// NewLevelHist returns a histogram for levels levels.
func NewLevelHist(levels int) *LevelHist {
	return metrics.NewLinearHist(levels)
}

// UtilSnapshot is one utilization-per-level measurement (Fig 3): the ratio
// of real data blocks to allocated slots at each tree level, labelled by the
// number of path accesses executed so far.
type UtilSnapshot struct {
	Label string
	Util  []float64
}

// Series is a labelled sequence of float64 values, one entry per benchmark
// or configuration; the building block of every figure table.
type Series struct {
	Name   string
	Values []float64
}

// Table is a labelled collection of Series sharing one set of row labels.
type Table struct {
	Title  string
	Rows   []string
	Series []Series
}

// NewTable returns an empty table with the given row labels.
func NewTable(title string, rows ...string) *Table {
	return &Table{Title: title, Rows: rows}
}

// AddSeries appends a column. It panics if the length does not match the
// row labels, which would silently misalign a figure.
func (t *Table) AddSeries(name string, values []float64) {
	if len(values) != len(t.Rows) {
		panic(fmt.Sprintf("stats: series %q has %d values for %d rows",
			name, len(values), len(t.Rows)))
	}
	t.Series = append(t.Series, Series{Name: name, Values: values})
}

// Get returns the value at (row, series name); ok is false if absent.
func (t *Table) Get(row, series string) (float64, bool) {
	ri := -1
	for i, r := range t.Rows {
		if r == row {
			ri = i
			break
		}
	}
	if ri < 0 {
		return 0, false
	}
	for _, s := range t.Series {
		if s.Name == series {
			return s.Values[ri], true
		}
	}
	return 0, false
}

// String renders the table as aligned text, the format the experiment
// binaries print and EXPERIMENTS.md embeds.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Series)+1)
	widths[0] = len("benchmark")
	for _, r := range t.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	for i, s := range t.Series {
		widths[i+1] = len(s.Name)
		for _, v := range s.Values {
			if n := len(formatCell(v)); n > widths[i+1] {
				widths[i+1] = n
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "benchmark")
	for i, s := range t.Series {
		fmt.Fprintf(&b, "  %*s", widths[i+1], s.Name)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r)
		for si, s := range t.Series {
			fmt.Fprintf(&b, "  %*s", widths[si+1], formatCell(s.Values[ri]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, the
// format EXPERIMENTS.md embeds.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	b.WriteString("| benchmark |")
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %s |", s.Name)
	}
	b.WriteString("\n|---|")
	for range t.Series {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r)
		for _, s := range t.Series {
			fmt.Fprintf(&b, " %s |", formatCell(s.Values[ri]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		b.WriteString(r)
		for _, s := range t.Series {
			fmt.Fprintf(&b, ",%g", s.Values[ri])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped (they would poison the product).
func GeoMean(values []float64) float64 {
	prod, n := 1.0, 0
	for _, v := range values {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := Mean(values)
	sum := 0.0
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(values)))
}

// Median returns the median, or 0 for an empty slice.
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
