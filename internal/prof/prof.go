// Package prof wires the standard pprof profile outputs into the
// command-line tools, so hot-path work on the simulator can be measured
// with `go tool pprof` instead of guessed at (see README "Profiling").
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile when non-empty. The returned stop
// function flushes the CPU profile and, when memFile is non-empty, writes a
// heap profile taken after a final GC (so it shows live retention, and —
// via the alloc_space sample index — cumulative allocation sites).
//
// stop must run on every exit path and its error must be checked: a failed
// flush (disk full, file removed underneath us) otherwise leaves a silently
// truncated profile next to a successful-looking run. Commands structure
// main as `os.Exit(run())` with run deferring a closure that folds a stop
// failure into its exit code, because a bare os.Exit would discard the
// buffered CPU profile entirely.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpu = f
	}
	return func() error {
		var firstErr error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				firstErr = fmt.Errorf("prof: flushing CPU profile: %w", err)
			}
		}
		if memFile == "" {
			return firstErr
		}
		f, err := os.Create(memFile)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
			return firstErr
		}
		runtime.GC() // settle the live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("prof: writing heap profile: %w", err)
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("prof: flushing heap profile: %w", err)
		}
		return firstErr
	}, nil
}
