// Package prof wires the standard pprof profile outputs into the
// command-line tools, so hot-path work on the simulator can be measured
// with `go tool pprof` instead of guessed at (see README "Profiling").
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile when non-empty. The returned stop
// function flushes the CPU profile and, when memFile is non-empty, writes a
// heap profile taken after a final GC (so it shows live retention, and —
// via the alloc_space sample index — cumulative allocation sites).
//
// stop must run on every exit path; commands structure main as
// `os.Exit(run())` with `defer stop()` inside run, because a bare os.Exit
// would discard the buffered CPU profile.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile == "" {
			return
		}
		f, err := os.Create(memFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prof: %v\n", err)
		}
	}, nil
}
