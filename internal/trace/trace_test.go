package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

const testUniverse = 1 << 23

func TestSynthDeterminism(t *testing.T) {
	a := MustBenchmark("mcf", testUniverse, 7)
	b := MustBenchmark("mcf", testUniverse, 7)
	for i := 0; i < 1000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestSynthAddressesInUniverse(t *testing.T) {
	for _, name := range BenchmarkNames() {
		g := MustBenchmark(name, testUniverse, 3)
		for i := 0; i < 2000; i++ {
			r, ok := g.Next()
			if !ok {
				t.Fatalf("%s: synthetic trace exhausted", name)
			}
			if r.Addr >= testUniverse {
				t.Fatalf("%s: addr %d outside universe", name, r.Addr)
			}
		}
	}
}

func TestWriteFractionMatchesSpec(t *testing.T) {
	for _, name := range []string{"lbm", "mcf", "xz"} {
		spec, err := SpecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		wantFrac := spec.WriteMPKI / (spec.ReadMPKI + spec.WriteMPKI)
		g := MustBenchmark(name, testUniverse, 5)
		writes := 0
		const n = 20000
		for i := 0; i < n; i++ {
			r, _ := g.Next()
			if r.Write {
				writes++
			}
		}
		got := float64(writes) / n
		if got < wantFrac-0.03 || got > wantFrac+0.03 {
			t.Errorf("%s: write fraction %.3f, want about %.3f", name, got, wantFrac)
		}
	}
}

func TestGapEncodesIntensity(t *testing.T) {
	// lbm (45.3 total MPKI) must have much smaller gaps than gcc (0.4).
	lbm, _ := MustBenchmark("lbm", testUniverse, 1).Next()
	gcc, _ := MustBenchmark("gcc", testUniverse, 1).Next()
	if gcc.GapInstr < 10*lbm.GapInstr {
		t.Errorf("lbm gap %d vs gcc gap %d: intensity ordering wrong",
			lbm.GapInstr, gcc.GapInstr)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Benchmark("nope", testUniverse, 1); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestBenchmarkNamesMatchTable2(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 13 {
		t.Fatalf("got %d benchmarks, Table II has 13", len(names))
	}
	want := map[string]bool{"gcc": true, "mcf": true, "xz": true, "xal": true,
		"dee": true, "bwa": true, "lbm": true, "cam": true, "ima": true,
		"rom": true, "bla": true, "str": true, "fre": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
	}
}

func TestRandomCoversUniverse(t *testing.T) {
	g := Random(1024, 0.5, 9)
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		r, _ := g.Next()
		if r.Addr >= 1024 {
			t.Fatalf("addr %d out of range", r.Addr)
		}
		seen[r.Addr] = true
	}
	if len(seen) < 1000 {
		t.Errorf("random trace touched only %d/1024 blocks", len(seen))
	}
}

func TestSliceGenerator(t *testing.T) {
	reqs := []Request{{Addr: 1}, {Addr: 2, Write: true}, {Addr: 3}}
	s := NewSlice("fixed", reqs)
	got := Collect(s, 10)
	if len(got) != 3 {
		t.Fatalf("collected %d, want 3", len(got))
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted slice should report ok=false")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Addr != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestMixRoundRobin(t *testing.T) {
	a := NewSlice("a", []Request{{Addr: 1}, {Addr: 2}})
	b := NewSlice("b", []Request{{Addr: 10}})
	m := NewMix("m", a, b)
	got := Collect(m, 10)
	want := []uint64{1, 10, 2}
	if len(got) != len(want) {
		t.Fatalf("collected %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Addr != w {
			t.Errorf("record %d: addr %d, want %d", i, got[i].Addr, w)
		}
	}
}

func TestConcatOrderAndLimits(t *testing.T) {
	a := NewSlice("a", []Request{{Addr: 1}, {Addr: 2}, {Addr: 3}})
	b := NewSlice("b", []Request{{Addr: 10}, {Addr: 11}})
	c := NewConcat("c", []Generator{a, b}, []int{2, 0})
	got := Collect(c, 10)
	want := []uint64{1, 2, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("collected %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Addr != w {
			t.Errorf("record %d: addr %d, want %d", i, got[i].Addr, w)
		}
	}
}

func TestUtilizationTraceProportions(t *testing.T) {
	g := UtilizationTrace(testUniverse, 4000, 1)
	reqs := Collect(g, 5000)
	if len(reqs) != 4000 {
		t.Fatalf("collected %d, want 4000", len(reqs))
	}
}

func TestFileRoundTrip(t *testing.T) {
	reqs := Collect(MustBenchmark("xz", testUniverse, 11), 500)
	var buf bytes.Buffer
	if err := Write(&buf, "xz", reqs); err != nil {
		t.Fatal(err)
	}
	name, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "xz" {
		t.Errorf("name %q, want xz", name)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d records, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	check := func(addrs []uint32, seed uint64) bool {
		reqs := make([]Request, len(addrs))
		for i, a := range addrs {
			reqs[i] = Request{Addr: uint64(a), Write: a%3 == 0, GapInstr: a % 1000}
		}
		var buf bytes.Buffer
		if err := Write(&buf, "prop", reqs); err != nil {
			return false
		}
		name, got, err := Read(&buf)
		if err != nil || name != "prop" || len(got) != len(reqs) {
			return false
		}
		for i := range got {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("IRTR\x02"),               // bad version
		append([]byte("IRTR\x01"), 0xff), // truncated varint
	}
	for i, c := range cases {
		if _, _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadRejectsTruncatedRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "t", []Request{{Addr: 5}, {Addr: 6}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, _, err := Read(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Error("expected error for truncated file")
	}
}
