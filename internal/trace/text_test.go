package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	reqs := Collect(MustBenchmark("bla", testUniverse, 3), 300)
	var buf bytes.Buffer
	if err := WriteText(&buf, "bla", reqs); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "bla" {
		t.Errorf("name %q", name)
	}
	if len(got) != len(reqs) {
		t.Fatalf("%d records, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestTextReadHandwritten(t *testing.T) {
	in := `# trace: handmade
# a comment
12 r 100

34 W 0
56 w 4000000
`
	name, reqs, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if name != "handmade" || len(reqs) != 3 {
		t.Fatalf("name %q, %d records", name, len(reqs))
	}
	if reqs[0].Write || !reqs[1].Write || !reqs[2].Write {
		t.Error("ops misparsed")
	}
	if reqs[2].GapInstr != 4000000 {
		t.Errorf("gap %d", reqs[2].GapInstr)
	}
}

func TestTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"12 r",                // missing field
		"x r 5",               // bad addr
		"12 q 5",              // bad op
		"12 r notanum",        // bad gap
		"12 r 99999999999999", // gap overflow
	}
	for _, c := range cases {
		if _, _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("%q accepted", c)
		}
	}
}
