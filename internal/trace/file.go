package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format:
//
//	magic "IRTR" | version byte | name length varint | name bytes
//	then per record: addr varint | gap varint | flags byte (bit0 = write)
//
// Varint encoding keeps streaming traces compact (most gaps and many
// addresses are small). The format is self-describing enough for
// cmd/tracegen output to be replayed by examples/tracereplay.

var magic = [4]byte{'I', 'R', 'T', 'R'}

const formatVersion = 1

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// Write serializes the named trace to w.
func Write(w io.Writer, name string, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(reqs))); err != nil {
		return err
	}
	for _, r := range reqs {
		if err := writeUvarint(r.Addr); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.GapInstr)); err != nil {
			return err
		}
		flags := byte(0)
		if r.Write {
			flags = 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace file written by Write.
func Read(r io.Reader) (name string, reqs []Request, err error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if ver != formatVersion {
		return "", nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if nameLen > 1<<16 {
		return "", nil, fmt.Errorf("%w: name length %d", ErrBadFormat, nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if count > 1<<32 {
		return "", nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}
	reqs = make([]Request, 0, count)
	for i := uint64(0); i < count; i++ {
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return "", nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return "", nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		if gap > 1<<32-1 {
			return "", nil, fmt.Errorf("%w: record %d gap %d overflows", ErrBadFormat, i, gap)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return "", nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		reqs = append(reqs, Request{Addr: addr, GapInstr: uint32(gap), Write: flags&1 != 0})
	}
	return string(nameBytes), reqs, nil
}
