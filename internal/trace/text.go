package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format: one record per line, `addr op gap`, with `#` comments
// and a `# trace: <name>` header — easy to produce from external tools
// (e.g. a Pin tool post-processor) and to inspect by hand.

// WriteText serializes the named trace in the text format.
func WriteText(w io.Writer, name string, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace: %s\n# addr op gap\n", name); err != nil {
		return err
	}
	for _, r := range reqs {
		op := "r"
		if r.Write {
			op = "w"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d\n", r.Addr, op, r.GapInstr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. Unknown comment lines are skipped;
// malformed records are reported with their line number.
func ReadText(r io.Reader) (name string, reqs []Request, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# trace:"); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return "", nil, fmt.Errorf("trace: line %d: want `addr op gap`, got %q", lineNo, line)
		}
		addr, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return "", nil, fmt.Errorf("trace: line %d: bad addr: %v", lineNo, err)
		}
		var write bool
		switch fields[1] {
		case "r", "R":
		case "w", "W":
			write = true
		default:
			return "", nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		gap, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return "", nil, fmt.Errorf("trace: line %d: bad gap: %v", lineNo, err)
		}
		reqs = append(reqs, Request{Addr: addr, Write: write, GapInstr: uint32(gap)})
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	return name, reqs, nil
}
