package trace

import "fmt"

// Table II of the paper: the evaluated benchmarks with their LLC read/write
// MPKI. The pattern and working-set assignments encode each program's
// qualitative memory behaviour:
//
//   - mcf: pointer-chasing over a huge working set, read dominated — the
//     PLB/tree-top worst case (drives the Rho and LLC-D regressions);
//   - lbm/bwa/rom/dee: streaming stores over large grids;
//   - xz: mixed read/write with poor locality (compression dictionaries);
//   - gcc/xal/ima: small working sets, low intensity — mostly dummy paths;
//   - bla/str/fre (PARSEC): moderate read-mostly streams.
var specs = []Spec{
	{Name: "gcc", ReadMPKI: 0.1, WriteMPKI: 0.3, Pattern: Uniform,
		ColdBlocks: 1 << 20, HotBlocks: 1 << 14, ColdFraction: 0.25,
		ConflictBlocks: 64, ConflictFraction: 0.3, IdleEvery: 60, IdleInstr: 200_000,
		SegmentBlocks: 512, BurstLen: 2},
	{Name: "mcf", ReadMPKI: 19.5, WriteMPKI: 0.1, Pattern: Chase,
		ColdBlocks: 1 << 22, HotBlocks: 1 << 12, ColdFraction: 0.7,
		IdleEvery: 250, IdleInstr: 60_000},
	{Name: "xz", ReadMPKI: 24.9, WriteMPKI: 29.6, Pattern: Uniform,
		ColdBlocks: 1 << 21, HotBlocks: 1 << 14, ColdFraction: 0.6,
		ConflictBlocks: 48, ConflictFraction: 0.15, IdleEvery: 300, IdleInstr: 50_000,
		SegmentBlocks: 1024, BurstLen: 2},
	{Name: "xal", ReadMPKI: 0.05, WriteMPKI: 0.1, Pattern: Uniform,
		ColdBlocks: 1 << 19, HotBlocks: 1 << 13, ColdFraction: 0.25,
		ConflictBlocks: 64, ConflictFraction: 0.35, IdleEvery: 60, IdleInstr: 220_000,
		SegmentBlocks: 512, BurstLen: 2},
	{Name: "dee", ReadMPKI: 0.0, WriteMPKI: 5.7, Pattern: Uniform,
		ColdBlocks: 1 << 21, HotBlocks: 1 << 15, ColdFraction: 0.4,
		ConflictBlocks: 96, ConflictFraction: 0.3, IdleEvery: 150, IdleInstr: 90_000,
		SegmentBlocks: 512, BurstLen: 2},
	{Name: "bwa", ReadMPKI: 0.0, WriteMPKI: 20.7, Pattern: Stream,
		ColdBlocks: 1 << 22, HotBlocks: 1 << 12, ColdFraction: 0.6,
		IdleEvery: 250, IdleInstr: 60_000},
	{Name: "lbm", ReadMPKI: 0.0, WriteMPKI: 45.3, Pattern: Stream,
		ColdBlocks: 1 << 22, HotBlocks: 0, ColdFraction: 0.8,
		IdleEvery: 400, IdleInstr: 40_000},
	{Name: "cam", ReadMPKI: 0.01, WriteMPKI: 8.8, Pattern: Strided,
		ColdBlocks: 1 << 21, HotBlocks: 1 << 12, ColdFraction: 0.5, Stride: 16,
		IdleEvery: 200, IdleInstr: 80_000},
	{Name: "ima", ReadMPKI: 0.3, WriteMPKI: 2.9, Pattern: Uniform,
		ColdBlocks: 1 << 20, HotBlocks: 1 << 14, ColdFraction: 0.4,
		ConflictBlocks: 64, ConflictFraction: 0.25, IdleEvery: 120, IdleInstr: 120_000,
		SegmentBlocks: 512, BurstLen: 3},
	{Name: "rom", ReadMPKI: 0.02, WriteMPKI: 23.0, Pattern: Stream,
		ColdBlocks: 1 << 22, HotBlocks: 1 << 12, ColdFraction: 0.7,
		IdleEvery: 250, IdleInstr: 60_000},
	{Name: "bla", ReadMPKI: 2.6, WriteMPKI: 0.4, Pattern: Uniform,
		ColdBlocks: 1 << 20, HotBlocks: 1 << 15, ColdFraction: 0.4,
		ConflictBlocks: 64, ConflictFraction: 0.3, IdleEvery: 120, IdleInstr: 110_000,
		SegmentBlocks: 512, BurstLen: 2},
	{Name: "str", ReadMPKI: 2.7, WriteMPKI: 0.5, Pattern: Chase,
		ColdBlocks: 1 << 21, HotBlocks: 1 << 15, ColdFraction: 0.5,
		ConflictBlocks: 48, ConflictFraction: 0.2, IdleEvery: 150, IdleInstr: 100_000},
	{Name: "fre", ReadMPKI: 2.1, WriteMPKI: 0.4, Pattern: Uniform,
		ColdBlocks: 1 << 20, HotBlocks: 1 << 15, ColdFraction: 0.4,
		ConflictBlocks: 64, ConflictFraction: 0.25, IdleEvery: 120, IdleInstr: 110_000,
		SegmentBlocks: 512, BurstLen: 2},
}

// BenchmarkNames returns the Table II benchmark names in paper order.
func BenchmarkNames() []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SpecFor returns the Spec of a Table II benchmark.
func SpecFor(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Benchmark returns the synthetic generator for a Table II benchmark over a
// protected space of universe blocks.
func Benchmark(name string, universe, seed uint64) (*Synth, error) {
	spec, err := SpecFor(name)
	if err != nil {
		return nil, err
	}
	return NewSynth(spec, universe, seed), nil
}

// MustBenchmark is Benchmark for known-good names; it panics otherwise.
func MustBenchmark(name string, universe, seed uint64) *Synth {
	g, err := Benchmark(name, universe, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// PaperMix returns the 3-benchmark mix used for the "mix" bar of Fig 10
// (gcc + mcf + lbm: one low-intensity, one read-chasing, one write-stream).
func PaperMix(universe, seed uint64) *Mix {
	return NewMix("mix",
		MustBenchmark("gcc", universe, seed),
		MustBenchmark("mcf", universe, seed+1),
		MustBenchmark("lbm", universe, seed+2),
	)
}

// UtilizationTrace reproduces the Fig 3 methodology at a chosen scale: a mix
// of benchmark accesses followed by a random tail, in the paper's
// 3.7B : 0.3B proportion.
func UtilizationTrace(universe uint64, total int, seed uint64) *Concat {
	benchPart := total * 37 / 40
	return NewConcat("fig3-mix",
		[]Generator{
			PaperMix(universe, seed),
			Random(universe, 0.5, seed+99),
		},
		[]int{benchPart, total - benchPart},
	)
}
