// Package trace models the memory request streams that drive the simulator.
//
// The paper collects Pin traces of SPEC CPU2017 and PARSEC at L1-miss
// granularity (2M L1 misses per program) and reports each benchmark's LLC
// read/write MPKI (Table II). Those traces are not redistributable, so this
// package provides synthetic generators calibrated to the same observables:
//
//   - memory intensity (read+write MPKI after LLC filtering), which sets the
//     dummy-path rate under timing protection;
//   - read/write mix, which LLC-D and IR-DWB are sensitive to;
//   - spatial/temporal locality, which sets PLB and tree-top hit rates.
//
// Every generator is deterministic given a seed.
package trace

import "iroram/internal/rng"

// Request is one record of an L1-miss-level trace.
type Request struct {
	// Addr is the block address in the protected data space [0, universe).
	Addr uint64
	// Write marks a store miss / write-allocate.
	Write bool
	// GapInstr is the number of instructions executed since the previous
	// record (drives the CPU clock between misses).
	GapInstr uint32
}

// Generator produces a request stream.
type Generator interface {
	// Name identifies the workload (Table II benchmark name, "random", ...).
	Name() string
	// Next returns the next request; ok is false when the trace is
	// exhausted. Generators backed by synthesis never exhaust.
	Next() (req Request, ok bool)
}

// Collect drains up to n requests from g.
func Collect(g Generator, n int) []Request {
	out := make([]Request, 0, n)
	for len(out) < n {
		req, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, req)
	}
	return out
}

// Slice replays a fixed request slice as a Generator.
type Slice struct {
	name string
	reqs []Request
	pos  int
}

// NewSlice wraps reqs as a finite trace.
func NewSlice(name string, reqs []Request) *Slice {
	return &Slice{name: name, reqs: reqs}
}

// Name implements Generator.
func (s *Slice) Name() string { return s.name }

// Next implements Generator.
func (s *Slice) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the trace to the beginning.
func (s *Slice) Reset() { s.pos = 0 }

// PatternKind selects the address pattern of the cold (LLC-missing) region.
type PatternKind uint8

const (
	// Stream walks the region sequentially (high PosMap/PLB locality:
	// 16 consecutive blocks share one PosMap1 block).
	Stream PatternKind = iota
	// Strided walks with a fixed multi-block stride (moderate locality).
	Strided
	// Chase jumps through a pseudo-random permutation (no locality; the
	// mcf-like worst case for the PLB and the tree top).
	Chase
	// Uniform draws addresses uniformly at random.
	Uniform
)

func (p PatternKind) String() string {
	switch p {
	case Stream:
		return "stream"
	case Strided:
		return "strided"
	case Chase:
		return "chase"
	default:
		return "uniform"
	}
}

// Spec describes a synthetic benchmark. MPKI targets are the Table II
// values, i.e. LLC misses per kilo-instruction; the generator arranges the
// stream so that an LLC of the configured size reproduces them
// approximately (see the calibration test).
type Spec struct {
	Name      string
	ReadMPKI  float64
	WriteMPKI float64
	// Pattern of the cold region.
	Pattern PatternKind
	// ColdBlocks is the cold-region size in blocks; it should be much
	// larger than the LLC so cold accesses miss.
	ColdBlocks uint64
	// HotBlocks is the hot-region size; it should fit in the LLC so hot
	// accesses hit and only add recency traffic. Zero disables the hot mix.
	HotBlocks uint64
	// ColdFraction is the share of accesses aimed at the cold region.
	ColdFraction float64
	// Stride for the Strided pattern, in blocks.
	Stride uint64
	// ConflictBlocks > 0 adds an LLC-conflict component: a round-robin loop
	// over that many blocks spaced conflictStride apart, so they fall into
	// few LLC sets and miss despite their short reuse distance. This is
	// what makes recently used blocks re-reach the ORAM while they still
	// sit in the tree top — the reuse behind Fig 6 and IR-Stash's wins.
	ConflictBlocks uint64
	// ConflictFraction is the share of accesses aimed at the conflict loop.
	ConflictFraction float64
	// IdleEvery > 0 injects a long computation gap every that many accesses
	// (program phase behaviour). Idle windows are where timing protection
	// inserts dummy paths (PT_m) — and where IR-DWB finds slots to convert.
	IdleEvery int
	// IdleInstr is the injected gap length in instructions.
	IdleInstr uint32
	// SegmentBlocks adds two-level spatial locality to the Uniform cold
	// pattern: draws cluster into a random segment of this many blocks for
	// a dozen bursts before moving on, and each burst touches BurstLen
	// consecutive blocks. This is what gives real programs their
	// PosMap2-over-PosMap1 PLB locality (the 4:1 Pos1:Pos2 ratio of
	// Fig 2). Zero keeps pure uniform draws.
	SegmentBlocks uint64
	// BurstLen is the consecutive-block run per draw (1 if zero).
	BurstLen int
}

// segmentBursts is how many bursts a Uniform-pattern segment serves before
// the generator re-draws a segment.
const segmentBursts = 12

// conflictStride spaces conflict-loop blocks so they land in few LLC sets
// for both the tiny (128-set) and scaled (4096-set) LLC geometries.
const conflictStride = 1024

// Synth generates an infinite stream per a Spec.
type Synth struct {
	spec       Spec
	universe   uint64
	rng        *rng.Source
	gap        uint32
	writeFrac  float64
	coldBase   uint64
	hotBase    uint64
	cursor     uint64
	confCursor uint64
	sinceIdle  int
	chaseMul   uint64
	chaseAdd   uint64

	// Segment/burst state for the Uniform pattern.
	segBase   uint64
	segLeft   int
	burstAddr uint64
	burstLeft int
}

// NewSynth builds a generator over a protected space of universe blocks.
// Regions are placed deterministically from the seed; the cold region is
// clamped to the universe.
func NewSynth(spec Spec, universe uint64, seed uint64) *Synth {
	r := rng.New(seed ^ hashName(spec.Name))
	total := spec.ReadMPKI + spec.WriteMPKI
	writeFrac := 0.0
	if total > 0 {
		writeFrac = spec.WriteMPKI / total
	}
	if spec.ColdFraction <= 0 || spec.ColdFraction > 1 {
		spec.ColdFraction = 0.5
	}
	if spec.ColdBlocks == 0 || spec.ColdBlocks > universe {
		spec.ColdBlocks = universe
	}
	if spec.HotBlocks >= universe/2 {
		spec.HotBlocks = universe / 4
	}
	// Misses per kilo-instruction come (approximately) from the cold region
	// and the conflict loop; scale the raw access rate so the LLC-filtered
	// rate lands near the Table II target.
	missFraction := spec.ConflictFraction +
		(1-spec.ConflictFraction)*spec.ColdFraction
	if missFraction <= 0 {
		missFraction = spec.ColdFraction
	}
	accessesPerKI := total / missFraction
	gap := uint32(2)
	if accessesPerKI > 0 {
		g := 1000 / accessesPerKI
		switch {
		case g < 1:
			gap = 1
		case g > 4_000_000:
			gap = 4_000_000
		default:
			gap = uint32(g)
		}
	} else {
		gap = 1_000_000 // near-idle program
	}
	s := &Synth{
		spec:      spec,
		universe:  universe,
		rng:       r,
		gap:       gap,
		writeFrac: writeFrac,
		hotBase:   0,
	}
	if spec.HotBlocks > 0 && spec.HotBlocks < universe {
		s.coldBase = spec.HotBlocks
	}
	if s.coldBase+spec.ColdBlocks > universe {
		s.spec.ColdBlocks = universe - s.coldBase
	}
	// A fixed odd multiplier walks the cold region in a full-period
	// pseudo-random order for the Chase pattern (Weyl-like sequence).
	s.chaseMul = 0x9E3779B97F4A7C15 | 1
	s.chaseAdd = r.Uint64()
	return s
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Name implements Generator.
func (s *Synth) Name() string { return s.spec.Name }

// Next implements Generator; it never exhausts.
func (s *Synth) Next() (Request, bool) {
	gap := s.gap
	if s.spec.IdleEvery > 0 {
		s.sinceIdle++
		if s.sinceIdle >= s.spec.IdleEvery {
			s.sinceIdle = 0
			gap += s.spec.IdleInstr
		}
	}
	var addr uint64
	switch {
	case s.spec.ConflictBlocks > 0 && s.rng.Float64() < s.spec.ConflictFraction:
		addr = (s.confCursor % s.spec.ConflictBlocks) * conflictStride % s.universe
		s.confCursor++
	case s.rng.Float64() < s.spec.ColdFraction || s.spec.HotBlocks == 0:
		addr = s.coldBase + s.coldAddr()
	default:
		addr = s.hotBase + s.rng.Uint64n(s.spec.HotBlocks)
	}
	write := s.rng.Float64() < s.writeFrac
	return Request{Addr: addr, Write: write, GapInstr: gap}, true
}

func (s *Synth) coldAddr() uint64 {
	n := s.spec.ColdBlocks
	switch s.spec.Pattern {
	case Stream:
		a := s.cursor % n
		s.cursor++
		return a
	case Strided:
		stride := s.spec.Stride
		if stride == 0 {
			stride = 8
		}
		a := (s.cursor * stride) % n
		s.cursor++
		return a
	case Chase:
		s.cursor++
		return (s.cursor*s.chaseMul + s.chaseAdd) % n
	default:
		if s.spec.SegmentBlocks == 0 {
			return s.rng.Uint64n(n)
		}
		if s.burstLeft == 0 {
			if s.segLeft == 0 {
				s.segBase = s.rng.Uint64n(n)
				s.segLeft = segmentBursts
			}
			s.segLeft--
			s.burstAddr = (s.segBase + s.rng.Uint64n(s.spec.SegmentBlocks)) % n
			s.burstLeft = s.spec.BurstLen
			if s.burstLeft <= 0 {
				s.burstLeft = 1
			}
		}
		s.burstLeft--
		a := s.burstAddr
		s.burstAddr = (s.burstAddr + 1) % n
		return a
	}
}

// Random returns a uniform-random generator over the whole space with the
// given write fraction; the paper uses such traces for the Fig 3 tail, the
// Z-search algorithm and the scalability study (Fig 16).
func Random(universe uint64, writeFrac float64, seed uint64) *Synth {
	return NewSynth(Spec{
		Name:         "random",
		ReadMPKI:     40 * (1 - writeFrac),
		WriteMPKI:    40 * writeFrac,
		Pattern:      Uniform,
		ColdFraction: 1,
	}, universe, seed)
}

// Mix interleaves several generators round-robin, the paper's "mix" bar.
type Mix struct {
	name string
	gens []Generator
	next int
}

// NewMix builds a round-robin interleaving.
func NewMix(name string, gens ...Generator) *Mix {
	return &Mix{name: name, gens: gens}
}

// Name implements Generator.
func (m *Mix) Name() string { return m.name }

// Next implements Generator. It skips exhausted members and reports ok=false
// only when every member is exhausted.
func (m *Mix) Next() (Request, bool) {
	for tries := 0; tries < len(m.gens); tries++ {
		g := m.gens[m.next]
		m.next = (m.next + 1) % len(m.gens)
		if req, ok := g.Next(); ok {
			return req, true
		}
	}
	return Request{}, false
}

// Concat plays generators one after another, each limited to per entries;
// used for the Fig 3 trace (benchmark mix followed by a random tail).
type Concat struct {
	name    string
	gens    []Generator
	per     []int
	current int
	used    int
}

// NewConcat builds the concatenation; per[i] bounds the requests taken from
// gens[i] (0 means drain).
func NewConcat(name string, gens []Generator, per []int) *Concat {
	return &Concat{name: name, gens: gens, per: per}
}

// Name implements Generator.
func (c *Concat) Name() string { return c.name }

// Next implements Generator.
func (c *Concat) Next() (Request, bool) {
	for c.current < len(c.gens) {
		limit := c.per[c.current]
		if limit == 0 || c.used < limit {
			if req, ok := c.gens[c.current].Next(); ok {
				c.used++
				return req, true
			}
		}
		c.current++
		c.used = 0
	}
	return Request{}, false
}
