package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Process pairs a trace with the display name of the cell that produced
// it. In the exported file each Process becomes one Perfetto "process"
// whose "threads" are the controller phases and DRAM channels.
type Process struct {
	Name  string
	Trace *Trace
}

// Thread IDs inside each exported process. DRAM channels start at
// tidDramBase so controller rows sort above the per-channel rows.
const (
	tidRequest   = 1
	tidAccess    = 2
	tidRead      = 3
	tidDecrypt   = 4
	tidWrite     = 5
	tidOccupancy = 6
	tidDramBase  = 16
)

// pathTypeSlugs names access/phase spans by path type, mirroring the
// block.PathType order and the metric-name slugs of docs/METRICS.md.
var pathTypeSlugs = [...]string{"ptd", "ptp1", "ptp2", "ptm", "evict", "dwb"}

func slugOf(sub uint8) string {
	if int(sub) < len(pathTypeSlugs) {
		return pathTypeSlugs[sub]
	}
	return fmt.Sprintf("pt%d", sub)
}

// jsonEvent is one Chrome trace-event object. Field order is fixed by
// the struct, and args maps marshal with sorted keys, so the exported
// bytes are deterministic for a given trace.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func span(start, end uint64) (uint64, *uint64) {
	d := end - start
	return start, &d
}

// render converts one recorder event into its trace-event form.
func render(e Event, pid int) jsonEvent {
	switch e.Kind {
	case KindAccess:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: slugOf(e.Sub), Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidAccess, Args: map[string]any{"leaf": e.Arg}}
	case KindPhaseRead:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: slugOf(e.Sub), Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidRead}
	case KindPhaseDecrypt:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: slugOf(e.Sub), Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidDecrypt}
	case KindPhaseWrite:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: slugOf(e.Sub), Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidWrite}
	case KindRequest:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: "miss", Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidRequest,
			Args: map[string]any{"addr": e.Arg, "wait": e.Aux}}
	case KindDramRun:
		name := "miss"
		if e.Sub == 1 {
			name = "hit"
		}
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: name, Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidDramBase + int(e.Ch),
			Args: map[string]any{"bank": e.Bank, "row": e.Arg, "n": e.Aux}}
	case KindDramDrain:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: "drain", Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidDramBase + int(e.Ch),
			Args: map[string]any{"n": e.Aux}}
	case KindOccupancy:
		return jsonEvent{Name: "occupancy", Ph: "C", TS: e.Start,
			Pid: pid, Tid: tidOccupancy,
			Args: map[string]any{"stash": e.Arg, "writeq": e.Aux}}
	default:
		ts, dur := span(e.Start, e.End)
		return jsonEvent{Name: e.Kind.String(), Ph: "X", TS: ts, Dur: dur,
			Pid: pid, Tid: tidOccupancy}
	}
}

func threadName(tid int) string {
	switch tid {
	case tidRequest:
		return "requests"
	case tidAccess:
		return "access"
	case tidRead:
		return "phase:read"
	case tidDecrypt:
		return "phase:decrypt"
	case tidWrite:
		return "phase:writeback"
	case tidOccupancy:
		return "occupancy"
	default:
		return fmt.Sprintf("dram ch%d", tid-tidDramBase)
	}
}

// Write renders the processes as a single Chrome trace-event JSON
// document (the {"traceEvents": [...]} form Perfetto loads directly).
// Output is deterministic: processes appear in slice order, each one's
// metadata first (process name, then thread names for the threads that
// actually carry events, ascending), then its events in record order.
func Write(w io.Writer, procs []Process) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e jsonEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for i, p := range procs {
		pid := i + 1
		meta := map[string]any{"name": p.Name}
		if t := p.Trace; t != nil {
			meta["recorded"] = t.Recorded
			meta["dropped"] = t.Dropped
			meta["sampled_accesses"] = t.SampledAccesses
			meta["sample_every"] = t.SampleEvery
		}
		if err := emit(jsonEvent{Name: "process_name", Ph: "M", Pid: pid, Args: meta}); err != nil {
			return err
		}
		if p.Trace == nil {
			continue
		}
		tids := make(map[int]bool)
		for _, e := range p.Trace.Events {
			tids[render(e, pid).Tid] = true
		}
		order := make([]int, 0, len(tids))
		for tid := range tids {
			order = append(order, tid)
		}
		sort.Ints(order)
		for _, tid := range order {
			if err := emit(jsonEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": threadName(tid)}}); err != nil {
				return err
			}
		}
		for _, e := range p.Trace.Events {
			if err := emit(render(e, pid)); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the processes to path as trace-event JSON.
func WriteFile(path string, procs []Process) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, procs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
