// Package flight is the cycle-domain flight recorder: a fixed-capacity,
// ring-buffered event tracer that captures per-access spans (request
// arrival through path read, decrypt, eviction and posted writeback,
// tagged with path type and leaf), per-channel DRAM run service events
// (row hits and misses from the run-length path), and stash/write-queue
// occupancy samples.
//
// The recorder is built for the repo's two standing contracts:
//
//   - Zero allocation when disabled. A nil *Recorder is a valid, inert
//     recorder: every method on it is a cheap branch, so the simulator
//     keeps its 0 allocs/op hot path when tracing is off. When enabled,
//     recording writes into a preallocated ring and still allocates
//     nothing per event.
//
//   - Determinism. Sampling is 1-in-N by access count — no time, no
//     randomness — so the same (config, seed, sample) triple yields a
//     byte-identical trace. The ring drops the oldest events on overflow
//     and counts drops; drop counters surface as `flight_*` metrics.
//
// Snapshot converts the ring into an immutable Trace; export.go renders
// traces as Chrome trace-event JSON loadable in Perfetto.
package flight

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindAccess spans one whole path access (arrival to on-chip done),
	// Sub = path type, Arg = leaf.
	KindAccess Kind = iota
	// KindPhaseRead spans the DRAM read burst of a path access
	// (arrival to read-done), Sub = path type.
	KindPhaseRead
	// KindPhaseDecrypt spans the on-chip gather/decrypt/evict latency
	// after the read burst (read-done to done), Sub = path type.
	KindPhaseDecrypt
	// KindPhaseWrite spans the posted writeback burst (read-done to
	// write-done); it overlaps subsequent work, Sub = path type.
	KindPhaseWrite
	// KindRequest spans one demand request through the issuer (arrival
	// to completion), Arg = block address, Aux = cycles spent waiting
	// for pacing slots (queue wait).
	KindRequest
	// KindDramRun records one run serviced by the run-length DRAM path:
	// Arg = row, Aux = blocks in the run, Ch/Bank the target bank,
	// Sub = 1 when the run opened on a row hit, 0 on a row miss.
	KindDramRun
	// KindDramDrain records one channel's share of a posted write burst:
	// Aux = blocks drained, Ch = channel.
	KindDramDrain
	// KindOccupancy samples on-chip queue depths at an issue slot:
	// Arg = stash occupancy, Aux = posted-write queue depth.
	KindOccupancy

	numKinds
)

var kindNames = [numKinds]string{
	"access", "read", "decrypt", "writeback",
	"request", "dram_run", "dram_drain", "occupancy",
}

// String names the kind for the analyzer and export layers.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one cycle-stamped trace event. All fields are plain integers
// so the ring is a flat allocation and events copy by value.
type Event struct {
	// Start and End bound the span in simulated cycles. Counter-style
	// events (KindOccupancy) use Start only.
	Start, End uint64
	// Arg and Aux carry kind-specific payloads (leaf, address, row,
	// run length, queue wait, occupancy) — see the Kind constants.
	Arg, Aux uint64
	// Kind classifies the event; Sub sub-classifies it (path type for
	// access/phase events, hit flag for DRAM runs).
	Kind Kind
	Sub  uint8
	// Ch and Bank locate DRAM events.
	Ch, Bank uint16
}

// DefaultCapacity is the ring size used when callers pass 0: large
// enough to hold several thousand sampled accesses' worth of spans
// without growing, small enough (≈0.8 MB) to attach per cell.
const DefaultCapacity = 16384

// Recorder collects events into a fixed ring with 1-in-N access
// sampling. The zero value is unusable; construct with New. A nil
// *Recorder is valid and inert: all methods no-op (and Armed reports
// false), so call sites need no separate enabled flag.
//
// Recorder is not safe for concurrent use; attach one recorder per
// sim.System, matching the engine's one-goroutine-per-System rule.
type Recorder struct {
	ring []Event
	head uint64 // total events ever recorded; ring index = head % cap

	sampleEvery uint64 // record 1 in N path accesses
	accesses    uint64 // path accesses seen (sampled or not)
	requests    uint64 // demand requests seen
	sampled     uint64 // path accesses that armed the recorder
	armed       bool
}

// New builds a recorder with the given ring capacity (0 means
// DefaultCapacity) recording one in sampleEvery path accesses
// (0 and 1 both mean every access).
func New(capacity int, sampleEvery uint64) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	return &Recorder{ring: make([]Event, capacity), sampleEvery: sampleEvery}
}

// SampleAccess counts one path access and arms the recorder iff this
// access is the 1-in-N sample. Call once at the top of each path
// access, before any Record; the armed state persists until Disarm.
func (r *Recorder) SampleAccess() {
	if r == nil {
		return
	}
	r.accesses++
	r.armed = (r.accesses-1)%r.sampleEvery == 0
	if r.armed {
		r.sampled++
	}
}

// SampleRequest counts one demand request and reports whether it is the
// 1-in-N sample; request spans use their own counter so request-level
// sampling stays aligned even though one request spans many accesses.
func (r *Recorder) SampleRequest() bool {
	if r == nil {
		return false
	}
	r.requests++
	return (r.requests-1)%r.sampleEvery == 0
}

// Armed reports whether the current path access is being traced.
func (r *Recorder) Armed() bool { return r != nil && r.armed }

// Disarm ends the current access's tracing window. The issuer calls it
// when it accounts the finished slot (one path access per issue slot).
func (r *Recorder) Disarm() {
	if r != nil {
		r.armed = false
	}
}

// Record appends one event, overwriting the oldest when the ring is
// full. It does not check Armed — callers gate on it so un-sampled
// accesses pay only the branch.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.ring[r.head%uint64(len(r.ring))] = e
	r.head++
}

// Recorded returns the total events recorded, including dropped ones.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.head
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil || r.head <= uint64(len(r.ring)) {
		return 0
	}
	return r.head - uint64(len(r.ring))
}

// SampledAccesses returns how many path accesses armed the recorder.
func (r *Recorder) SampledAccesses() uint64 {
	if r == nil {
		return 0
	}
	return r.sampled
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.head < uint64(len(r.ring)) {
		return int(r.head)
	}
	return len(r.ring)
}

// Capacity returns the ring capacity.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// SampleEvery returns the access sampling period.
func (r *Recorder) SampleEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.sampleEvery
}

// Trace is an immutable snapshot of a recorder: the retained events in
// record order plus the drop accounting needed to judge coverage.
type Trace struct {
	// Events holds the retained events, oldest first.
	Events []Event
	// Recorded and Dropped mirror the recorder's totals at snapshot
	// time; Events holds the last Recorded-Dropped of them.
	Recorded, Dropped uint64
	// SampledAccesses and SampleEvery document the sampling that
	// produced the trace.
	SampledAccesses, SampleEvery uint64
}

// Snapshot copies the ring into an immutable Trace, oldest event first.
// A nil recorder snapshots to nil.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	n := r.Len()
	ev := make([]Event, n)
	if r.head <= uint64(len(r.ring)) {
		copy(ev, r.ring[:n])
	} else {
		// Ring has wrapped: oldest event lives at head % cap.
		start := int(r.head % uint64(len(r.ring)))
		m := copy(ev, r.ring[start:])
		copy(ev[m:], r.ring[:start])
	}
	return &Trace{
		Events:          ev,
		Recorded:        r.head,
		Dropped:         r.Dropped(),
		SampledAccesses: r.sampled,
		SampleEvery:     r.sampleEvery,
	}
}
