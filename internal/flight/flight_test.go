package flight

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	r.SampleAccess()
	if r.SampleRequest() {
		t.Error("nil recorder sampled a request")
	}
	if r.Armed() {
		t.Error("nil recorder armed")
	}
	r.Record(Event{Kind: KindAccess})
	r.Disarm()
	if r.Recorded() != 0 || r.Dropped() != 0 || r.Len() != 0 || r.Capacity() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if r.Snapshot() != nil {
		t.Error("nil recorder snapshot not nil")
	}
}

func TestRingWrapDrop(t *testing.T) {
	r := New(4, 1)
	for i := uint64(0); i < 10; i++ {
		r.Record(Event{Start: i, Kind: KindAccess})
	}
	if got := r.Recorded(); got != 10 {
		t.Errorf("Recorded = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	if got := r.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	tr := r.Snapshot()
	if len(tr.Events) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(tr.Events))
	}
	for i, e := range tr.Events {
		if want := uint64(6 + i); e.Start != want {
			t.Errorf("event %d Start = %d, want %d (oldest-first after wrap)",
				i, e.Start, want)
		}
	}
	if tr.Recorded != 10 || tr.Dropped != 6 {
		t.Errorf("trace accounting = (%d recorded, %d dropped), want (10, 6)",
			tr.Recorded, tr.Dropped)
	}
}

func TestSnapshotBeforeWrap(t *testing.T) {
	r := New(8, 1)
	for i := uint64(0); i < 3; i++ {
		r.Record(Event{Start: i})
	}
	tr := r.Snapshot()
	if len(tr.Events) != 3 || tr.Dropped != 0 {
		t.Fatalf("snapshot = %d events, %d dropped; want 3, 0",
			len(tr.Events), tr.Dropped)
	}
	for i, e := range tr.Events {
		if e.Start != uint64(i) {
			t.Errorf("event %d Start = %d, want %d", i, e.Start, i)
		}
	}
}

func TestSamplingPattern(t *testing.T) {
	r := New(16, 3)
	var armed []int
	for i := 0; i < 10; i++ {
		r.SampleAccess()
		if r.Armed() {
			armed = append(armed, i)
		}
		r.Disarm()
	}
	want := []int{0, 3, 6, 9}
	if !reflect.DeepEqual(armed, want) {
		t.Errorf("armed accesses = %v, want %v", armed, want)
	}
	if got := r.SampledAccesses(); got != 4 {
		t.Errorf("SampledAccesses = %d, want 4", got)
	}
	if r.SampleEvery() != 3 {
		t.Errorf("SampleEvery = %d, want 3", r.SampleEvery())
	}
}

func TestSampleRequestIndependentCounter(t *testing.T) {
	r := New(16, 2)
	// Interleave accesses; request sampling must follow its own 1-in-N.
	var got []bool
	for i := 0; i < 5; i++ {
		r.SampleAccess()
		got = append(got, r.SampleRequest())
	}
	want := []bool{true, false, true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("request samples = %v, want %v", got, want)
	}
}

// drive records a deterministic mixed workload and returns the snapshot.
func drive(r *Recorder) *Trace {
	for i := uint64(0); i < 40; i++ {
		r.SampleAccess()
		if r.Armed() {
			r.Record(Event{Start: i * 10, End: i*10 + 7, Arg: i, Kind: KindAccess, Sub: uint8(i % 6)})
			r.Record(Event{Start: i * 10, End: i*10 + 4, Kind: KindPhaseRead, Sub: uint8(i % 6)})
			r.Record(Event{Start: i*10 + 4, End: i*10 + 6, Arg: i % 3, Aux: 4,
				Kind: KindDramRun, Sub: uint8(i % 2), Ch: uint16(i % 2), Bank: uint16(i % 4)})
		}
		r.Disarm()
	}
	return r.Snapshot()
}

func TestSamplingDeterminism(t *testing.T) {
	a := drive(New(32, 4))
	b := drive(New(32, 4))
	if !reflect.DeepEqual(a, b) {
		t.Error("identical workloads produced different traces")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func exportOnce(t *testing.T) []byte {
	t.Helper()
	tr := drive(New(64, 2))
	// Add the event kinds drive does not produce so render is covered.
	tr.Events = append(tr.Events,
		Event{Start: 500, End: 520, Arg: 9, Aux: 3, Kind: KindRequest},
		Event{Start: 500, End: 510, Kind: KindPhaseDecrypt, Sub: 1},
		Event{Start: 510, End: 530, Kind: KindPhaseWrite, Sub: 1},
		Event{Start: 530, End: 540, Aux: 11, Kind: KindDramDrain, Ch: 1},
		Event{Start: 540, Arg: 12, Aux: 2, Kind: KindOccupancy},
	)
	var buf bytes.Buffer
	if err := Write(&buf, []Process{{Name: "cell-a", Trace: tr}, {Name: "empty"}}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestExportDeterministicAndValidJSON(t *testing.T) {
	a := exportOnce(t)
	b := exportOnce(t)
	if !bytes.Equal(a, b) {
		t.Error("repeated exports of the same trace differ")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export holds no events")
	}
	if doc.TraceEvents[0].Name != "process_name" || doc.TraceEvents[0].Ph != "M" {
		t.Errorf("first event = %+v, want process_name metadata", doc.TraceEvents[0])
	}
	// The empty second process must still announce itself.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Name != "process_name" || last.Pid != 2 {
		t.Errorf("trailing event = %+v, want pid-2 process_name", last)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" && e.Ph != "X" && e.Ph != "C" {
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Pid < 1 || e.Pid > 2 {
			t.Errorf("event pid %d out of range", e.Pid)
		}
	}
}
