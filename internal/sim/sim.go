// Package sim wires the full system together: the trace-driven core model,
// the LLC, the ORAM controller behind its pacing issuer, and the DRAM
// timing model. One System runs one workload under one scheme; experiments
// construct a fresh System per (scheme, benchmark) pair so runs never share
// state.
//
// # Concurrency contract
//
// A System is strictly single-goroutine: nothing in it (controller, stash,
// caches, DRAM model, RNG streams) is synchronized, and a System must never
// be shared across goroutines. Parallel sweeps get their speedup one level
// up — internal/runner fans independent cells across workers, and each
// worker builds its own System via New inside the cell. Constructing
// Systems concurrently is safe (New touches only its own allocations).
//
// # Determinism
//
// Given a config.System (including its Seed) and a deterministic
// trace.Generator, a run is bit-reproducible: all randomness flows from
// rng.New(cfg.Seed) streams owned by this System. That is what lets the
// experiment harness promise byte-identical tables for every worker count.
//
// # Zero-allocation contract
//
// Step and everything it calls — LLC access, path issue and service, DRAM
// timing, metric updates — must not allocate in steady state
// (TestPathAccessZeroAllocs, `make alloccheck`). The observability layer
// respects this: every instrument is a plain field updated in place, the
// metrics.Registry is consulted only at construction and Snapshot time,
// and the opt-in epoch time series (SetEpochInterval) is the one feature
// allowed to allocate, which is why it defaults to off.
package sim

import (
	"iroram/internal/block"
	"iroram/internal/cache"
	"iroram/internal/config"
	"iroram/internal/core"
	"iroram/internal/dram"
	"iroram/internal/flight"
	"iroram/internal/metrics"
	"iroram/internal/rng"
	"iroram/internal/trace"
)

// System is one fully wired simulation instance.
type System struct {
	cfg     config.System
	mem     *dram.Model
	llc     *cache.Cache
	ctrl    *core.Controller
	issuer  *core.Issuer
	scanner *cache.DWBScanner
	reg     *metrics.Registry

	now          uint64
	lastDone     uint64
	outstanding  []uint64
	instructions uint64
	requests     uint64
	readMisses   uint64
	writeMisses  uint64
	dirtyWBs     uint64

	// missLatency and outstandingDepth are observed inline in Step; Hist
	// observations are plain array increments, preserving the steady-state
	// zero-allocation contract of the access path.
	missLatency      metrics.Hist
	outstandingDepth metrics.Hist

	// flight, when non-nil, is the attached cycle-domain flight recorder;
	// Result captures its snapshot (see AttachFlight).
	flight *flight.Recorder
}

// AttachFlight wires a flight recorder into the system: the controller
// records sampled access/phase spans, the DRAM model records per-run
// service and drain events, and Result carries a trace snapshot in
// Result.Flight. Attach before the first Step; the recorder shares the
// System's single-goroutine contract. Recording only observes — every
// counter and histogram is identical with tracing on or off — and the
// flight_* drop/coverage metrics registered in New read the recorder
// lazily, so the registry's name set does not depend on attachment.
func (s *System) AttachFlight(fl *flight.Recorder) {
	s.flight = fl
	s.ctrl.AttachFlight(fl)
	s.mem.AttachFlight(fl)
}

// llcDWB adapts the LLC to the controller's DWBSource interface. In
// proactive-remap mode (the Section IV-D future work) candidates are any
// LRU lines — under LLC-D even clean evictions need PosMap work — and the
// dirty bit is left alone (only PosMap state is prefetched).
type llcDWB struct {
	llc       *cache.Cache
	scan      *cache.DWBScanner
	proactive bool
}

func (d llcDWB) FindCandidate(now uint64) (uint64, bool) { return d.scan.FindCandidate(now) }

func (d llcDWB) StillCandidate(addr uint64) bool {
	if d.proactive {
		return d.llc.IsLRU(addr)
	}
	return d.llc.IsDirtyLRU(addr)
}

func (d llcDWB) MarkClean(addr uint64) bool {
	if d.proactive {
		return true // nothing to clear; only PosMap state was prefetched
	}
	return d.llc.MarkClean(addr)
}

// New builds a System for the given configuration.
func New(cfg config.System) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem := dram.New(cfg.DRAM)
	r := rng.New(cfg.Seed)
	ctrl, err := core.NewController(cfg, mem, r)
	if err != nil {
		return nil, err
	}
	llc := cache.New(cfg.LLC.Sets(), cfg.LLC.Ways)
	scanRNG := rng.New(cfg.Seed ^ 0xD1B54A32D192ED03)
	newScan := cache.NewDWBScanner
	if cfg.Scheme.ProactiveRemap {
		newScan = cache.NewLRUScanner
	}
	scanner := newScan(llc, func() int { return scanRNG.Intn(llc.Sets()) })
	s := &System{
		cfg:     cfg,
		mem:     mem,
		llc:     llc,
		ctrl:    ctrl,
		scanner: scanner,
	}
	s.issuer = core.NewIssuer(ctrl, llcDWB{llc: llc, scan: scanner,
		proactive: cfg.Scheme.ProactiveRemap})
	s.reg = metrics.NewRegistry()
	ctrl.RegisterMetrics(s.reg)
	s.issuer.RegisterMetrics(s.reg)
	s.registerMetrics()
	return s, nil
}

// Controller exposes the ORAM controller (read-only use by experiments).
func (s *System) Controller() *core.Controller { return s.ctrl }

// Now returns the current simulated CPU cycle.
func (s *System) Now() uint64 { return s.now }

// Step consumes one trace record: the instruction gap retires at the core's
// IPC, then the memory access walks the LLC and (on a miss) the ORAM. The
// out-of-order core sustains up to CPU.MLP outstanding misses: it stalls
// only when the ROB would fill, which puts memory-bound workloads in the
// throughput-limited regime where Path ORAM's bandwidth demand is the
// bottleneck (Section II-B).
func (s *System) Step(req trace.Request) {
	s.instructions += uint64(req.GapInstr)
	s.now += uint64(req.GapInstr) / uint64(s.cfg.CPU.IPC)
	s.requests++
	s.now += s.cfg.LLC.HitLatency
	if s.llc.Access(req.Addr, req.Write) {
		return
	}
	if req.Write {
		s.writeMisses++
	} else {
		s.readMisses++
	}
	// ROB-limited MLP: wait for the oldest outstanding miss when full.
	if len(s.outstanding) >= s.cfg.CPU.MLP {
		if s.outstanding[0] > s.now {
			s.now = s.outstanding[0]
		}
		s.outstanding = s.outstanding[1:]
	}
	// Write-allocate: the block is fetched either way; a write miss leaves
	// the line dirty. The victim goes to the ORAM if dirty — and under
	// LLC-D even when clean, because the block must rejoin the tree.
	victim := s.llc.Insert(req.Addr, req.Write)
	if victim.Valid && (victim.Dirty || s.cfg.Scheme.DelayedRemap) {
		s.dirtyWBs++
		s.now = s.issuer.PostWrite(s.now, block.ID(victim.Addr))
	}
	done := s.issuer.ReadBlock(s.now, block.ID(req.Addr))
	s.missLatency.Observe(done - s.now)
	s.outstanding = append(s.outstanding, done)
	s.outstandingDepth.Observe(uint64(len(s.outstanding)))
	if done > s.lastDone {
		s.lastDone = done
	}
}

// Run consumes up to maxRequests records from gen and returns the result.
func (s *System) Run(gen trace.Generator, maxRequests int) Result {
	for i := 0; i < maxRequests; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		s.Step(req)
	}
	return s.Result(gen.Name())
}

// RunWithSnapshots is Run plus periodic tree-utilization snapshots (the
// Fig 3 methodology): snapshots+1 measurements labelled by progress,
// including one right after initialization.
func (s *System) RunWithSnapshots(gen trace.Generator, maxRequests, snapshots int) (Result, []UtilSnapshot) {
	out := []UtilSnapshot{{Label: "init", Util: s.ctrl.Utilization()}}
	per := maxRequests / snapshots
	if per == 0 {
		per = 1
	}
	consumed := 0
	for i := 0; i < maxRequests; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		s.Step(req)
		consumed++
		if consumed%per == 0 {
			out = append(out, UtilSnapshot{
				Label: progressLabel(consumed, maxRequests),
				Util:  s.ctrl.Utilization(),
			})
		}
	}
	return s.Result(gen.Name()), out
}

func progressLabel(done, total int) string {
	pct := done * 100 / total
	return percentString(pct)
}

func percentString(pct int) string {
	digits := [3]byte{}
	n := 0
	if pct >= 100 {
		return "100%"
	}
	if pct >= 10 {
		digits[n] = byte('0' + pct/10)
		n++
	}
	digits[n] = byte('0' + pct%10)
	n++
	return string(digits[:n]) + "%"
}

// UtilSnapshot is one labelled utilization-per-level measurement.
type UtilSnapshot struct {
	Label string
	Util  []float64
}

// Result summarizes one run.
//
// A Result is immutable once returned: the producing System never writes to
// it again (Metrics is a fresh snapshot, ORAM.Epochs a finished series), and
// every consumer — table arithmetic, artifact records, the cross-figure
// cell cache that hands one stored Result to many requesters — only reads
// it. TestCachedResultImmutable (internal/experiments) pins this contract.
type Result struct {
	Name         string
	Cycles       uint64
	Instructions uint64
	Requests     uint64
	ReadMisses   uint64
	WriteMisses  uint64
	DirtyWBs     uint64
	ORAM         core.Stats
	DRAM         dram.Stats
	LLC          cache.Stats

	// Metrics is the full registry snapshot at capture time — the record
	// the JSONL artifact emitter serializes (docs/METRICS.md).
	Metrics *metrics.Snapshot

	// Flight is the flight-recorder trace snapshot, nil unless a recorder
	// was attached (AttachFlight). Like Metrics it is immutable: the
	// snapshot copies the ring, so later recording never mutates it.
	Flight *flight.Trace
}

// Result captures the current counters without consuming more trace.
func (s *System) Result(name string) Result {
	cycles := s.now
	if s.lastDone > cycles {
		cycles = s.lastDone // drain outstanding misses
	}
	return Result{
		Name:         name,
		Cycles:       cycles,
		Instructions: s.instructions,
		Requests:     s.requests,
		ReadMisses:   s.readMisses,
		WriteMisses:  s.writeMisses,
		DirtyWBs:     s.dirtyWBs,
		ORAM:         *s.ctrl.Stats(),
		DRAM:         s.mem.Stats(),
		LLC:          s.llc.Stats(),
		Metrics:      s.reg.Snapshot(),
		Flight:       s.flight.Snapshot(),
	}
}

// ReadMPKI returns LLC read misses per kilo-instruction.
func (r Result) ReadMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.ReadMisses) / (float64(r.Instructions) / 1000)
}

// WriteMPKI returns dirty write-backs per kilo-instruction (the Table II
// write metric).
func (r Result) WriteMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.DirtyWBs) / (float64(r.Instructions) / 1000)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}
