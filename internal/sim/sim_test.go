package sim

import (
	"testing"

	"iroram/internal/config"
	"iroram/internal/trace"
)

func tinySystem(t *testing.T, sch config.Scheme) *System {
	t.Helper()
	s, err := New(config.Tiny().WithScheme(sch))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func universe(s *System) uint64 { return s.cfg.ORAM.DataBlocks() }

func TestRunBasic(t *testing.T) {
	s := tinySystem(t, config.Baseline())
	gen := trace.Random(universe(s), 0.3, 1)
	res := s.Run(gen, 500)
	if res.Requests != 500 {
		t.Fatalf("consumed %d requests", res.Requests)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatal("no time or instructions simulated")
	}
	if res.ReadMisses == 0 {
		t.Fatal("random trace produced no LLC read misses")
	}
	if res.ORAM.ServedRequests == 0 {
		t.Fatal("ORAM never engaged")
	}
	if err := s.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHotSetHitsLLC(t *testing.T) {
	s := tinySystem(t, config.Baseline())
	// Working set of 64 blocks fits easily in the tiny 1K-line LLC.
	gen := trace.NewSynth(trace.Spec{
		Name: "hot", ReadMPKI: 10, WriteMPKI: 0,
		Pattern: trace.Uniform, ColdBlocks: 64, ColdFraction: 1,
	}, universe(s), 3)
	res := s.Run(gen, 2000)
	if res.LLC.MissRate() > 0.2 {
		t.Errorf("hot working set missed %.2f of accesses", res.LLC.MissRate())
	}
}

func TestDirtyEvictionsPostWrites(t *testing.T) {
	s := tinySystem(t, config.Baseline())
	// Streaming writes over a region much larger than the LLC.
	gen := trace.NewSynth(trace.Spec{
		Name: "wstream", ReadMPKI: 0, WriteMPKI: 40,
		Pattern: trace.Stream, ColdBlocks: 1 << 14, ColdFraction: 1,
	}, universe(s), 3)
	res := s.Run(gen, 4000)
	if res.DirtyWBs == 0 {
		t.Fatal("write streaming produced no dirty write-backs")
	}
	if err := s.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLLCDCleanEvictionsAlsoWriteBack(t *testing.T) {
	run := func(sch config.Scheme) Result {
		s := tinySystem(t, sch)
		gen := trace.NewSynth(trace.Spec{
			Name: "rstream", ReadMPKI: 40, WriteMPKI: 0,
			Pattern: trace.Stream, ColdBlocks: 1 << 14, ColdFraction: 1,
		}, universe(s), 3)
		return s.Run(gen, 4000)
	}
	normal := run(config.Baseline())
	llcd := run(config.LLCDScheme())
	if llcd.DirtyWBs <= normal.DirtyWBs {
		t.Errorf("LLC-D write-backs %d not above baseline %d for a read stream",
			llcd.DirtyWBs, normal.DirtyWBs)
	}
}

// TestLLCDReadStreamSlowdown reproduces the paper's key LLC-D result: a
// read-intensive, low-locality workload (mcf-like) gets substantially
// slower under delayed remapping.
func TestLLCDReadStreamSlowdown(t *testing.T) {
	run := func(sch config.Scheme) uint64 {
		s := tinySystem(t, sch)
		gen := trace.NewSynth(trace.Spec{
			Name: "mcf-ish", ReadMPKI: 20, WriteMPKI: 0.1,
			Pattern: trace.Chase, ColdBlocks: 1 << 14, ColdFraction: 0.9,
		}, universe(s), 7)
		return s.Run(gen, 2500).Cycles
	}
	base := run(config.Baseline())
	llcd := run(config.LLCDScheme())
	if float64(llcd) < 1.1*float64(base) {
		t.Errorf("LLC-D %d cycles vs baseline %d: expected clear slowdown", llcd, base)
	}
}

func TestSnapshots(t *testing.T) {
	s := tinySystem(t, config.Baseline())
	gen := trace.Random(universe(s), 0.5, 5)
	_, snaps := s.RunWithSnapshots(gen, 1000, 4)
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots, want 5 (init + 4)", len(snaps))
	}
	if snaps[0].Label != "init" {
		t.Errorf("first snapshot labelled %q", snaps[0].Label)
	}
	for _, sn := range snaps {
		if len(sn.Util) != s.cfg.ORAM.Levels {
			t.Fatalf("snapshot %q has %d levels", sn.Label, len(sn.Util))
		}
		for l, u := range sn.Util {
			if u < 0 || u > 1 {
				t.Errorf("snapshot %q level %d: %v", sn.Label, l, u)
			}
		}
	}
}

func TestDWBSchemeRuns(t *testing.T) {
	s := tinySystem(t, config.IRDWBScheme())
	// Write bursts then idle gaps: dummy slots should find dirty LRU lines.
	gen := trace.NewSynth(trace.Spec{
		Name: "bursty", ReadMPKI: 0.5, WriteMPKI: 2,
		Pattern: trace.Stream, ColdBlocks: 1 << 14, ColdFraction: 0.8,
		IdleEvery: 40, IdleInstr: 100_000,
	}, universe(s), 9)
	res := s.Run(gen, 3000)
	if res.ORAM.DWBConverted == 0 {
		t.Error("IR-DWB never converted a dummy slot")
	}
	if res.ORAM.DWBCompleted == 0 {
		t.Error("IR-DWB never completed an early write-back")
	}
	if err := s.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDWBReducesDemandWrites: early write-backs clean LLC lines, so fewer
// evictions are dirty when a demand miss needs the slot.
func TestDWBReducesDemandWrites(t *testing.T) {
	run := func(sch config.Scheme) Result {
		s := tinySystem(t, sch)
		gen := trace.NewSynth(trace.Spec{
			Name: "bursty", ReadMPKI: 0.5, WriteMPKI: 2,
			Pattern: trace.Stream, ColdBlocks: 1 << 14, ColdFraction: 0.8,
			IdleEvery: 40, IdleInstr: 100_000,
		}, universe(s), 9)
		return s.Run(gen, 3000)
	}
	base := run(config.Baseline())
	dwb := run(config.IRDWBScheme())
	if dwb.DirtyWBs >= base.DirtyWBs {
		t.Errorf("IR-DWB dirty write-backs %d not below baseline %d", dwb.DirtyWBs, base.DirtyWBs)
	}
}

func TestAllSchemesRunAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	for _, sch := range config.AllSchemes() {
		for _, bench := range []string{"gcc", "mcf", "lbm"} {
			s := tinySystem(t, sch)
			gen := trace.MustBenchmark(bench, universe(s), 11)
			res := s.Run(gen, 1200)
			if res.ORAM.NonUniformIssues != 0 {
				t.Errorf("%s/%s: %d non-uniform issues", sch.Name, bench, res.ORAM.NonUniformIssues)
			}
			if err := s.ctrl.CheckInvariants(); err != nil {
				t.Errorf("%s/%s: %v", sch.Name, bench, err)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		s := tinySystem(t, config.IROramScheme())
		gen := trace.MustBenchmark("xz", universe(s), 2)
		return s.Run(gen, 1500)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.ORAM.Paths != b.ORAM.Paths {
		t.Fatal("simulation is not deterministic")
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{Instructions: 2000, ReadMisses: 10, DirtyWBs: 4, Cycles: 1000}
	if r.ReadMPKI() != 5 {
		t.Errorf("ReadMPKI = %v", r.ReadMPKI())
	}
	if r.WriteMPKI() != 2 {
		t.Errorf("WriteMPKI = %v", r.WriteMPKI())
	}
	if r.IPC() != 2 {
		t.Errorf("IPC = %v", r.IPC())
	}
	var zero Result
	if zero.ReadMPKI() != 0 || zero.WriteMPKI() != 0 || zero.IPC() != 0 {
		t.Error("zero result should report zero metrics")
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := config.Tiny()
	cfg.ORAM.Levels = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestExtendedSchemesRun(t *testing.T) {
	// The schemes beyond the Fig 10 list: Ring, Ring+IR-Alloc, and the
	// future-work proactive-remapping stack. Everything must serve all
	// requests, keep the issue-gap audit clean and pass invariants.
	for _, sch := range []config.Scheme{
		config.RingScheme(), config.RingIRAlloc(),
		config.IRStashAllocOnLLCD(), config.IROramOnLLCD(),
	} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			s := tinySystem(t, sch)
			gen := trace.MustBenchmark("bla", universe(s), 21)
			res := s.Run(gen, 1500)
			if res.ORAM.ServedRequests == 0 {
				t.Fatal("nothing served")
			}
			if res.ORAM.NonUniformIssues != 0 {
				t.Errorf("%d issue-gap violations", res.ORAM.NonUniformIssues)
			}
			if err := s.Controller().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestContextSwitchMidRun(t *testing.T) {
	s := tinySystem(t, config.IRStashScheme())
	gen := trace.MustBenchmark("gcc", universe(s), 5)
	s.Run(gen, 800)
	before := s.Now()
	done := s.Controller().ContextSwitch(before)
	if done <= before {
		t.Fatal("context switch free")
	}
	// Resume and keep going.
	res := s.Run(gen, 800)
	if res.ORAM.ServedRequests == 0 {
		t.Fatal("no service after resume")
	}
	if err := s.Controller().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
