package sim

import (
	"bytes"
	"testing"

	"iroram/internal/config"
	"iroram/internal/flight"
	"iroram/internal/trace"
)

// runTraced runs a Tiny Baseline cell with an every-access recorder large
// enough that nothing drops, and returns the result.
func runTraced(t *testing.T, seed uint64) Result {
	t.Helper()
	cfg := config.Tiny()
	cfg.Seed = seed
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachFlight(flight.New(1<<21, 1))
	gen := trace.Random(cfg.ORAM.DataBlocks(), 0.3, cfg.Seed)
	return s.Run(gen, 3000)
}

// TestFlightReconcilesPhaseCounters pins the acceptance criterion that
// trace totals agree with the existing aggregate counters: with 1-in-1
// sampling and no ring drops, the summed phase span durations must equal
// the controller's phase cycle counters exactly, and the whole-access
// spans of eviction paths must sum to the background-eviction cycle
// counter.
func TestFlightReconcilesPhaseCounters(t *testing.T) {
	res := runTraced(t, 7)
	tr := res.Flight
	if tr == nil {
		t.Fatal("Result.Flight is nil with a recorder attached")
	}
	if tr.Dropped != 0 {
		t.Fatalf("ring dropped %d events; enlarge the test capacity", tr.Dropped)
	}
	var readSum, writeSum, evictSum uint64
	for _, e := range tr.Events {
		switch e.Kind {
		case flight.KindPhaseRead:
			readSum += e.End - e.Start
		case flight.KindPhaseWrite:
			writeSum += e.End - e.Start
		case flight.KindAccess:
			if e.Sub == 4 { // block.PathEvict
				evictSum += e.End - e.Start
			}
		}
	}
	c := res.Metrics.Counters
	if got, want := readSum, c["oram_phase_read_cycles"]; got != want {
		t.Errorf("summed read spans = %d, oram_phase_read_cycles = %d", got, want)
	}
	if got, want := writeSum, c["oram_phase_writeback_cycles"]; got != want {
		t.Errorf("summed writeback spans = %d, oram_phase_writeback_cycles = %d", got, want)
	}
	if got, want := evictSum, c["oram_phase_evict_cycles"]; got != want {
		t.Errorf("summed eviction-access spans = %d, oram_phase_evict_cycles = %d", got, want)
	}
	if got, want := c["flight_accesses_sampled"], c["oram_paths_issued"]; got != want {
		t.Errorf("flight_accesses_sampled = %d, oram_paths_issued = %d (1-in-1 sampling)", got, want)
	}
	if got, want := c["flight_events_recorded"], tr.Recorded; got != want {
		t.Errorf("flight_events_recorded = %d, trace Recorded = %d", got, want)
	}
}

// TestFlightTraceDeterministic pins byte-identical export across repeated
// runs of the same (config, seed) cell.
func TestFlightTraceDeterministic(t *testing.T) {
	export := func() []byte {
		res := runTraced(t, 11)
		var buf bytes.Buffer
		if err := flight.Write(&buf, []flight.Process{{Name: "tiny/random", Trace: res.Flight}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Error("repeated runs of the same cell/seed exported different traces")
	}
}

// TestFlightDoesNotPerturbCounters pins the observe-only contract at the
// system level: attaching a recorder changes no counter and no cycle.
func TestFlightDoesNotPerturbCounters(t *testing.T) {
	run := func(attach bool) Result {
		cfg := config.Tiny().WithScheme(config.IROramScheme())
		cfg.Seed = 3
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			s.AttachFlight(flight.New(4096, 5))
		}
		gen := trace.Random(cfg.ORAM.DataBlocks(), 0.3, cfg.Seed)
		return s.Run(gen, 2000)
	}
	off, on := run(false), run(true)
	if off.Cycles != on.Cycles || off.ORAM.PathsIssued != on.ORAM.PathsIssued {
		t.Errorf("tracing perturbed the run: off (cycles %d, paths %d), on (cycles %d, paths %d)",
			off.Cycles, off.ORAM.PathsIssued, on.Cycles, on.ORAM.PathsIssued)
	}
	for name, v := range off.Metrics.Counters {
		if name == "flight_events_recorded" || name == "flight_events_dropped" ||
			name == "flight_accesses_sampled" {
			continue
		}
		if on.Metrics.Counters[name] != v {
			t.Errorf("counter %s: off %d, on %d", name, v, on.Metrics.Counters[name])
		}
	}
}
