package sim

import (
	"iroram/internal/metrics"
	"iroram/internal/trace"
)

// registerMetrics binds the system-level instruments into the registry,
// alongside the controller's and issuer's. Like those, registration happens
// once in New and snapshots read the live fields — Step does no registry
// work. DRAM and LLC counters are exported through closures over their
// owners' snapshot methods, sampled only when a metrics.Snapshot is taken.
func (s *System) registerMetrics() {
	r := s.reg
	r.CounterFunc("sim_cycles", "cycles",
		"simulated CPU cycles elapsed (including outstanding-miss drain)",
		func() uint64 {
			if s.lastDone > s.now {
				return s.lastDone
			}
			return s.now
		})
	r.Counter("sim_instructions", "instructions",
		"retired instructions", &s.instructions)
	r.Counter("sim_requests", "requests",
		"LLC-side memory requests consumed from the trace", &s.requests)
	r.Counter("sim_read_misses", "requests", "LLC read misses", &s.readMisses)
	r.Counter("sim_write_misses", "requests", "LLC write misses", &s.writeMisses)
	r.Counter("sim_dirty_writebacks", "blocks",
		"LLC evictions posted to the ORAM write queue", &s.dirtyWBs)

	r.Histogram("sim_miss_latency", "cycles",
		"end-to-end LLC-miss service latency (issue to data available)",
		&s.missLatency)
	r.Histogram("sim_outstanding_misses", "misses",
		"outstanding-miss window occupancy sampled at each miss issue",
		&s.outstandingDepth)

	r.CounterFunc("llc_hits", "requests", "LLC hits",
		func() uint64 { return s.llc.Stats().Hits })
	r.CounterFunc("llc_misses", "requests", "LLC misses",
		func() uint64 { return s.llc.Stats().Misses })
	r.CounterFunc("llc_evictions", "lines", "LLC evictions",
		func() uint64 { return s.llc.Stats().Evictions })
	r.CounterFunc("llc_dirty_evictions", "lines", "dirty LLC evictions",
		func() uint64 { return s.llc.Stats().DirtyEvictions })

	r.CounterFunc("dram_reads", "blocks", "DRAM block reads",
		func() uint64 { return s.mem.Stats().Reads })
	r.CounterFunc("dram_writes", "blocks", "DRAM block writes",
		func() uint64 { return s.mem.Stats().Writes })
	r.CounterFunc("dram_row_hits", "accesses", "DRAM open-row hits",
		func() uint64 { return s.mem.Stats().RowHits })
	r.CounterFunc("dram_row_misses", "accesses", "DRAM row misses",
		func() uint64 { return s.mem.Stats().RowMisses })
	r.CounterFunc("dram_busy_cycles", "cycles",
		"summed per-channel DRAM busy time in CPU cycles",
		func() uint64 { return s.mem.Stats().BusyCPUCycles })

	// Flight-recorder coverage counters. Registered unconditionally — the
	// registry's name set must not depend on whether a recorder is
	// attached (docs/METRICS.md invariance contract); with no recorder the
	// closures read a nil recorder's zeros.
	r.CounterFunc("flight_events_recorded", "events",
		"flight-recorder events recorded (including later overwritten ones)",
		func() uint64 { return s.flight.Recorded() })
	r.CounterFunc("flight_events_dropped", "events",
		"flight-recorder events overwritten by ring wrap-around",
		func() uint64 { return s.flight.Dropped() })
	r.CounterFunc("flight_accesses_sampled", "paths",
		"path accesses that armed the flight recorder (1-in-N sampling)",
		func() uint64 { return s.flight.SampledAccesses() })
}

// Metrics returns the system's metrics registry. Snapshots taken from it are
// consistent only between Step calls — the registry is live, not locked, and
// shares the System's single-goroutine contract.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// SetEpochInterval enables periodic epoch snapshots every n issued paths
// (n = 0 disables them, the default). Enabling epochs trades the access
// path's zero-allocation guarantee for amortized time-series appends, so the
// harness only turns it on when asked (-epochs).
func (s *System) SetEpochInterval(n uint64) {
	s.ctrl.Stats().EpochInterval = n
}

// RunObserved is Run plus a progress callback: fn(consumed) is invoked every
// `every` consumed requests and once at the end. The callback runs on the
// simulation goroutine between Step calls — the one point where a metrics
// snapshot is consistent — which is how the telemetry server stays off the
// System's single-goroutine contract. fn must not retain the System across
// calls; every <= 0 invokes fn only at the end.
func (s *System) RunObserved(gen trace.Generator, maxRequests, every int,
	fn func(consumed int)) Result {
	consumed := 0
	for i := 0; i < maxRequests; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		s.Step(req)
		consumed++
		if fn != nil && every > 0 && consumed%every == 0 {
			fn(consumed)
		}
	}
	if fn != nil {
		fn(consumed)
	}
	return s.Result(gen.Name())
}
