package config

// Preset geometries. Paper() reproduces Table I exactly; Scaled() is the
// default for the experiment harness (same level structure relative to the
// 10-level tree-top cache, 1/16 the capacity, so a full figure sweep runs in
// minutes instead of days); Tiny() is for unit tests.

// Paper returns the Table I system: 8 GB protected space, 4 GB user data,
// L=25, Z=4, 64 B blocks, 200-entry stash, 10 tree-top levels on-chip
// (256 KB / 4 K entries), 4-channel 800 MHz DRAM under a 3.2 GHz core,
// 2 MB 8-way LLC, T=1000 cycles.
func Paper() System {
	return withGeometry(25)
}

// Scaled returns the default experiment geometry: L=21 (256 MB user data)
// with the LLC scaled to 512 KB so the cache-to-tree capacity ratios (and
// therefore eviction rates, tree-top reuse windows and the ρ small-tree
// sweet spot) stay in the paper's regime. Utilization bands, PLB behaviour
// and scheme ordering are level-relative, so the scaled system reproduces
// the paper's shapes at tractable cost.
func Scaled() System {
	s := withGeometry(21)
	s.LLC = Cache{CapacityBytes: 512 * 1024, Ways: 8, HitLatency: 30}
	// The PLB scales with the PosMap footprint (1/16 of Table I's space)
	// for the same reason the LLC scales: on-chip cache reach relative to
	// working sets is what sets PLB miss rates, tree-top reuse and the
	// PosMap-path traffic IR-Stash attacks.
	s.ORAM.PLBEntries = 32
	s.ORAM.PLBWays = 4
	return s
}

// Tiny returns a unit-test geometry: L=14, 5 on-chip levels, small caches.
func Tiny() System {
	s := withGeometry(14)
	s.ORAM.TopLevels = 5
	s.ORAM.Z = Uniform(14, 4)
	s.ORAM.PLBEntries = 32
	s.ORAM.PLBWays = 4
	s.LLC = Cache{CapacityBytes: 64 * 1024, Ways: 8, HitLatency: 30}
	s.L1 = Cache{CapacityBytes: 8 * 1024, Ways: 2, HitLatency: 1}
	return s
}

func withGeometry(levels int) System {
	return System{
		ORAM: ORAM{
			Levels:              levels,
			TopLevels:           10,
			Z:                   Uniform(levels, 4),
			StashCapacity:       200,
			StashEvictThreshold: 150,
			SStashWays:          4,
			PLBEntries:          128,
			PLBWays:             8,
			IntervalT:           1000,
			OnChipLatency:       12,
		},
		DRAM: DRAM{
			Channels:              4,
			BanksPerChannel:       16,
			RowBytes:              8192,
			CPUCyclesPerDRAMCycle: 4,
			TRCD:                  11,
			TCAS:                  11,
			TRP:                   11,
			TBurst:                4,
			TWR:                   12,
		},
		LLC:    Cache{CapacityBytes: 2 * 1024 * 1024, Ways: 8, HitLatency: 30},
		L1:     Cache{CapacityBytes: 256 * 1024, Ways: 2, HitLatency: 1},
		CPU:    CPU{IPC: 4, WriteQueueDepth: 16, MLP: 4},
		Scheme: Baseline(),
		Seed:   1,
	}
}

// The compared schemes of Section VI. Each function returns the Scheme knob
// settings; the caller owns the matching Z profile via WithScheme.

// Baseline is Freecursive Path ORAM with the 10-level dedicated tree-top
// cache, subtree layout and background eviction.
func Baseline() Scheme {
	return Scheme{Name: "Baseline", Top: TopDedicated}
}

// RhoScheme is the ρ design of Nagarajan et al. over Baseline: best small
// tree (L-6 levels, Z=2) and a fixed 1:2 main:small issue pattern.
func RhoScheme() Scheme {
	return Scheme{Name: "Rho", Top: TopDedicated, Rho: true,
		RhoLevelsDelta: 6, RhoZ: 2, RhoPattern: 2}
}

// IRAllocScheme is IR-Alloc standalone over Baseline. The Z profile is
// selected separately (AllocStandaloneProfile).
func IRAllocScheme() Scheme {
	return Scheme{Name: "IR-Alloc", Top: TopDedicated}
}

// IRStashScheme is IR-Stash over Baseline: the tree top moves into the
// double-indexed S-Stash.
func IRStashScheme() Scheme {
	return Scheme{Name: "IR-Stash", Top: TopIRStash}
}

// IRDWBScheme is IR-DWB over Baseline.
func IRDWBScheme() Scheme {
	return Scheme{Name: "IR-DWB", Top: TopDedicated, DWB: true}
}

// IROramScheme integrates all three proposals. The integrated Z profile is
// IROramProfile.
func IROramScheme() Scheme {
	return Scheme{Name: "IR-ORAM", Top: TopIRStash, DWB: true}
}

// LLCDScheme is Baseline plus the delayed block remapping policy of ρ.
func LLCDScheme() Scheme {
	return Scheme{Name: "LLC-D", Top: TopDedicated, DelayedRemap: true}
}

// IRStashAllocOnLLCD is IR-Alloc + IR-Stash on top of an LLC-D baseline
// (Fig 11).
func IRStashAllocOnLLCD() Scheme {
	return Scheme{Name: "IR-Stash+IR-Alloc/LLC-D", Top: TopIRStash, DelayedRemap: true}
}

// IROramOnLLCD implements the paper's Section IV-D future work: the full
// IR-ORAM stack over an LLC-D baseline, with dummy paths converted into
// proactive PosMap prefetches for LLC LRU entries so their eventual
// eviction reinserts for free.
func IROramOnLLCD() Scheme {
	return Scheme{Name: "IR-ORAM/LLC-D", Top: TopIRStash,
		DelayedRemap: true, DWB: true, ProactiveRemap: true}
}

// Z profiles from the paper, expressed as leaf-relative bands so they scale
// with L (Section VI-B gives them for L=25 with 10 on-chip levels).

// AllocStandaloneProfile is the standalone IR-Alloc setting of Fig 10
// ("Z=1 for [10,15], Z=2 for [16,18]" at L=25), identical to IR-Alloc4.
func AllocStandaloneProfile(levels, topLevels int) ZProfile {
	return Alloc4Profile(levels, topLevels)
}

// IROramProfile is the integrated IR-ORAM setting of Fig 10 ("Z=2 for
// [10,16] and Z=3 for [17,19]" at L=25), identical to IR-Alloc1.
func IROramProfile(levels, topLevels int) ZProfile {
	return Alloc1Profile(levels, topLevels)
}

// Alloc1Profile: Z=2 for L10-16, Z=3 for L17-19, Z=4 below (PL=43 at L=25).
func Alloc1Profile(levels, topLevels int) ZProfile {
	return Banded(levels, topLevels, 2, Band{5, 4}, Band{3, 3})
}

// Alloc2Profile: Z=2 for L10-16 and L17-18, Z=4 below (PL=42 at L=25).
func Alloc2Profile(levels, topLevels int) ZProfile {
	return Banded(levels, topLevels, 2, Band{6, 4})
}

// Alloc3Profile: Z=1 for L10-14, Z=2 for L15-18, Z=4 below (PL=37 at L=25).
func Alloc3Profile(levels, topLevels int) ZProfile {
	return Banded(levels, topLevels, 1, Band{6, 4}, Band{4, 2})
}

// Alloc4Profile: Z=1 for L10-15, Z=2 for L16-18, Z=4 below (PL=36 at L=25).
func Alloc4Profile(levels, topLevels int) ZProfile {
	return Banded(levels, topLevels, 1, Band{6, 4}, Band{3, 2})
}

// WithScheme returns a copy of s configured for the named scheme preset,
// installing the matching Z profile where the scheme requires one.
func (s System) WithScheme(sch Scheme) System {
	s.Scheme = sch
	o := &s.ORAM
	switch sch.Name {
	case "IR-Alloc":
		o.Z = AllocStandaloneProfile(o.Levels, o.TopLevels)
	case "IR-ORAM":
		o.Z = IROramProfile(o.Levels, o.TopLevels)
	case "IR-Stash+IR-Alloc/LLC-D", "IR-ORAM/LLC-D":
		o.Z = IROramProfile(o.Levels, o.TopLevels)
	case "Ring+IR-Alloc":
		o.Z = IROramProfile(o.Levels, o.TopLevels)
	default:
		o.Z = Uniform(o.Levels, 4)
	}
	return s
}

// RingScheme is Ring ORAM (Ren et al.) over the Baseline's tree-top cache
// and Freecursive recursion: reads fetch one block per bucket, buckets are
// reshuffled after RingS reads, and a full eviction path runs every RingA
// accesses (the S=12, A=8 setting: with an eviction path every 8 reads, a bucket at any level sees ~8 reads between evict-path crossings, so 12 dummies avoid most early reshuffles).
func RingScheme() Scheme {
	return Scheme{Name: "Ring", Top: TopDedicated, Ring: true, RingS: 12, RingA: 8}
}

// RingIRAlloc composes Ring ORAM with the IR-Alloc bucket-size profile —
// the integration Section VII describes as orthogonal.
func RingIRAlloc() Scheme {
	return Scheme{Name: "Ring+IR-Alloc", Top: TopDedicated, Ring: true, RingS: 12, RingA: 8}
}

// AllSchemes returns the schemes compared in Fig 10, in plot order.
func AllSchemes() []Scheme {
	return []Scheme{
		Baseline(), RhoScheme(), IRAllocScheme(), IRStashScheme(),
		IRDWBScheme(), IROramScheme(), LLCDScheme(),
	}
}
