package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperPresetValid(t *testing.T) {
	for _, sys := range []System{Paper(), Scaled(), Tiny()} {
		if err := sys.Validate(); err != nil {
			t.Errorf("%d levels: %v", sys.ORAM.Levels, err)
		}
	}
}

func TestAllSchemesValidate(t *testing.T) {
	for _, sch := range AllSchemes() {
		sys := Scaled().WithScheme(sch)
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", sch.Name, err)
		}
	}
	sys := Scaled().WithScheme(IRStashAllocOnLLCD())
	if err := sys.Validate(); err != nil {
		t.Errorf("fig11 scheme: %v", err)
	}
}

// TestFig7BlocksPerPath pins the paper's Fig 7 arithmetic: at L=25 with the
// 10-level tree-top cache, one path moves 100 blocks with no top cache, 60
// with it, and 43 with the integrated IR-Alloc profile.
func TestFig7BlocksPerPath(t *testing.T) {
	uni := Uniform(25, 4)
	if got := uni.BlocksPerPath(0); got != 100 {
		t.Errorf("no top cache: %d blocks per path, want 100", got)
	}
	if got := uni.BlocksPerPath(10); got != 60 {
		t.Errorf("top-10 cache: %d blocks per path, want 60", got)
	}
	if got := IROramProfile(25, 10).BlocksPerPath(10); got != 43 {
		t.Errorf("IR-ORAM profile: %d blocks per path, want 43", got)
	}
}

// TestFig12ProfilePL pins the per-path block counts of the four IR-Alloc
// configurations in Section VI-B.
func TestFig12ProfilePL(t *testing.T) {
	cases := []struct {
		name string
		prof ZProfile
		want int
	}{
		{"IR-Alloc1", Alloc1Profile(25, 10), 43},
		{"IR-Alloc2", Alloc2Profile(25, 10), 42},
		{"IR-Alloc3", Alloc3Profile(25, 10), 37},
		{"IR-Alloc4", Alloc4Profile(25, 10), 36},
	}
	for _, c := range cases {
		if got := c.prof.BlocksPerPath(10); got != c.want {
			t.Errorf("%s: PL=%d, want %d", c.name, got, c.want)
		}
	}
}

// TestAlloc1MatchesPaperLevels verifies the leaf-relative band encoding
// reproduces the paper's absolute level ranges at L=25.
func TestAlloc1MatchesPaperLevels(t *testing.T) {
	p := Alloc1Profile(25, 10)
	for l := 10; l <= 16; l++ {
		if p[l] != 2 {
			t.Errorf("level %d: Z=%d, want 2", l, p[l])
		}
	}
	for l := 17; l <= 19; l++ {
		if p[l] != 3 {
			t.Errorf("level %d: Z=%d, want 3", l, p[l])
		}
	}
	for l := 20; l <= 24; l++ {
		if p[l] != 4 {
			t.Errorf("level %d: Z=%d, want 4", l, p[l])
		}
	}
}

// TestSpaceReductionUnder1Percent checks the paper's claim that every
// IR-Alloc configuration keeps the DRAM space loss below 1%... of the total
// tree; Section IV-B reports ~0.9% for the Fig 7 allocation.
func TestSpaceReductionUnder1Percent(t *testing.T) {
	base := Uniform(25, 4)
	for _, prof := range []ZProfile{
		Alloc1Profile(25, 10), Alloc2Profile(25, 10),
		Alloc3Profile(25, 10), Alloc4Profile(25, 10),
	} {
		red := prof.SpaceReductionVs(base, 10)
		if red <= 0 || red >= 0.01 {
			t.Errorf("space reduction %.4f out of (0, 0.01)", red)
		}
	}
}

func TestDataBlocksPaper(t *testing.T) {
	o := Paper().ORAM
	// 4 GB of user data in 64 B blocks = 2^26 blocks ("64 million").
	if got := o.DataBlocks(); got < 1<<26-4 || got > 1<<26 {
		t.Errorf("DataBlocks() = %d, want about 2^26", got)
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
		want   string
	}{
		{"levels", func(s *System) { s.ORAM.Levels = 2 }, "levels"},
		{"top", func(s *System) { s.ORAM.TopLevels = 99 }, "top levels"},
		{"zlen", func(s *System) { s.ORAM.Z = Uniform(3, 4) }, "Z profile"},
		{"zzero", func(s *System) { s.ORAM.Z[12] = 0 }, "Z=0"},
		{"stash", func(s *System) { s.ORAM.StashCapacity = 1 }, "stash"},
		{"thresh", func(s *System) { s.ORAM.StashEvictThreshold = 999 }, "threshold"},
		{"plb", func(s *System) { s.ORAM.PLBWays = 3 }, "PLB"},
		{"fit", func(s *System) { s.ORAM.UserBlocks = 1 << 40 }, "slots"},
		{"dram", func(s *System) { s.DRAM.Channels = 0 }, "DRAM"},
		{"timing", func(s *System) { s.DRAM.TRCD = 0 }, "timings"},
		{"cache", func(s *System) { s.LLC.Ways = 3 }, "cache"},
		{"cpu", func(s *System) { s.CPU.IPC = 0 }, "IPC"},
		{"rho", func(s *System) { s.Scheme = RhoScheme(); s.Scheme.RhoZ = 0 }, "rho"},
	}
	for _, c := range cases {
		sys := Scaled()
		c.mutate(&sys)
		err := sys.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBandedCoversAllLevels(t *testing.T) {
	check := func(seed uint64) bool {
		levels := int(seed%20) + 12
		top := int(seed>>8) % (levels - 2)
		p := Banded(levels, top, 1, Band{3, 4}, Band{2, 2})
		if len(p) != levels {
			return false
		}
		for l, z := range p {
			if z < 1 || z > 4 {
				return false
			}
			if l < top && z != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotsMatchesClosedForm(t *testing.T) {
	// Uniform Z: slots = Z * (2^L - 1).
	for _, l := range []int{5, 14, 21, 25} {
		p := Uniform(l, 4)
		want := uint64(4) * ((1 << uint(l)) - 1)
		if got := p.Slots(); got != want {
			t.Errorf("L=%d: slots %d, want %d", l, got, want)
		}
	}
}

func TestMemorySlotsExcludesTop(t *testing.T) {
	p := Uniform(25, 4)
	if p.MemorySlots(10) >= p.Slots() {
		t.Error("memory slots should exclude the on-chip top")
	}
	diff := p.Slots() - p.MemorySlots(10)
	want := uint64(4) * ((1 << 10) - 1)
	if diff != want {
		t.Errorf("top slots %d, want %d", diff, want)
	}
}

func TestTopCacheMatchesTableI(t *testing.T) {
	// Table I: dedicated tree-top cache of 4 K entries = top 10 levels.
	top := Uniform(25, 4).Slots() - Uniform(25, 4).MemorySlots(10)
	if top != 4092 {
		t.Errorf("top-10 slots = %d, want 4092 (~4K entries)", top)
	}
}

func TestWithSchemeInstallsProfile(t *testing.T) {
	sys := Scaled().WithScheme(IROramScheme())
	if sys.ORAM.Z.BlocksPerPath(10) >= Uniform(21, 4).BlocksPerPath(10) {
		t.Error("IR-ORAM profile should reduce blocks per path")
	}
	back := sys.WithScheme(Baseline())
	if back.ORAM.Z.BlocksPerPath(10) != Uniform(21, 4).BlocksPerPath(10) {
		t.Error("switching back to Baseline should restore uniform Z")
	}
}
