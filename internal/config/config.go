// Package config defines the configuration surface of the IR-ORAM simulator:
// ORAM tree geometry (including the per-level bucket sizes that implement
// IR-Alloc), DRAM timing, cache hierarchy, CPU model, and scheme selection.
//
// The presets mirror Table I of the paper (L=25 protecting 8 GB with 4 GB of
// user data) plus a scaled default used by the experiment harness and a tiny
// geometry for unit tests. All experiments are pure functions of a
// SystemConfig and a seed.
//
// The configuration structs double as the cache identity of a simulation
// cell: internal/cellcache fingerprints a fully-resolved System field by
// field. Adding a field here is safe — a reflection guard there fails
// loudly until the key encoder covers it — but the new field must be added
// to that encoder before anything using the cell cache runs.
package config

import (
	"errors"
	"fmt"
)

// BlockSize is the data block (cache line) size in bytes. The paper fixes it
// at 64 B; the PosMap entry size (4 B) and therefore the recursion fanout
// (16) follow from it.
const BlockSize = 64

// PosMapEntryBytes is the size of one PosMap entry (a path ID).
const PosMapEntryBytes = 4

// PosMapFanout is the number of PosMap entries per 64 B block.
const PosMapFanout = BlockSize / PosMapEntryBytes

// ZProfile holds the bucket size (Z) of every tree level, index 0 = root.
// A classic Path ORAM uses a uniform profile; IR-Alloc shrinks the middle
// levels. Levels cached on-chip (below ORAM.TopLevels) use their profile
// value as the on-chip bucket capacity; for DRAM space accounting they
// contribute nothing (the paper's "Z=0 for memory allocation" for [0,9]).
type ZProfile []int

// Uniform returns a profile with the same Z at every one of levels levels.
func Uniform(levels, z int) ZProfile {
	p := make(ZProfile, levels)
	for i := range p {
		p[i] = z
	}
	return p
}

// Band describes a run of tree levels, counted from the leaf level upward,
// that share a bucket size. Bands compose into IR-Alloc profiles in a
// geometry-independent way: the paper's L=25 configurations are expressed as
// leaf-relative bands so they scale with L (Fig 16).
type Band struct {
	// Levels is how many consecutive levels the band covers.
	Levels int
	// Z is the bucket size within the band.
	Z int
}

// Banded builds a profile for a tree with levels levels and topLevels
// on-chip levels. Bands are applied bottom-up starting at the leaf; any
// remaining levels between the top cache and the last band get restZ. Levels
// above topLevels keep Z=4 (the on-chip bucket capacity).
func Banded(levels, topLevels, restZ int, bands ...Band) ZProfile {
	p := Uniform(levels, 4)
	l := levels - 1
	for _, b := range bands {
		for i := 0; i < b.Levels && l >= topLevels; i++ {
			p[l] = b.Z
			l--
		}
	}
	for ; l >= topLevels; l-- {
		p[l] = restZ
	}
	return p
}

// BlocksPerPath returns the number of blocks one path access moves to or
// from DRAM: the sum of Z over the memory-resident levels [topLevels, L).
func (p ZProfile) BlocksPerPath(topLevels int) int {
	n := 0
	for l := topLevels; l < len(p); l++ {
		n += p[l]
	}
	return n
}

// Slots returns the total number of block slots of the whole tree (on-chip
// top levels included), i.e. sum over levels of 2^level * Z(level).
func (p ZProfile) Slots() uint64 {
	var n uint64
	for l, z := range p {
		n += (uint64(1) << uint(l)) * uint64(z)
	}
	return n
}

// MemorySlots returns the number of slots allocated in DRAM (levels at and
// below topLevels).
func (p ZProfile) MemorySlots(topLevels int) uint64 {
	var n uint64
	for l := topLevels; l < len(p); l++ {
		n += (uint64(1) << uint(l)) * uint64(p[l])
	}
	return n
}

// SpaceReductionVs returns the fractional DRAM space saved relative to base,
// considering memory-resident levels only. Positive means p is smaller.
func (p ZProfile) SpaceReductionVs(base ZProfile, topLevels int) float64 {
	b := base.MemorySlots(topLevels)
	if b == 0 {
		return 0
	}
	return 1 - float64(p.MemorySlots(topLevels))/float64(b)
}

// TopDesign selects how the top tree levels are kept on-chip.
type TopDesign uint8

const (
	// TopNone keeps the whole tree in DRAM (the original Path ORAM).
	TopNone TopDesign = iota
	// TopDedicated is the baseline: a dedicated bucket-indexed tree-top
	// cache, invisible to the LLC (a request must resolve its PosMap entry
	// before it can discover a tree-top hit).
	TopDedicated
	// TopIRStash is the IR-Stash design: the tree top lives in a
	// double-indexed set-associative S-Stash searchable by block address,
	// with the TT pointer table preserving the tree structure.
	TopIRStash
)

func (d TopDesign) String() string {
	switch d {
	case TopNone:
		return "none"
	case TopDedicated:
		return "dedicated"
	case TopIRStash:
		return "ir-stash"
	default:
		return fmt.Sprintf("TopDesign(%d)", uint8(d))
	}
}

// ORAM configures the ORAM tree and controller.
type ORAM struct {
	// Levels is L, the number of tree levels (root level 0, leaves L-1).
	Levels int
	// TopLevels is how many top levels are kept on-chip (10 in the paper).
	TopLevels int
	// Z is the per-level bucket size profile, length Levels.
	Z ZProfile
	// UserBlocks is the number of protected data blocks (N_d). Zero means
	// "half of the uniform-Z=4 slot capacity", the paper's 50% rule.
	UserBlocks uint64
	// StashCapacity is the F-Stash size in blocks (200 in the paper).
	StashCapacity int
	// StashEvictThreshold triggers background eviction when the F-Stash
	// holds more blocks than this after a write phase.
	StashEvictThreshold int
	// SStashWays is the associativity of the S-Stash (IR-Stash only).
	SStashWays int
	// PLBEntries is the number of PosMap blocks the PLB can hold.
	PLBEntries int
	// PLBWays is the PLB associativity.
	PLBWays int
	// IntervalT is the fixed path-issue interval in CPU cycles for
	// timing-channel protection. Zero disables the protection (no pacing,
	// no dummy paths), used by the "no timing protection" ablation.
	IntervalT uint64
	// OnChipLatency is the fixed CPU-cycle cost charged for stash/PLB/
	// PosMap3 lookups and block decrypt/authenticate per path.
	OnChipLatency uint64
}

// LeafCount returns the number of leaves, 2^(Levels-1).
func (o ORAM) LeafCount() uint64 { return uint64(1) << uint(o.Levels-1) }

// DataBlocks returns the effective number of protected user blocks.
func (o ORAM) DataBlocks() uint64 {
	if o.UserBlocks != 0 {
		return o.UserBlocks
	}
	return Uniform(o.Levels, 4).Slots() / 2
}

// DRAM configures the memory timing model. Times are in DRAM cycles; the
// model converts to CPU cycles with CPUCyclesPerDRAMCycle.
type DRAM struct {
	Channels              int
	BanksPerChannel       int
	RowBytes              int
	CPUCyclesPerDRAMCycle int
	TRCD                  int // activate -> column command
	TCAS                  int // column command -> first data
	TRP                   int // precharge
	TBurst                int // data transfer per 64 B block
	TWR                   int // write recovery before precharge

	// PathSchedSlots sizes the controller's per-leaf path schedule cache
	// (the memoized (channel,bank,row) run lists that let repeat leaves
	// skip address generation entirely). 0 picks a default of
	// min(8192, leaf count) slots per tree; a negative value disables the
	// cache. Purely a performance knob: the memoized schedule is
	// timing-identical to a fresh build, so simulation output never
	// depends on it.
	PathSchedSlots int
}

// Cache configures one cache level.
type Cache struct {
	CapacityBytes int
	Ways          int
	HitLatency    uint64 // CPU cycles
}

// Sets returns the number of sets.
func (c Cache) Sets() int { return c.CapacityBytes / BlockSize / c.Ways }

// CPU configures the trace-driven core model.
type CPU struct {
	// IPC is the retire rate for the non-memory instruction gap between
	// trace records.
	IPC int
	// WriteQueueDepth bounds the posted (non-blocking) ORAM write requests
	// from dirty LLC evictions before the core stalls.
	WriteQueueDepth int
	// MLP is the number of outstanding read misses the out-of-order core
	// sustains before stalling (its ROB-limited memory-level parallelism).
	MLP int
}

// Scheme selects which of the paper's compared designs is active. The zero
// value is the Baseline (Freecursive + dedicated 10-level tree-top cache +
// subtree layout + background eviction).
type Scheme struct {
	// Name is a display label ("Baseline", "IR-ORAM", ...).
	Name string
	// Top selects the tree-top design.
	Top TopDesign
	// DWB enables IR-DWB dummy-to-writeback conversion.
	DWB bool
	// DelayedRemap enables the LLC-D delayed block remapping policy.
	DelayedRemap bool
	// ProactiveRemap implements the paper's Section IV-D future work:
	// under LLC-D, dummy paths are converted into PosMap prefetches for
	// LLC LRU entries, so the PosMap work their eviction would need is
	// already done. Requires DelayedRemap and DWB.
	ProactiveRemap bool
	// Rho enables the two-tree ρ design (smaller hot tree + main tree).
	Rho bool
	// RhoLevelsDelta is how many levels smaller the ρ tree is than the
	// main tree (paper best setting: main L=25, small L=19 => 6).
	RhoLevelsDelta int
	// RhoZ is the ρ small-tree bucket size (2 in the paper).
	RhoZ int
	// RhoPattern is the number of small-tree slots per main-tree slot in
	// the fixed issue pattern (2 => "1:2" in the paper).
	RhoPattern int
	// Ring replaces the Path ORAM read protocol with Ring ORAM (Ren et
	// al., cited as orthogonal in Section VII): one block per bucket per
	// read, early bucket reshuffles, and a full eviction path every RingA
	// accesses. Composes with the IR-Alloc Z profile.
	Ring bool
	// RingS is the per-bucket dummy budget (reads a bucket serves between
	// reshuffles).
	RingS int
	// RingA is the eviction rate: one full eviction path per RingA
	// accesses.
	RingA int
}

// System is the full simulator configuration.
type System struct {
	ORAM ORAM
	DRAM DRAM
	LLC  Cache
	L1   Cache
	CPU  CPU
	Scheme
	// Seed drives every random decision (leaf remaps, traces, placement).
	Seed uint64
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (s System) Validate() error {
	o := s.ORAM
	switch {
	// 32 keeps every leaf below 2^31: leaves are 32-bit and the top bit is
	// reserved as an in-flight marker (tree.GatherFlag).
	case o.Levels < 3 || o.Levels > 32:
		return fmt.Errorf("config: ORAM levels %d out of [3,32]", o.Levels)
	case o.TopLevels < 0 || o.TopLevels >= o.Levels:
		return fmt.Errorf("config: top levels %d out of [0,%d)", o.TopLevels, o.Levels)
	case len(o.Z) != o.Levels:
		return fmt.Errorf("config: Z profile has %d levels, want %d", len(o.Z), o.Levels)
	case o.StashCapacity < 8:
		return fmt.Errorf("config: stash capacity %d too small", o.StashCapacity)
	case o.StashEvictThreshold <= 0 || o.StashEvictThreshold > o.StashCapacity:
		return fmt.Errorf("config: stash eviction threshold %d out of (0,%d]",
			o.StashEvictThreshold, o.StashCapacity)
	case o.PLBEntries <= 0 || o.PLBWays <= 0 || o.PLBEntries%o.PLBWays != 0:
		return fmt.Errorf("config: PLB %d entries / %d ways invalid", o.PLBEntries, o.PLBWays)
	}
	for l, z := range o.Z {
		if z < 0 || z > 16 {
			return fmt.Errorf("config: Z[%d]=%d out of [0,16]", l, z)
		}
		if l >= o.TopLevels && z == 0 {
			return fmt.Errorf("config: memory level %d has Z=0", l)
		}
	}
	// The tree (minus a stash worth of slack) must fit all user blocks plus
	// the recursive PosMap blocks.
	need := o.DataBlocks()
	need += ceilDiv(need, PosMapFanout)                        // PosMap1
	need += ceilDiv(ceilDiv(need, PosMapFanout), PosMapFanout) // PosMap2 upper bound
	if slots := o.Z.Slots(); uint64(float64(slots)*0.95) < need {
		return fmt.Errorf("config: %d blocks need more than 95%% of %d slots", need, slots)
	}
	if s.Scheme.Top == TopIRStash && o.SStashWays <= 0 {
		return errors.New("config: IR-Stash requires SStashWays > 0")
	}
	if s.Scheme.ProactiveRemap && (!s.Scheme.DelayedRemap || !s.Scheme.DWB) {
		return errors.New("config: ProactiveRemap requires DelayedRemap and DWB")
	}
	if s.Scheme.Ring {
		if s.Scheme.RingS <= 0 || s.Scheme.RingA <= 0 {
			return errors.New("config: Ring requires positive RingS and RingA")
		}
		if s.Scheme.Rho || s.Scheme.DelayedRemap {
			return errors.New("config: Ring does not combine with Rho or LLC-D")
		}
	}
	if s.Scheme.Rho {
		if s.Scheme.RhoLevelsDelta <= 0 || s.Scheme.RhoLevelsDelta >= o.Levels-2 {
			return fmt.Errorf("config: rho delta %d invalid", s.Scheme.RhoLevelsDelta)
		}
		if s.Scheme.RhoZ <= 0 || s.Scheme.RhoPattern <= 0 {
			return errors.New("config: rho Z and pattern must be positive")
		}
	}
	d := s.DRAM
	if d.Channels <= 0 || d.BanksPerChannel <= 0 || d.RowBytes < BlockSize ||
		d.CPUCyclesPerDRAMCycle <= 0 {
		return errors.New("config: DRAM geometry invalid")
	}
	if d.TRCD <= 0 || d.TCAS <= 0 || d.TRP <= 0 || d.TBurst <= 0 || d.TWR < 0 {
		return errors.New("config: DRAM timings must be positive")
	}
	for _, c := range []Cache{s.LLC, s.L1} {
		if c.CapacityBytes <= 0 || c.Ways <= 0 || c.CapacityBytes%(BlockSize*c.Ways) != 0 {
			return fmt.Errorf("config: cache %+v geometry invalid", c)
		}
	}
	if s.CPU.IPC <= 0 || s.CPU.WriteQueueDepth <= 0 || s.CPU.MLP <= 0 {
		return errors.New("config: CPU IPC, write queue depth and MLP must be positive")
	}
	return nil
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }
