// Package energy estimates system energy per the paper's Section VI-F
// methodology: Path ORAM energy is dominated by memory accesses (about
// 40 nJ per access to a DRAM device vs about 0.6 nJ per 256 KB-cache access,
// CACTI 7 numbers), so the estimate charges per-event energies to the
// counters the simulator already collects. The paper's findings — on-chip
// overheads of the IR techniques are negligible, and memory-system energy
// savings track the performance improvement — fall out of the same model.
package energy

import "iroram/internal/sim"

// Costs are per-event energies in nanojoules.
type Costs struct {
	// DRAMAccess is one 64 B block transfer (CACTI: ~40 nJ).
	DRAMAccess float64
	// CacheAccess is one on-chip SRAM lookup (CACTI: ~0.6 nJ for 256 KB).
	CacheAccess float64
	// StashOp is one fully-associative stash search/insert.
	StashOp float64
	// CryptoPerBlock is AES+MAC for one 64 B block.
	CryptoPerBlock float64
}

// DefaultCosts returns the paper's CACTI-derived numbers.
func DefaultCosts() Costs {
	return Costs{
		DRAMAccess:     40,
		CacheAccess:    0.6,
		StashOp:        0.8,
		CryptoPerBlock: 1.2,
	}
}

// Breakdown is the energy estimate for one run, in millijoules.
type Breakdown struct {
	DRAM   float64
	OnChip float64
	Crypto float64
}

// Total returns the run's total estimated energy in millijoules.
func (b Breakdown) Total() float64 { return b.DRAM + b.OnChip + b.Crypto }

// DRAMShare returns the memory fraction of total energy — the paper's
// argument for why on-chip additions (extra TT lookups, DWB scans, stash
// evictions) are negligible.
func (b Breakdown) DRAMShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.DRAM / t
}

// Estimate charges the run's event counters with the per-event costs.
func Estimate(res sim.Result, c Costs) Breakdown {
	nj := Breakdown{}
	memAccesses := float64(res.DRAM.Reads + res.DRAM.Writes)
	nj.DRAM = memAccesses * c.DRAMAccess
	// On-chip: every LLC lookup, every PLB probe, and one stash operation
	// per block moved through the controller.
	onChipEvents := float64(res.LLC.Hits+res.LLC.Misses) +
		float64(res.ORAM.PLBHits+res.ORAM.PLBMisses)
	nj.OnChip = onChipEvents*c.CacheAccess +
		float64(res.ORAM.Paths.BlocksRead)*c.StashOp
	// Every block read is decrypted+verified; every block written is
	// re-encrypted+MACed.
	nj.Crypto = float64(res.ORAM.Paths.BlocksRead+res.ORAM.Paths.BlocksWrit) *
		c.CryptoPerBlock
	// nJ -> mJ
	const nJPerMJ = 1e6
	nj.DRAM /= nJPerMJ
	nj.OnChip /= nJPerMJ
	nj.Crypto /= nJPerMJ
	return nj
}
