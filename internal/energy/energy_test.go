package energy

import (
	"testing"

	"iroram/internal/cache"
	"iroram/internal/config"
	"iroram/internal/core"
	"iroram/internal/dram"
	"iroram/internal/sim"
	"iroram/internal/stats"
	"iroram/internal/trace"
)

func fakeResult() sim.Result {
	var p stats.PathCounters
	p.BlocksRead, p.BlocksWrit = 1000, 1000
	return sim.Result{
		DRAM: dram.Stats{Reads: 1000, Writes: 1000},
		LLC:  cache.Stats{Hits: 500, Misses: 100},
		ORAM: core.Stats{Paths: p, PLBHits: 50, PLBMisses: 25},
	}
}

func TestEstimateArithmetic(t *testing.T) {
	b := Estimate(fakeResult(), DefaultCosts())
	// 2000 DRAM accesses x 40 nJ = 80000 nJ = 0.08 mJ.
	if b.DRAM < 0.079 || b.DRAM > 0.081 {
		t.Errorf("DRAM energy %v mJ, want 0.08", b.DRAM)
	}
	if b.Total() <= b.DRAM {
		t.Error("total should include on-chip and crypto energy")
	}
}

func TestDRAMDominates(t *testing.T) {
	// The paper's premise: memory accesses dominate Path ORAM energy.
	b := Estimate(fakeResult(), DefaultCosts())
	if b.DRAMShare() < 0.8 {
		t.Errorf("DRAM share %.2f; the paper's regime is >80%%", b.DRAMShare())
	}
}

func TestZeroRun(t *testing.T) {
	b := Estimate(sim.Result{}, DefaultCosts())
	if b.Total() != 0 || b.DRAMShare() != 0 {
		t.Errorf("empty run has energy %v", b)
	}
}

// TestSavingsTrackTraffic reproduces the Section VI-F claim end-to-end:
// IR-ORAM's memory-energy saving is proportional to its traffic reduction.
func TestSavingsTrackTraffic(t *testing.T) {
	run := func(sch config.Scheme) sim.Result {
		cfg := config.Tiny().WithScheme(sch)
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.MustBenchmark("dee", cfg.ORAM.DataBlocks(), 1)
		return s.Run(gen, 2500)
	}
	base := Estimate(run(config.Baseline()), DefaultCosts())
	ir := Estimate(run(config.IROramScheme()), DefaultCosts())
	if ir.Total() >= base.Total() {
		t.Errorf("IR-ORAM energy %.3f mJ >= baseline %.3f mJ", ir.Total(), base.Total())
	}
	if base.DRAMShare() < 0.7 || ir.DRAMShare() < 0.7 {
		t.Errorf("DRAM shares %.2f / %.2f below the paper's regime",
			base.DRAMShare(), ir.DRAMShare())
	}
}
