package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

func get(t *testing.T, url string) (string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp.Header.Get("Content-Type"), body
}

func TestServeBeforeFirstPublish(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/", "/snapshot"} {
		ct, body := get(t, "http://"+s.Addr()+path)
		if ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", path, ct)
		}
		if string(body) != "{}\n" {
			t.Errorf("%s: body = %q before first publish, want {}\\n", path, body)
		}
	}
}

func TestPublishThenGet(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	type snap struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	if err := s.Publish(snap{Done: 3, Total: 12}); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, "http://"+s.Addr()+"/snapshot")
	var got snap
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if got.Done != 3 || got.Total != 12 {
		t.Errorf("got %+v, want {3 12}", got)
	}
}

func TestPublishMarshalErrorKeepsPayload(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Publish(map[string]int{"ok": 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(make(chan int)); err == nil {
		t.Fatal("Publish(chan) did not error")
	}
	_, body := get(t, "http://"+s.Addr()+"/")
	if string(body) != "{\"ok\":1}\n" {
		t.Errorf("payload after failed publish = %q, want previous snapshot", body)
	}
}

// TestConcurrentPublishAndGet hammers the server with publishers and
// readers at once — the shape of a sweep where cells complete on the
// progress callback while an external poller scrapes /snapshot. Every
// response must be one complete, well-formed published snapshot (or the
// initial {}), never a torn mix. Run under -race this also proves the
// payload handoff is properly synchronized.
func TestConcurrentPublishAndGet(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const publishers, perPublisher, readers, reads = 4, 50, 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, publishers+readers)

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if err := s.Publish(map[string]int{"cell": p*perPublisher + i}); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	url := "http://" + s.Addr() + "/snapshot"
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				var v map[string]int
				if err := json.Unmarshal(body, &v); err != nil {
					errs <- fmt.Errorf("torn or invalid snapshot %q: %w", body, err)
					return
				}
				if cell, ok := v["cell"]; ok && (cell < 0 || cell >= publishers*perPublisher) {
					errs <- fmt.Errorf("snapshot %q was never published", body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
