package telemetry

import (
	"fmt"
	"sort"
	"strconv"

	"iroram/internal/metrics"
)

// PromText renders a metrics snapshot in the Prometheus text exposition
// format (version 0.0.4). descs, when non-nil, supplies the HELP/TYPE
// headers (pass Registry.Descs()); names absent from descs still render,
// headerless. Output is deterministic: families sort by name, and the
// bytes are a pure function of (descs, snap), so equal snapshots render
// identically.
//
// Counters and gauges map directly. Power-of-two histograms become native
// Prometheus histograms (cumulative le buckets plus _sum and _count);
// linear histograms become one series per index under an "index" label
// plus a _total counter. Like Server.Publish, rendering happens on the
// caller's goroutine — hand the result to Server.PublishProm and the
// server holds only bytes.
func PromText(descs []metrics.Desc, snap *metrics.Snapshot) []byte {
	help := map[string]metrics.Desc{}
	for _, d := range descs {
		help[d.Name] = d
	}
	var out []byte
	header := func(name, promType string) {
		if d, ok := help[name]; ok && d.Help != "" {
			out = append(out, "# HELP "+name+" "+d.Help+"\n"...)
		}
		out = append(out, "# TYPE "+name+" "+promType+"\n"...)
	}

	for _, name := range sortedKeys(snap.Counters) {
		header(name, "counter")
		out = append(out, name+" "+strconv.FormatUint(snap.Counters[name], 10)+"\n"...)
	}
	for _, name := range sortedKeys(snap.Gauges) {
		header(name, "gauge")
		out = append(out, name+" "+strconv.FormatFloat(snap.Gauges[name], 'g', -1, 64)+"\n"...)
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		header(name, "histogram")
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.N
			out = append(out, fmt.Sprintf("%s_bucket{le=\"%d\"} %d\n", name, b.Hi, cum)...)
		}
		out = append(out, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)...)
		out = append(out, fmt.Sprintf("%s_sum %d\n", name, h.Sum)...)
		out = append(out, fmt.Sprintf("%s_count %d\n", name, h.Count)...)
	}
	for _, name := range sortedKeys(snap.Linear) {
		l := snap.Linear[name]
		header(name, "counter")
		for i, n := range l.Counts {
			if n == 0 {
				continue
			}
			out = append(out, fmt.Sprintf("%s{index=\"%d\"} %d\n", name, i, n)...)
		}
		header(name+"_total", "counter")
		out = append(out, fmt.Sprintf("%s_total %d\n", name, l.Total)...)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
