package telemetry

import (
	"strings"
	"testing"

	"iroram/internal/metrics"
)

// promFixture builds a registry exercising every instrument kind and
// returns its descs and snapshot.
func promFixture() ([]metrics.Desc, *metrics.Snapshot) {
	r := metrics.NewRegistry()
	c := uint64(7)
	r.Counter("oram_paths_issued", "paths", "paths issued", &c)
	r.GaugeFunc("sim_stash_occupancy", "blocks", "stash size", func() float64 { return 3.5 })
	h := &metrics.Hist{}
	h.Observe(1)
	h.Observe(5)
	r.Histogram("sim_queue_depth", "entries", "demand queue depth", h)
	l := metrics.NewLinearHist(4)
	l.Add(2)
	l.Add(2)
	r.LinearHistogram("oram_evict_level", "evictions", "evictions per level", l)
	return r.Descs(), r.Snapshot()
}

func TestPromTextRendersEveryKind(t *testing.T) {
	descs, snap := promFixture()
	out := string(PromText(descs, snap))
	for _, want := range []string{
		"# HELP oram_paths_issued paths issued",
		"# TYPE oram_paths_issued counter",
		"oram_paths_issued 7",
		"# TYPE sim_stash_occupancy gauge",
		"sim_stash_occupancy 3.5",
		"# TYPE sim_queue_depth histogram",
		"sim_queue_depth_bucket{le=\"+Inf\"} 2",
		"sim_queue_depth_sum 6",
		"sim_queue_depth_count 2",
		"oram_evict_level{index=\"2\"} 2",
		"oram_evict_level_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom text missing %q:\n%s", want, out)
		}
	}
}

// TestPromTextDeterministic renders the same snapshot twice; map iteration
// must not leak into the output order.
func TestPromTextDeterministic(t *testing.T) {
	descs, snap := promFixture()
	a, b := PromText(descs, snap), PromText(descs, snap)
	if string(a) != string(b) {
		t.Fatalf("renders differ:\n%s\n--\n%s", a, b)
	}
}

// TestPromAndHealthEndpoints checks the new routes: /healthz always
// answers ok, /metrics serves the placeholder then the published document
// with the Prometheus content type.
func TestPromAndHealthEndpoints(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ct, body := get(t, "http://"+s.Addr()+"/healthz")
	if string(body) != "ok\n" {
		t.Errorf("/healthz body = %q, want ok", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/healthz Content-Type = %q, want text/plain", ct)
	}

	ct, body = get(t, "http://"+s.Addr()+"/metrics")
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if !strings.HasPrefix(string(body), "#") {
		t.Errorf("/metrics placeholder = %q, want a comment line", body)
	}

	descs, snap := promFixture()
	s.PublishProm(PromText(descs, snap))
	_, body = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(string(body), "oram_paths_issued 7") {
		t.Errorf("/metrics after publish = %q, want published counters", body)
	}
}
