// Package telemetry serves live run snapshots over HTTP: expvar-style JSON
// at / and /snapshot, a Prometheus text-format view at /metrics, and a
// liveness probe at /healthz. The server owns no simulation state and never
// touches a System: the driver publishes pre-serialized snapshots from its
// own goroutine (the serialized progress-callback path), and HTTP handlers
// only copy the last published payload. That keeps the
// single-goroutine-per-System contract intact — the only synchronization is
// the server's own payload mutex.
package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server publishes JSON snapshots at GET / (and /snapshot), a Prometheus
// text view at /metrics and "ok" at /healthz. The zero value is not usable;
// construct with Start.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	payload []byte
	prom    []byte
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves the last
// published snapshot. It returns once the listener is bound; the accept
// loop runs on a background goroutine until Close.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, payload: []byte("{}\n"),
		prom: []byte("# no snapshot published yet\n")}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	mux.HandleFunc("/snapshot", s.handle)
	mux.HandleFunc("/metrics", s.handleProm)
	mux.HandleFunc("/healthz", s.handleHealth)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Publish marshals v and installs it as the snapshot served to subsequent
// requests. Marshalling happens at call time on the caller's goroutine, so
// v may be (a view of) single-goroutine simulation state: by the time
// Publish returns, the server holds only bytes and v is no longer referenced.
func (s *Server) Publish(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	s.mu.Lock()
	s.payload = b
	s.mu.Unlock()
	return nil
}

// PublishProm installs b as the Prometheus text document served at
// /metrics. Render it with PromText on the caller's goroutine — like
// Publish, the server retains only the bytes.
func (s *Server) PublishProm(b []byte) {
	s.mu.Lock()
	s.prom = b
	s.mu.Unlock()
}

// Close stops the listener. In-flight handlers finish against their own
// payload copy.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	b := s.payload
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck // best-effort response
}

func (s *Server) handleProm(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	b := s.prom
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b) //nolint:errcheck // best-effort response
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck // best-effort response
}
