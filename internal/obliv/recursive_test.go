package obliv

import (
	"bytes"
	"errors"
	"testing"

	"iroram/internal/rng"
)

func newRecursive(t *testing.T) *RecursiveStore {
	t.Helper()
	r, err := NewRecursiveStore(Config{
		Blocks: 512, BlockSize: 64, Key: testKey(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecursiveRoundTrip(t *testing.T) {
	r := newRecursive(t)
	for i := uint64(0); i < 64; i++ {
		if err := r.Write(i, []byte{byte(i), 0x5A}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 64; i++ {
		got, err := r.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) || got[1] != 0x5A {
			t.Fatalf("block %d corrupted: %v", i, got[:2])
		}
	}
}

func TestRecursiveNotFound(t *testing.T) {
	r := newRecursive(t)
	if _, err := r.Read(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// A failed read must not have left the block mapped: a second read
	// still misses, and a write then read works.
	if _, err := r.Read(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read: %v", err)
	}
	if err := r.Write(99, []byte("now")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(99)
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(got, "\x00")) != "now" {
		t.Fatalf("got %q", got)
	}
}

// TestRecursiveAccessCost pins Freecursive's cost: one PM access and one
// data access per operation, independent of hit/miss.
func TestRecursiveAccessCost(t *testing.T) {
	r := newRecursive(t)
	if err := r.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	d0, p0 := r.Accesses()
	if _, err := r.Read(1); err != nil {
		t.Fatal(err)
	}
	d1, p1 := r.Accesses()
	if d1-d0 != 1 || p1-p0 != 1 {
		t.Errorf("read cost %d data + %d pm accesses, want 1+1", d1-d0, p1-p0)
	}
	// Background evictions in either store may add accesses under load,
	// but a single idle read is exactly one of each.
}

// TestRecursiveSmallClientState: the whole point — the data store holds no
// per-block client map; only the 16x-smaller PM store does.
func TestRecursiveSmallClientState(t *testing.T) {
	r := newRecursive(t)
	if _, ok := r.Data.pos.(*oramPosMap); !ok {
		t.Fatal("data store is not ORAM-backed")
	}
	if _, ok := r.PM.pos.(memPosMap); !ok {
		t.Fatal("pm store should bottom out in client memory")
	}
	if got := len(r.PM.pos.(memPosMap)); got != 512/16 {
		t.Errorf("client map has %d entries, want %d", got, 512/16)
	}
}

func TestRecursiveStress(t *testing.T) {
	r := newRecursive(t)
	prng := rng.New(11)
	model := map[uint64]byte{}
	for i := 0; i < 1500; i++ {
		a := prng.Uint64n(512)
		if prng.Bool(0.5) {
			v := byte(prng.Uint64())
			if err := r.Write(a, []byte{v}); err != nil {
				t.Fatal(err)
			}
			model[a] = v
		} else if want, ok := model[a]; ok {
			got, err := r.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != want {
				t.Fatalf("block %d: got %d want %d", a, got[0], want)
			}
		}
	}
	if r.Data.StashLen() > 256 || r.PM.StashLen() > 256 {
		t.Errorf("stashes grew: data %d, pm %d", r.Data.StashLen(), r.PM.StashLen())
	}
}

func TestRecursiveWithIntegrity(t *testing.T) {
	r, err := NewRecursiveStore(Config{
		Blocks: 256, BlockSize: 64, Key: testKey(), Seed: 5, Integrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(7, []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	// Tamper the PM store's root bucket: the next access resolves the
	// position map first and must fail there.
	r.PM.MemoryImage()[0][5] ^= 1
	if _, err := r.Read(7); err == nil {
		t.Fatal("tampered position-map store accepted")
	}
}

func TestRecursiveRejectsCustomPosMap(t *testing.T) {
	_, err := NewRecursiveStore(Config{
		Blocks: 64, BlockSize: 64, Key: testKey(), PosMap: newMemPosMap(64),
	})
	if err == nil {
		t.Fatal("custom PosMap accepted")
	}
}

func TestDeriveKeyIndependence(t *testing.T) {
	a := deriveKey(testKey(), "posmap")
	b := deriveKey(testKey(), "other")
	if bytes.Equal(a, b) {
		t.Error("derived keys collide")
	}
	if len(a) != 32 {
		t.Errorf("derived key is %d bytes", len(a))
	}
}
