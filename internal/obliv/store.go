// Package obliv is a functional Path ORAM: a working oblivious block store
// over sealed (AES-CTR + HMAC) memory. Where internal/core models the
// *timing* of a hardware ORAM controller, this package implements the
// *data path* — real bytes move through a real tree, every slot is
// encrypted and authenticated, and dummy blocks are indistinguishable from
// real ones. It backs the public ObliviousStore API and the
// examples/obliviousstore program.
//
// The position map is kept in memory (the client-side simplification of
// Stefanov et al.'s original protocol); the recursive construction is what
// internal/core models, where its cost is the point of the paper.
package obliv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"iroram/internal/merkle"
	"iroram/internal/rng"
	"iroram/internal/sealer"
)

// ErrNotFound reports a read of a block that was never written.
var ErrNotFound = errors.New("obliv: block not found")

// Each block's header carries its address and its assigned leaf — as in
// Path ORAM, where the (addr, leaf) pair travels with the block so a path
// read never needs position-map lookups for the bystander blocks it moves.
const headerBytes = 8 + 4 // address + leaf; address invalidAddr marks dummies

const invalidAddr = ^uint64(0)

// PositionMap is the block->leaf mapping of a Store. The default keeps it
// in client memory; NewRecursiveStore supplies one backed by a second,
// smaller Store (Freecursive-style recursion), shrinking client state.
type PositionMap interface {
	// Peek returns the current leaf of addr (noLeaf if never written).
	Peek(addr uint64) (uint32, error)
	// Swap records newLeaf for addr and returns the previous leaf.
	Swap(addr uint64, newLeaf uint32) (uint32, error)
}

// memPosMap is the default in-client-memory position map.
type memPosMap []uint32

func newMemPosMap(blocks uint64) memPosMap {
	m := make(memPosMap, blocks)
	for i := range m {
		m[i] = noLeaf
	}
	return m
}

func (m memPosMap) Peek(addr uint64) (uint32, error) { return m[addr], nil }

func (m memPosMap) Swap(addr uint64, newLeaf uint32) (uint32, error) {
	old := m[addr]
	m[addr] = newLeaf
	return old, nil
}

// Config sizes a Store.
type Config struct {
	// Blocks is the number of user blocks to support.
	Blocks uint64
	// BlockSize is the user payload size in bytes.
	BlockSize int
	// Z is the bucket size (4 if zero).
	Z int
	// StashLimit triggers background eviction (128 if zero).
	StashLimit int
	// Key is the 32-byte sealing key.
	Key []byte
	// Seed drives leaf assignment. In production this must come from a
	// CSPRNG; the deterministic generator keeps tests reproducible.
	Seed uint64
	// PosMap overrides the position map implementation (nil keeps the
	// default client-memory map).
	PosMap PositionMap
	// Integrity enables the Merkle tree over buckets (Section II-A's
	// assumed hardware). Per-slot MACs already stop forgery and
	// relocation; the hash tree additionally stops replay of stale
	// bucket contents, at one ancestor-chain verify+update per bucket
	// touched.
	Integrity bool
}

type entry struct {
	leaf uint32
	data []byte
}

// Store is a functional Path ORAM instance.
type Store struct {
	levels    int
	z         int
	blockSize int
	leafCount uint64
	sealer    *sealer.Sealer
	// mem is the untrusted memory: one sealed blob per slot.
	mem     [][]byte
	counter uint64
	blocks  uint64
	pos     PositionMap
	stash   map[uint64]entry
	limit   int
	rng     *rng.Source
	// integrity is the hash tree over buckets; nil when disabled. Only its
	// root is conceptually in the TCB.
	integrity *merkle.Tree

	// Accesses counts path accesses; Evictions counts background
	// evictions — exposed for tests and stats.
	Accesses  uint64
	Evictions uint64
}

const noLeaf = ^uint32(0)

// NewStore builds and initializes the tree: every slot starts as a sealed
// dummy, so the initial memory image already leaks nothing.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Blocks == 0 {
		return nil, errors.New("obliv: zero capacity")
	}
	if cfg.BlockSize <= 0 {
		return nil, errors.New("obliv: block size must be positive")
	}
	if cfg.Z == 0 {
		cfg.Z = 4
	}
	if cfg.StashLimit == 0 {
		cfg.StashLimit = 128
	}
	// Choose the smallest tree whose slot count is at least twice the user
	// blocks (the paper's ~50% load rule).
	levels := 2
	for uint64(cfg.Z)*((uint64(1)<<uint(levels))-1) < 2*cfg.Blocks {
		levels++
		if levels > 40 {
			return nil, fmt.Errorf("obliv: %d blocks is too large", cfg.Blocks)
		}
	}
	sl, err := sealer.New(cfg.Key, headerBytes+cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	pos := cfg.PosMap
	if pos == nil {
		pos = newMemPosMap(cfg.Blocks)
	}
	slots := uint64(cfg.Z) * ((uint64(1) << uint(levels)) - 1)
	s := &Store{
		levels:    levels,
		z:         cfg.Z,
		blockSize: cfg.BlockSize,
		leafCount: uint64(1) << uint(levels-1),
		sealer:    sl,
		mem:       make([][]byte, slots),
		blocks:    cfg.Blocks,
		pos:       pos,
		stash:     make(map[uint64]entry),
		limit:     cfg.StashLimit,
		rng:       rng.New(cfg.Seed),
	}
	dummy := make([]byte, headerBytes+cfg.BlockSize)
	binary.LittleEndian.PutUint64(dummy[:headerBytes], invalidAddr)
	for i := range s.mem {
		s.counter++
		sealed, err := sl.Seal(uint64(i), s.counter, dummy)
		if err != nil {
			return nil, err
		}
		s.mem[i] = sealed
	}
	if cfg.Integrity {
		buckets := (1 << uint(levels)) - 1
		tree, err := merkle.New(buckets)
		if err != nil {
			return nil, err
		}
		s.integrity = tree
		for b := 0; b < buckets; b++ {
			if err := s.commitBucket(b); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// bucketDigest folds a bucket's sealed slots into one Merkle leaf digest.
func (s *Store) bucketDigest(bucket int) merkle.Digest {
	lo := uint64(bucket) * uint64(s.z)
	joined := make([]byte, 0, s.z*s.sealer.SealedSize())
	for slot := lo; slot < lo+uint64(s.z); slot++ {
		joined = append(joined, s.mem[slot]...)
	}
	return merkle.LeafDigest(bucket, joined)
}

// commitBucket records a bucket's current contents in the hash tree.
func (s *Store) commitBucket(bucket int) error {
	return s.integrity.Update(bucket, s.bucketDigest(bucket))
}

// verifyBucket checks a bucket against the root of trust before its slots
// are decrypted — the freshness check per fetched bucket.
func (s *Store) verifyBucket(bucket int) error {
	return s.integrity.Verify(bucket, s.bucketDigest(bucket))
}

// Levels returns the tree height.
func (s *Store) Levels() int { return s.levels }

// StashLen returns the current stash occupancy.
func (s *Store) StashLen() int { return len(s.stash) }

func (s *Store) bucketOf(level int, leaf uint32) int {
	idx := uint64(leaf) >> (uint(s.levels-1) - uint(level))
	return int((uint64(1) << uint(level)) - 1 + idx)
}

func (s *Store) slotRange(level int, leaf uint32) (lo, hi uint64) {
	lo = uint64(s.bucketOf(level, leaf)) * uint64(s.z)
	return lo, lo + uint64(s.z)
}

// readPath decrypts and authenticates every slot on the path, moving real
// blocks into the stash. With integrity enabled, each bucket is first
// checked against the Merkle root so replayed memory is rejected.
func (s *Store) readPath(leaf uint32) error {
	for level := 0; level < s.levels; level++ {
		if s.integrity != nil {
			if err := s.verifyBucket(s.bucketOf(level, leaf)); err != nil {
				return err
			}
		}
		lo, hi := s.slotRange(level, leaf)
		for slot := lo; slot < hi; slot++ {
			pt, err := s.sealer.Open(slot, s.mem[slot])
			if err != nil {
				return fmt.Errorf("obliv: slot %d: %w", slot, err)
			}
			addr := binary.LittleEndian.Uint64(pt[:8])
			if addr == invalidAddr {
				continue
			}
			blkLeaf := binary.LittleEndian.Uint32(pt[8:headerBytes])
			data := make([]byte, s.blockSize)
			copy(data, pt[headerBytes:])
			// The leaf travels in the block header; bystander blocks need
			// no position-map lookups. If the block is already stashed
			// (e.g. remapped while waiting), the stash copy is newer.
			if _, stashed := s.stash[addr]; !stashed {
				s.stash[addr] = entry{leaf: blkLeaf, data: data}
			}
		}
	}
	return nil
}

// writePath re-encrypts the path, pushing stash blocks as deep as their
// leaves allow and patching dummies elsewhere.
func (s *Store) writePath(leaf uint32) error {
	buf := make([]byte, headerBytes+s.blockSize)
	for level := s.levels - 1; level >= 0; level-- {
		shift := uint(s.levels-1) - uint(level)
		// Sorted candidate selection keeps runs reproducible (map order is
		// randomized in Go).
		var chosen []uint64
		for addr, e := range s.stash {
			if uint64(e.leaf)>>shift == uint64(leaf)>>shift {
				chosen = append(chosen, addr)
			}
		}
		sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
		if len(chosen) > s.z {
			chosen = chosen[:s.z]
		}
		lo, hi := s.slotRange(level, leaf)
		ci := 0
		for slot := lo; slot < hi; slot++ {
			for i := range buf {
				buf[i] = 0
			}
			if ci < len(chosen) {
				addr := chosen[ci]
				ci++
				binary.LittleEndian.PutUint64(buf[:8], addr)
				binary.LittleEndian.PutUint32(buf[8:headerBytes], s.stash[addr].leaf)
				copy(buf[headerBytes:], s.stash[addr].data)
				delete(s.stash, addr)
			} else {
				binary.LittleEndian.PutUint64(buf[:8], invalidAddr)
			}
			s.counter++
			sealed, err := s.sealer.Seal(slot, s.counter, buf)
			if err != nil {
				return err
			}
			s.mem[slot] = sealed
		}
		if s.integrity != nil {
			if err := s.commitBucket(s.bucketOf(level, leaf)); err != nil {
				return err
			}
		}
	}
	return nil
}

// access is the Path ORAM protocol: resolve-and-remap the position map,
// read the old path, serve or mutate the block, write the path back, and
// background-evict under stash pressure. mutate receives the current
// payload (nil when the block was never written) and returns the new one;
// nil mutate means a read. Misses still perform a full path access, so
// even hit/miss is invisible in the trace.
func (s *Store) access(addr uint64, mutate func(cur []byte) []byte) ([]byte, error) {
	if addr >= s.blocks {
		return nil, fmt.Errorf("obliv: address %d out of range [0,%d)", addr, s.blocks)
	}
	newLeaf := uint32(s.rng.Uint64n(s.leafCount))
	old, err := s.pos.Swap(addr, newLeaf)
	if err != nil {
		return nil, err
	}
	leaf := old
	fresh := old == noLeaf
	if fresh {
		leaf = uint32(s.rng.Uint64n(s.leafCount))
	}
	if err := s.readPath(leaf); err != nil {
		return nil, err
	}
	s.Accesses++

	var out []byte
	e, ok := s.stash[addr]
	switch {
	case !ok && !fresh:
		return nil, fmt.Errorf("obliv: block %d missing from path and stash (corrupted tree)", addr)
	case !ok && mutate == nil:
		// Read miss: finish the access uniformly, restore the unmapped
		// state, and report not-found.
		if err := s.writePath(leaf); err != nil {
			return nil, err
		}
		if _, err := s.pos.Swap(addr, noLeaf); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: block %d", ErrNotFound, addr)
	}
	if mutate != nil {
		var cur []byte
		if ok {
			cur = e.data
		}
		d := make([]byte, s.blockSize)
		copy(d, mutate(cur))
		e = entry{data: d}
	} else {
		out = make([]byte, s.blockSize)
		copy(out, e.data)
	}
	e.leaf = newLeaf
	s.stash[addr] = e

	if err := s.writePath(leaf); err != nil {
		return nil, err
	}
	for len(s.stash) > s.limit {
		before := len(s.stash)
		if err := s.evictOnce(); err != nil {
			return nil, err
		}
		if len(s.stash) >= before {
			break // no progress; extremely unlikely at 50% load
		}
	}
	return out, nil
}

// evictOnce performs one background-eviction path access (random leaf).
func (s *Store) evictOnce() error {
	leaf := uint32(s.rng.Uint64n(s.leafCount))
	if err := s.readPath(leaf); err != nil {
		return err
	}
	s.Evictions++
	return s.writePath(leaf)
}

// Read returns the payload of addr. The memory trace it produces is one
// path read + one path write regardless of the address or hit/miss.
func (s *Store) Read(addr uint64) ([]byte, error) {
	return s.access(addr, nil)
}

// Write stores payload (truncated/zero-padded to the block size) at addr.
func (s *Store) Write(addr uint64, payload []byte) error {
	if len(payload) > s.blockSize {
		return fmt.Errorf("obliv: payload %d bytes exceeds block size %d", len(payload), s.blockSize)
	}
	_, err := s.access(addr, func([]byte) []byte { return payload })
	return err
}

// Update atomically transforms the payload of addr in a single path access
// (a read-modify-write): fn receives the current payload, nil if the block
// was never written, and returns the new payload. This is the primitive
// position-map recursion is built on.
func (s *Store) Update(addr uint64, fn func(cur []byte) []byte) error {
	_, err := s.access(addr, fn)
	return err
}

// MemoryImage exposes the sealed slot blobs (test hook: tampering with any
// byte must be detected on the next path access through it).
func (s *Store) MemoryImage() [][]byte { return s.mem }
