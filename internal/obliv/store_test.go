package obliv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"iroram/internal/rng"
)

func testKey() []byte { return bytes.Repeat([]byte{3}, 32) }

func newTestStore(t *testing.T, blocks uint64) *Store {
	t.Helper()
	s, err := NewStore(Config{Blocks: blocks, BlockSize: 64, Key: testKey(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newTestStore(t, 256)
	for i := uint64(0); i < 64; i++ {
		payload := []byte(fmt.Sprintf("block-%d", i))
		if err := s.Write(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 64; i++ {
		got, err := s.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("block-%d", i)
		if string(bytes.TrimRight(got, "\x00")) != want {
			t.Fatalf("block %d: got %q", i, got)
		}
	}
}

func TestOverwrite(t *testing.T) {
	s := newTestStore(t, 64)
	if err := s.Write(7, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(7, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(got, "\x00")) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestReadUnwritten(t *testing.T) {
	s := newTestStore(t, 64)
	if _, err := s.Read(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOutOfRange(t *testing.T) {
	s := newTestStore(t, 64)
	if err := s.Write(64, []byte("x")); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := s.Read(99); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	s := newTestStore(t, 64)
	if err := s.Write(0, make([]byte, 65)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestTamperDetected(t *testing.T) {
	s := newTestStore(t, 64)
	if err := s.Write(0, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of every slot: any subsequent access that touches a
	// corrupted slot must fail authentication.
	img := s.MemoryImage()
	for i := range img {
		img[i][len(img[i])/2] ^= 0xFF
	}
	if _, err := s.Read(0); err == nil {
		t.Fatal("tampered memory went undetected")
	}
}

func TestStashBounded(t *testing.T) {
	s := newTestStore(t, 1024)
	r := rng.New(9)
	for i := 0; i < 3000; i++ {
		a := r.Uint64n(1024)
		if r.Bool(0.5) {
			if err := s.Write(a, []byte{byte(a)}); err != nil {
				t.Fatal(err)
			}
		} else if _, err := s.Read(a); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	if s.StashLen() > 256 {
		t.Fatalf("stash grew to %d", s.StashLen())
	}
}

func TestAccessCountUniform(t *testing.T) {
	// Obliviousness at the protocol level: every access is exactly one
	// path read+write (plus occasional background evictions) regardless of
	// address or operation.
	s := newTestStore(t, 256)
	before := s.Accesses
	if err := s.Write(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if s.Accesses != before+1 {
		t.Fatalf("write issued %d accesses", s.Accesses-before)
	}
	before = s.Accesses
	if _, err := s.Read(0); err != nil {
		t.Fatal(err)
	}
	if s.Accesses != before+1 {
		t.Fatalf("read issued %d accesses", s.Accesses-before)
	}
}

func TestDeterministicImage(t *testing.T) {
	build := func() [][]byte {
		s, err := NewStore(Config{Blocks: 128, BlockSize: 32, Key: testKey(), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 32; i++ {
			if err := s.Write(i, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return s.MemoryImage()
	}
	a, b := build(), build()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("slot %d differs between identical runs", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := newTestStore(t, 512)
	written := map[uint64][]byte{}
	check := func(addr16 uint16, payload []byte) bool {
		addr := uint64(addr16) % 512
		if len(payload) > 64 {
			payload = payload[:64]
		}
		if err := s.Write(addr, payload); err != nil {
			return false
		}
		stored := make([]byte, 64)
		copy(stored, payload)
		written[addr] = stored
		got, err := s.Read(addr)
		return err == nil && bytes.Equal(got, written[addr])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := NewStore(Config{Blocks: 0, BlockSize: 64, Key: testKey()}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewStore(Config{Blocks: 10, BlockSize: 0, Key: testKey()}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewStore(Config{Blocks: 10, BlockSize: 64, Key: []byte("short")}); err == nil {
		t.Error("short key accepted")
	}
}
