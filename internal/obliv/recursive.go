package obliv

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// entriesPerPosBlock is how many 4-byte leaf entries fit one position-map
// block (the Freecursive fanout of 16 for 64 B blocks).
const (
	posEntryBytes      = 4
	posBlockSize       = 64
	entriesPerPosBlock = posBlockSize / posEntryBytes
)

// RecursiveStore is a functional Path ORAM whose position map itself lives
// in a second, 16x-smaller Path ORAM (one Freecursive recursion level), so
// persistent client state shrinks from one leaf per block to one leaf per
// 16 blocks plus the stashes. Every data access costs exactly two path
// accesses — one in the position-map store (a read-modify-write of the
// entry) and one in the data store — again independent of address,
// operation, and hit/miss.
type RecursiveStore struct {
	// Data is the payload store; its position map is ORAM-backed.
	Data *Store
	// PM is the position-map store (client-memory position map).
	PM *Store
}

// oramPosMap adapts the PM store to the Data store's PositionMap interface.
type oramPosMap struct {
	pm *Store
}

func (o *oramPosMap) entry(addr uint64) (blk uint64, off int) {
	return addr / entriesPerPosBlock, int(addr%entriesPerPosBlock) * posEntryBytes
}

// Peek reads the entry with one PM-store access.
func (o *oramPosMap) Peek(addr uint64) (uint32, error) {
	blk, off := o.entry(addr)
	buf, err := o.pm.Read(blk)
	if err != nil {
		if isNotFound(err) {
			return noLeaf, nil
		}
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[off : off+posEntryBytes]), nil
}

// Swap updates the entry in a single PM-store read-modify-write access and
// returns the previous leaf — the Freecursive one-access-per-level cost.
func (o *oramPosMap) Swap(addr uint64, newLeaf uint32) (uint32, error) {
	blk, off := o.entry(addr)
	old := noLeaf
	err := o.pm.Update(blk, func(cur []byte) []byte {
		next := make([]byte, posBlockSize)
		if cur == nil {
			for i := range next {
				next[i] = 0xFF // all entries start at noLeaf
			}
		} else {
			copy(next, cur)
		}
		old = binary.LittleEndian.Uint32(next[off : off+posEntryBytes])
		binary.LittleEndian.PutUint32(next[off:off+posEntryBytes], newLeaf)
		return next
	})
	if err != nil {
		return 0, err
	}
	return old, nil
}

func isNotFound(err error) bool {
	for e := err; e != nil; {
		if e == ErrNotFound {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// NewRecursiveStore builds the two-level construction. The PM store derives
// its sealing key from cfg.Key so the two trees never share key streams.
func NewRecursiveStore(cfg Config) (*RecursiveStore, error) {
	if cfg.BlockSize <= 0 || cfg.Blocks == 0 {
		return nil, fmt.Errorf("obliv: invalid recursive config %+v", cfg)
	}
	if cfg.PosMap != nil {
		return nil, fmt.Errorf("obliv: recursive store supplies its own position map")
	}
	pmBlocks := (cfg.Blocks + entriesPerPosBlock - 1) / entriesPerPosBlock
	pmCfg := Config{
		Blocks:     pmBlocks,
		BlockSize:  posBlockSize,
		Z:          cfg.Z,
		StashLimit: cfg.StashLimit,
		Key:        deriveKey(cfg.Key, "posmap"),
		Seed:       cfg.Seed ^ 0x9E3779B97F4A7C15,
		Integrity:  cfg.Integrity,
	}
	pm, err := NewStore(pmCfg)
	if err != nil {
		return nil, fmt.Errorf("obliv: posmap store: %w", err)
	}
	dataCfg := cfg
	dataCfg.PosMap = &oramPosMap{pm: pm}
	data, err := NewStore(dataCfg)
	if err != nil {
		return nil, err
	}
	return &RecursiveStore{Data: data, PM: pm}, nil
}

// deriveKey expands the master key into an independent 32-byte subkey.
func deriveKey(master []byte, label string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// Read returns the payload of addr (two path accesses: PM then Data).
func (r *RecursiveStore) Read(addr uint64) ([]byte, error) {
	return r.Data.Read(addr)
}

// Write stores payload at addr (two path accesses).
func (r *RecursiveStore) Write(addr uint64, payload []byte) error {
	return r.Data.Write(addr, payload)
}

// Accesses returns (data, posmap) path-access counts.
func (r *RecursiveStore) Accesses() (data, pm uint64) {
	return r.Data.Accesses, r.PM.Accesses
}
