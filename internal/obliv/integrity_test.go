package obliv

import (
	"bytes"
	"testing"
)

func newIntegrityStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(Config{
		Blocks: 256, BlockSize: 64, Key: testKey(), Seed: 1, Integrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIntegrityRoundTrip(t *testing.T) {
	s := newIntegrityStore(t)
	for i := uint64(0); i < 48; i++ {
		if err := s.Write(i, []byte{byte(i), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 48; i++ {
		got, err := s.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) || got[1] != 0xAA {
			t.Fatalf("block %d corrupted: %v", i, got[:2])
		}
	}
}

// TestReplayDetected is the attack per-slot MACs cannot stop: snapshot the
// whole memory image, make more writes, then roll the memory back to the
// snapshot. Every sealed blob in the rolled-back image is individually
// authentic (old counter, old MAC — all valid), but the Merkle root has
// moved on, so the next access must fail.
func TestReplayDetected(t *testing.T) {
	s := newIntegrityStore(t)
	if err := s.Write(5, []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	img := s.MemoryImage()
	snapshot := make([][]byte, len(img))
	for i := range img {
		snapshot[i] = append([]byte(nil), img[i]...)
	}
	if err := s.Write(5, []byte("version-2")); err != nil {
		t.Fatal(err)
	}
	// Roll back the untrusted memory.
	for i := range img {
		copy(img[i], snapshot[i])
		img[i] = img[i][:len(snapshot[i])]
	}
	if _, err := s.Read(5); err == nil {
		t.Fatal("replayed memory image accepted")
	}
}

// TestReplayAcceptedWithoutIntegrity shows the gap the Merkle tree closes:
// the same rollback against a MAC-only store goes unnoticed (the stale
// data is served), because each slot is individually authentic.
func TestReplayAcceptedWithoutIntegrity(t *testing.T) {
	s := newTestStore(t, 256)
	if err := s.Write(5, []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	img := s.MemoryImage()
	snapshot := make([][]byte, len(img))
	for i := range img {
		snapshot[i] = append([]byte(nil), img[i]...)
	}
	stashSnapshot := s.StashLen()
	_ = stashSnapshot
	if err := s.Write(5, []byte("version-2")); err != nil {
		t.Fatal(err)
	}
	for i := range img {
		copy(img[i], snapshot[i])
	}
	// The block may be in the stash (on-chip, not replayable); flush it by
	// spinning the position map with unrelated accesses is not reliable at
	// this size, so only assert no authentication error occurs: the MAC
	// layer has no freshness and cannot object.
	if _, err := s.Read(5); err != nil && !bytes.Contains([]byte(err.Error()), []byte("not found")) {
		t.Fatalf("MAC-only store raised %v on replay; expected silence", err)
	}
}

func TestIntegrityTamperSingleSlot(t *testing.T) {
	s := newIntegrityStore(t)
	if err := s.Write(0, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	img := s.MemoryImage()
	// Corrupt a root-bucket slot: the root bucket is on every path, so the
	// next access must cross (and reject) it.
	img[0][3] ^= 1
	if _, err := s.Read(0); err == nil {
		t.Fatal("tampered slot accepted")
	}
}

func TestIntegrityDeterministic(t *testing.T) {
	build := func() [][]byte {
		s, err := NewStore(Config{
			Blocks: 128, BlockSize: 32, Key: testKey(), Seed: 9, Integrity: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 20; i++ {
			if err := s.Write(i, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return s.MemoryImage()
	}
	a, b := build(), build()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("slot %d differs", i)
		}
	}
}
