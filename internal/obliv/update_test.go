package obliv

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestUpdateReadModifyWrite(t *testing.T) {
	s := newTestStore(t, 128)
	// First Update sees nil (never written) and initializes.
	err := s.Update(9, func(cur []byte) []byte {
		if cur != nil {
			t.Errorf("first update saw %v", cur)
		}
		return []byte{1}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second Update sees the current value and increments it, atomically in
	// one path access.
	before := s.Accesses
	err = s.Update(9, func(cur []byte) []byte {
		return []byte{cur[0] + 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Accesses-before != 1 {
		t.Errorf("update cost %d accesses, want 1", s.Accesses-before)
	}
	got, err := s.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Errorf("value %d, want 2", got[0])
	}
}

func TestUpdateCounterProperty(t *testing.T) {
	s := newTestStore(t, 64)
	inc := func(cur []byte) []byte {
		if cur == nil {
			return []byte{1}
		}
		return []byte{cur[0] + 1}
	}
	check := func(n8 uint8) bool {
		n := int(n8%20) + 1
		addr := uint64(n8 % 64)
		start := byte(0)
		if v, err := s.Read(addr); err == nil {
			start = v[0]
		}
		for i := 0; i < n; i++ {
			if err := s.Update(addr, inc); err != nil {
				return false
			}
		}
		v, err := s.Read(addr)
		return err == nil && v[0] == start+byte(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMissStillUniformTraffic(t *testing.T) {
	// A read miss must cost exactly one path access, like a hit: the trace
	// does not reveal presence.
	s := newTestStore(t, 128)
	before := s.Accesses
	if _, err := s.Read(50); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if s.Accesses-before != 1 {
		t.Errorf("miss cost %d accesses, want 1", s.Accesses-before)
	}
}

func TestLeafTravelsInHeader(t *testing.T) {
	// Fill enough blocks that paths carry bystanders, then hammer one
	// block; bystander handling must not corrupt anything (their leaves
	// come from block headers, not the position map).
	s := newTestStore(t, 256)
	for i := uint64(0); i < 128; i++ {
		if err := s.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if _, err := s.Read(7); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 128; i++ {
		v, err := s.Read(i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if v[0] != byte(i) {
			t.Fatalf("block %d corrupted: %d", i, v[0])
		}
	}
}

func TestMemPosMap(t *testing.T) {
	m := newMemPosMap(8)
	if l, _ := m.Peek(3); l != noLeaf {
		t.Error("fresh map should be unmapped")
	}
	old, _ := m.Swap(3, 77)
	if old != noLeaf {
		t.Errorf("first swap returned %d", old)
	}
	old, _ = m.Swap(3, 99)
	if old != 77 {
		t.Errorf("second swap returned %d", old)
	}
	if l, _ := m.Peek(3); l != 99 {
		t.Errorf("peek %d", l)
	}
}

func TestOramPosMapPeek(t *testing.T) {
	r := newRecursive(t)
	pm := r.Data.pos.(*oramPosMap)
	if l, err := pm.Peek(5); err != nil || l != noLeaf {
		t.Fatalf("peek of unmapped: %d, %v", l, err)
	}
	if err := r.Write(5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	l, err := pm.Peek(5)
	if err != nil || l == noLeaf {
		t.Fatalf("peek after write: %d, %v", l, err)
	}
}

func TestWritePreservesSiblingEntries(t *testing.T) {
	// Blocks 16..31 share one PosMap block in the recursive store; updates
	// to one entry must not clobber the others.
	r := newRecursive(t)
	for i := uint64(16); i < 32; i++ {
		if err := r.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(16); i < 32; i++ {
		v, err := r.Read(i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(v[:1], []byte{byte(i)}) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}
