package dram

import (
	"testing"

	"iroram/internal/config"
	"iroram/internal/rng"
)

// TestServicePathMatchesServiceBatch drives two models through the same
// randomized phase sequence — one via the []Access API, one via the
// zero-copy []uint64 API — and requires identical completion times,
// statistics and channel state. ServicePath/PostWritePath are the hot-path
// twins of ServiceBatch/PostWrites; any timing divergence would silently
// change every experiment table.
func TestServicePathMatchesServiceBatch(t *testing.T) {
	cfg := config.Scaled().DRAM
	batch := New(cfg)
	path := New(cfg)
	r := rng.New(31)
	const off = uint64(1 << 18)

	now := uint64(0)
	for iter := 0; iter < 300; iter++ {
		n := 1 + int(r.Uint64n(60))
		phys := make([]uint64, n)
		accs := make([]Access, n)
		write := r.Uint64n(4) == 0
		for i := range phys {
			phys[i] = r.Uint64n(1 << 20)
			accs[i] = Access{Addr: phys[i] + off, Write: write}
		}
		dBatch := batch.ServiceBatch(now, accs)
		dPath := path.ServicePath(now, phys, off, write)
		if dBatch != dPath {
			t.Fatalf("iter %d: service time diverges: batch %d, path %d", iter, dBatch, dPath)
		}
		pBatch := batch.PostWrites(dBatch, accs)
		pPath := path.PostWritePath(dPath, phys, off)
		if pBatch != pPath {
			t.Fatalf("iter %d: post-write drain diverges: batch %d, path %d", iter, pBatch, pPath)
		}
		now = dBatch + r.Uint64n(2000)
	}
	if batch.Stats() != path.Stats() {
		t.Fatalf("stats diverge:\nbatch %+v\npath  %+v", batch.Stats(), path.Stats())
	}
	if batch.FreeAt() != path.FreeAt() {
		t.Fatalf("channel state diverges: batch free at %d, path free at %d",
			batch.FreeAt(), path.FreeAt())
	}
}

// TestServicePathEmpty pins the no-op contract shared with ServiceBatch.
func TestServicePathEmpty(t *testing.T) {
	m := New(config.Scaled().DRAM)
	if got := m.ServicePath(42, nil, 0, false); got != 42 {
		t.Fatalf("empty ServicePath = %d, want 42", got)
	}
	if got := m.PostWritePath(42, nil, 0); got != 42 {
		t.Fatalf("empty PostWritePath = %d, want 42", got)
	}
	if m.Stats() != (Stats{}) {
		t.Fatalf("empty phases touched stats: %+v", m.Stats())
	}
}

func benchAddrs(n int) []uint64 {
	phys := make([]uint64, n)
	for i := range phys {
		phys[i] = uint64(i * 37)
	}
	return phys
}

// BenchmarkServiceBatch measures one path-sized read phase via the []Access
// API (the pre-PR3 controller hot path).
func BenchmarkServiceBatch(b *testing.B) {
	m := New(config.Scaled().DRAM)
	phys := benchAddrs(44)
	accs := make([]Access, len(phys))
	for i, a := range phys {
		accs[i] = Access{Addr: a}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServiceBatch(now, accs)
	}
}

// BenchmarkServicePath measures the same phase via the zero-copy physical
// address list the controller now holds.
func BenchmarkServicePath(b *testing.B) {
	m := New(config.Scaled().DRAM)
	phys := benchAddrs(44)
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServicePath(now, phys, 0, false)
	}
}
