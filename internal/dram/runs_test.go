package dram

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

// tinyRowCfg is a deliberately cramped geometry: 2 channels, 2 banks,
// 4 blocks per row. With block-interleaved channels a 6-block bucket spans
// more than one row on each channel, so every test below exercises runs
// that break mid-bucket.
func tinyRowCfg() config.DRAM {
	cfg := config.Tiny().DRAM
	cfg.Channels = 2
	cfg.BanksPerChannel = 2
	cfg.RowBytes = 4 * config.BlockSize
	return cfg
}

// oddGeomCfg is a non-power-of-two geometry (3 channels, 6 banks, 5-block
// rows): AppendRuns must take its division fallback instead of the
// shift/mask fast path, pinning the pow2 branch selection in New.
func oddGeomCfg() config.DRAM {
	cfg := config.Tiny().DRAM
	cfg.Channels = 3
	cfg.BanksPerChannel = 6
	cfg.RowBytes = 5 * config.BlockSize
	return cfg
}

// expand converts a physical address list into the per-address oracle's
// input form.
func expand(phys []uint64, off uint64, write bool) []Access {
	accs := make([]Access, len(phys))
	for i, a := range phys {
		accs[i] = Access{Addr: a + off, Write: write}
	}
	return accs
}

// diffStep services one phase on both models — runs on one, per-address on
// the other — and fails on any divergence in completion time.
func diffStep(t *testing.T, iter int, runs, oracle *Model, now uint64, phys []uint64, off uint64, write bool) uint64 {
	t.Helper()
	dRuns := runs.ServicePath(now, phys, off, write)
	dOracle := oracle.ServiceBatch(now, expand(phys, off, write))
	if dRuns != dOracle {
		t.Fatalf("iter %d: service time diverges: run-length %d, per-address %d",
			iter, dRuns, dOracle)
	}
	pRuns := runs.PostWritePath(dRuns, phys, off)
	pOracle := oracle.PostWrites(dOracle, expand(phys, off, false))
	if pRuns != pOracle {
		t.Fatalf("iter %d: post-write drain diverges: run-length %d, per-address %d",
			iter, pRuns, pOracle)
	}
	return dRuns
}

// diffState fails on any statistics or channel-state divergence between the
// run-length model and the per-address oracle.
func diffState(t *testing.T, runs, oracle *Model) {
	t.Helper()
	if runs.Stats() != oracle.Stats() {
		t.Fatalf("stats diverge:\nrun-length  %+v\nper-address %+v", runs.Stats(), oracle.Stats())
	}
	if runs.FreeAt() != oracle.FreeAt() {
		t.Fatalf("channel state diverges: run-length free at %d, per-address free at %d",
			runs.FreeAt(), oracle.FreeAt())
	}
}

// TestRunLengthDifferentialRandom is the randomized run-length-vs-
// per-address differential: arbitrary address soup (worst case for run
// formation — most runs have length 1) under mixed read/write phases and
// idle gaps must time out identically on both implementations. Run with
// -race as part of `make race`.
func TestRunLengthDifferentialRandom(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  config.DRAM
		span uint64
	}{
		{"scaled", config.Scaled().DRAM, 1 << 20},
		{"tinyrow", tinyRowCfg(), 1 << 10},
		{"oddgeom", oddGeomCfg(), 1 << 14},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runs := New(tc.cfg)
			oracle := New(tc.cfg)
			r := rng.New(77)
			now := uint64(0)
			for iter := 0; iter < 400; iter++ {
				n := 1 + int(r.Uint64n(70))
				phys := make([]uint64, n)
				for i := range phys {
					phys[i] = r.Uint64n(tc.span)
				}
				off := r.Uint64n(1 << 16)
				write := r.Uint64n(4) == 0
				done := diffStep(t, iter, runs, oracle, now, phys, off, write)
				now = done + r.Uint64n(1500)
			}
			diffState(t, runs, oracle)
		})
	}
}

// TestRunLengthDifferentialPathLike feeds both implementations sequences
// shaped like real subtree-laid-out paths: sorted bucket-granular stretches
// with occasional jumps. These produce long runs — the case the run-length
// servicer actually collapses — and must still match the oracle exactly.
func TestRunLengthDifferentialPathLike(t *testing.T) {
	cfg := config.Scaled().DRAM
	runs := New(cfg)
	oracle := New(cfg)
	r := rng.New(99)
	now := uint64(0)
	for iter := 0; iter < 300; iter++ {
		var phys []uint64
		base := r.Uint64n(1 << 22)
		for len(phys) < 44 {
			// One contiguous stretch (a subtree chunk's worth of blocks),
			// then jump to a new region like PathPhys does between chunks.
			stretch := 4 + int(r.Uint64n(16))
			for j := 0; j < stretch && len(phys) < 44; j++ {
				phys = append(phys, base+uint64(j))
			}
			base += uint64(stretch) + r.Uint64n(1<<18)
		}
		done := diffStep(t, iter, runs, oracle, now, phys, 0, iter%5 == 0)
		now = done + r.Uint64n(800)
	}
	diffState(t, runs, oracle)
}

// TestRunRowBoundaryMidBucket pins the timing edge where a bucket's blocks
// straddle a DRAM row boundary: on the cramped geometry each channel's run
// must end exactly at the row edge and the next block must pay a fresh
// row transition (in the neighbouring bank, since rows interleave across
// banks), identically in both implementations.
func TestRunRowBoundaryMidBucket(t *testing.T) {
	cfg := tinyRowCfg()
	// rowBlocks = 4, Channels = 2: channel 0 sees blocks 4,6,8 as per-channel
	// offsets 2,3,4 — its row boundary falls between 7 and 8, mid-way through
	// the contiguous 6-block "bucket" starting at address 4.
	phys := []uint64{4, 5, 6, 7, 8, 9}
	runs := New(cfg)
	oracle := New(cfg)
	diffStep(t, 0, runs, oracle, 0, phys, 0, false)
	diffState(t, runs, oracle)
	st := runs.Stats()
	// Read phase: channel 0 sees 4,6 (bank 0 row 0: miss+hit) then 8
	// (bank 1 row 0: miss); channel 1 mirrors with 5,7,9. That is 4 cold
	// transitions + 2 hits; the post-write drain adds 6 more row hits.
	if st.RowMisses != 4 || st.RowHits != 2+6 {
		t.Fatalf("row boundary mid-bucket: got %d misses / %d hits, want 4 / 8", st.RowMisses, st.RowHits)
	}
	// Re-reading the same bucket finds every row still open — and must again
	// time out identically in both implementations.
	diffStep(t, 1, runs, oracle, runs.FreeAt(), phys, 0, false)
	diffState(t, runs, oracle)
	if st2 := runs.Stats(); st2.RowMisses != st.RowMisses {
		t.Fatalf("re-read missed rows: %d misses, want %d", st2.RowMisses, st.RowMisses)
	}
}

// TestRunBankConflictWrap pins the edge where successive path chunks wrap
// back onto the same bank with a different row (a bank conflict) across all
// channels: the second chunk's row transition must chain off the first
// chunk's last data transfer, identically in both implementations.
func TestRunBankConflictWrap(t *testing.T) {
	cfg := tinyRowCfg()
	// With 2 channels, 2 banks, 4-block rows, a channel's bank cycle is
	// banks*rowBlocks = 8 per-channel offsets = 16 addresses. Addresses
	// 0..7 open (bank 0, row 0) on both channels; 16..23 re-open bank 0 at
	// row 1 — the same bank with a different row, on every channel.
	first := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	second := []uint64{16, 17, 18, 19, 20, 21, 22, 23}
	runs := New(cfg)
	oracle := New(cfg)
	done := diffStep(t, 0, runs, oracle, 0, first, 0, false)
	firstMisses := runs.Stats().RowMisses
	diffStep(t, 1, runs, oracle, done, second, 0, true)
	diffState(t, runs, oracle)
	st := runs.Stats()
	// First phase: one cold open of bank 0 per channel. Second phase: one
	// conflict transition of bank 0 per channel (precharge + re-activate
	// chained off the first phase's last data beat).
	if firstMisses != 2 || st.RowMisses != 4 {
		t.Fatalf("bank-conflict wrap: got %d then %d row misses, want 2 then 4",
			firstMisses, st.RowMisses)
	}
}

// TestPathServiceBoundDominatesRunLength pins PathServiceBound as an upper
// bound on the run-length servicer for real subtree-laid-out paths on a
// cold, idle model: no path may take longer than the bound used to size
// the timing-protection interval T. (The bound's premise is a path's
// row-local address structure; arbitrary address soup can conflict its way
// past it, with either servicer.)
func TestPathServiceBoundDominatesRunLength(t *testing.T) {
	sys := config.Scaled()
	layout := tree.NewLayout(sys.ORAM, sys.ORAM.TopLevels, int(New(sys.DRAM).RowBlocks()))
	r := rng.New(123)
	var phys []uint64
	for iter := 0; iter < 200; iter++ {
		m := New(sys.DRAM) // idle, cold rows — the bound's premise
		leaf := block.Leaf(r.Uint64n(sys.ORAM.LeafCount()))
		phys = layout.PathPhys(leaf, phys[:0])
		took := m.ServicePath(0, phys, 0, iter%2 == 0)
		if bound := m.PathServiceBound(len(phys)); took > bound {
			t.Fatalf("iter %d leaf %d: run-length service of %d blocks took %d cycles, bound %d",
				iter, leaf, len(phys), took, bound)
		}
	}
}

// TestPathSchedMemoization pins the schedule cache contract: a memoized run
// list must service with timing identical to a fresh build, hits/misses
// must be counted, and Model.Reset must invalidate every slot.
func TestPathSchedMemoization(t *testing.T) {
	cfg := config.Scaled().DRAM
	cached := New(cfg)
	fresh := New(cfg)
	const off = uint64(1 << 18)
	const maxRuns = 44
	sched := cached.NewPathSched(64, maxRuns, off)

	r := rng.New(7)
	paths := make(map[uint64][]uint64)
	now := uint64(0)
	for iter := 0; iter < 500; iter++ {
		leaf := r.Uint64n(200) // small leaf space: plenty of repeats + collisions
		phys, ok := paths[leaf]
		if !ok {
			phys = make([]uint64, maxRuns)
			for i := range phys {
				phys[i] = r.Uint64n(1 << 20)
			}
			paths[leaf] = phys
		}
		rs, hit := sched.Lookup(leaf)
		if !hit {
			rs = sched.Install(leaf, phys)
		}
		dCached := cached.ServiceRuns(now, rs, false)
		dFresh := fresh.ServicePath(now, phys, off, false)
		if dCached != dFresh {
			t.Fatalf("iter %d leaf %d (hit=%v): cached %d, fresh %d", iter, leaf, hit, dCached, dFresh)
		}
		now = dCached + r.Uint64n(500)
	}
	if cached.Stats() != fresh.Stats() {
		t.Fatalf("stats diverge:\ncached %+v\nfresh  %+v", cached.Stats(), fresh.Stats())
	}
	if sched.Hits == 0 || sched.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %d hits / %d misses", sched.Hits, sched.Misses)
	}

	cached.Reset()
	if _, hit := sched.Lookup(0); hit {
		t.Fatal("Lookup hit after Model.Reset; schedule cache must be invalidated")
	}
}

// TestAppendRunsPreservesChannelOrder pins the structural contract: the
// per-address expansion of the run list is, per channel, exactly the input
// address sequence of that channel, and run boundaries only occur at
// (bank,row) changes.
func TestAppendRunsPreservesChannelOrder(t *testing.T) {
	cfg := tinyRowCfg()
	m := New(cfg)
	r := rng.New(5)
	for iter := 0; iter < 100; iter++ {
		n := 1 + int(r.Uint64n(50))
		phys := make([]uint64, n)
		for i := range phys {
			phys[i] = r.Uint64n(1 << 12)
		}
		runs := m.AppendRuns(phys, 0, nil)
		// Rebuild each channel's (bank,row) sequence from the runs and from
		// the raw addresses; they must match element for element.
		type br struct {
			bank uint16
			row  uint64
		}
		var want, got [][]br
		want = make([][]br, cfg.Channels)
		got = make([][]br, cfg.Channels)
		for _, a := range phys {
			ch, bk, row := m.decompose(a)
			want[ch] = append(want[ch], br{uint16(bk), row})
		}
		var total uint32
		for _, ru := range runs {
			total += ru.Count
			for k := uint32(0); k < ru.Count; k++ {
				got[ru.Ch] = append(got[ru.Ch], br{ru.Bank, ru.Row})
			}
		}
		if int(total) != n {
			t.Fatalf("iter %d: runs cover %d accesses, want %d", iter, total, n)
		}
		for c := range want {
			if len(want[c]) != len(got[c]) {
				t.Fatalf("iter %d: channel %d has %d accesses in runs, want %d",
					iter, c, len(got[c]), len(want[c]))
			}
			for i := range want[c] {
				if want[c][i] != got[c][i] {
					t.Fatalf("iter %d: channel %d access %d: run gives bank %d row %d, want bank %d row %d",
						iter, c, i, got[c][i].bank, got[c][i].row, want[c][i].bank, want[c][i].row)
				}
			}
		}
	}
}
