package dram

import "testing"

func TestPostWritesOccupyBus(t *testing.T) {
	m := New(testCfg())
	writes := make([]Access, 8)
	for i := range writes {
		writes[i] = Access{Addr: uint64(i), Write: true}
	}
	done := m.PostWrites(0, writes)
	if done == 0 {
		t.Fatal("writes drained instantly")
	}
	// A read issued while the writes drain must queue behind them on the
	// bus (same channel).
	readDone := m.ServiceBatch(0, []Access{{Addr: 0}})
	if readDone <= done-uint64(testCfg().TBurst) {
		t.Errorf("read at %d did not queue behind writes draining at %d", readDone, done)
	}
	s := m.Stats()
	if s.Writes != 8 {
		t.Errorf("writes = %d", s.Writes)
	}
}

func TestPostWritesDoNotCloseRows(t *testing.T) {
	m := New(testCfg())
	ch := uint64(testCfg().Channels)
	// Open a row with a read, post writes elsewhere, then re-read the row:
	// it must still be a row hit (writes are buffered behind reads).
	m.ServiceBatch(0, []Access{{Addr: 0}})
	m.PostWrites(1000, []Access{{Addr: 123456789 * ch, Write: true}})
	hitsBefore := m.Stats().RowHits
	m.ServiceBatch(2000, []Access{{Addr: ch}}) // same channel 0, same row
	if m.Stats().RowHits <= hitsBefore {
		t.Error("posted writes closed an open row")
	}
}

func TestPostWritesEmpty(t *testing.T) {
	m := New(testCfg())
	if got := m.PostWrites(77, nil); got != 77 {
		t.Errorf("empty post = %d", got)
	}
}

func TestPathServiceBoundPositive(t *testing.T) {
	m := New(testCfg())
	b60 := m.PathServiceBound(60)
	b43 := m.PathServiceBound(43)
	if b60 <= b43 || b43 == 0 {
		t.Errorf("bounds %d / %d not monotone in block count", b60, b43)
	}
}

func TestActivationOverlapsSteadyState(t *testing.T) {
	// In steady state, row misses in idle banks must not stall the bus:
	// back-to-back row-sized batches approach pure bus time per batch.
	cfg := testCfg()
	m := New(cfg)
	burst := uint64(cfg.TBurst * cfg.CPUCyclesPerDRAMCycle)
	rowBlocks := m.RowBlocks()
	var now uint64
	const batches = 20
	for i := 0; i < batches; i++ {
		var accs []Access
		for j := uint64(0); j < 64; j++ {
			// one new row per channel per batch, rotating across banks
			accs = append(accs, Access{Addr: uint64(i)*rowBlocks*uint64(cfg.Channels) + j})
		}
		now = m.ServiceBatch(now, accs)
	}
	busPerBatch := 64 / uint64(cfg.Channels) * burst
	if avg := now / batches; avg > busPerBatch+busPerBatch/2 {
		t.Errorf("steady-state batch time %d far above bus time %d", avg, busPerBatch)
	}
}
