// Package dram is the memory timing model standing in for USIMM. It tracks
// per-bank row-buffer state across channels and services the block batches
// that ORAM path accesses generate, charging DDR-style timing (activate /
// column access / precharge / burst). Together with the subtree layout in
// internal/tree it reproduces the two first-order effects Path ORAM
// performance depends on: path-batch service time and row-buffer locality.
//
// Path phases are serviced in run-length form: ServicePath/PostWritePath
// group a path's addresses into per-(channel,bank,row) runs (see Run,
// AppendRuns) and charge one row-buffer transition plus one burst
// accumulation per run, with PathSched memoizing the run list per leaf.
// The per-address implementations — ServiceBatch/PostWrites — are retained
// as the differential oracle: they must produce bit-identical timing,
// statistics and state evolution for the same access sequence, and the
// randomized differential tests in this package pin that equivalence.
package dram

import (
	"fmt"
	"math/bits"

	"iroram/internal/config"
	"iroram/internal/flight"
)

// Access is one 64 B block transfer.
type Access struct {
	// Addr is the physical block address (in block units, as produced by
	// the tree's subtree layout).
	Addr uint64
	// Write selects the bus direction.
	Write bool
}

// Stats aggregates DRAM activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// BusyCPUCycles is the sum of per-channel busy time in CPU cycles.
	BusyCPUCycles uint64
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

const noRow = ^uint64(0)

type bank struct {
	openRow   uint64
	lastWrite bool
	// avail is the earliest CPU cycle at which data for a column access to
	// the open row can appear on the bus (activation + tRCD + tCAS).
	avail uint64
	// lastData is when the bank's most recent data transfer finishes; the
	// row cannot be precharged before that.
	lastData uint64
}

type channel struct {
	banks  []bank
	freeAt uint64 // CPU cycle when the channel data bus becomes idle
}

// timing caches the DDR parameters pre-converted to CPU cycles, so the
// per-access service loop does no multiplication.
type timing struct {
	burst, cas, rcd, pre, wr uint64
}

// Model is the DRAM timing simulator. All externally visible times are CPU
// cycles; the model converts internally using CPUCyclesPerDRAMCycle.
type Model struct {
	cfg       config.DRAM
	t         timing
	channels  []channel
	rowBlocks uint64
	stats     Stats

	// Shift/mask decomposition, used by AppendRuns when channels, banks
	// and row blocks are all powers of two (every preset geometry): three
	// 64-bit divisions per address become shifts. pow2 false falls back to
	// the division form; the per-address oracle (decompose) always divides,
	// so the differential tests also pin the fast path's arithmetic.
	pow2              bool
	chShift, rowShift uint
	bkShift           uint
	chMask, bkMask    uint64

	// Scratch for the run-length path service (reused, never shrunk) and
	// the schedule caches to invalidate on Reset.
	lastRun    []int32  // per-channel index of the open run in AppendRuns
	chCount    []uint64 // per-channel access counts for posted-write drains
	runScratch []Run    // ServicePath's run list when no PathSched is used
	scheds     []*PathSched

	// fl, when non-nil, receives per-run service events and posted-write
	// drain events for accesses the recorder has armed (see AttachFlight).
	fl *flight.Recorder
}

// AttachFlight wires a flight recorder into the run-length service path:
// while the recorder is armed, ServiceRuns records one event per run
// (row, length, hit/miss) and posted-write drains record one event per
// busy channel. The per-address legacy paths (ServiceBatch/PostWrites)
// are not traced — run-length service is the production pipeline.
// Recording only observes; timing and statistics are unchanged.
func (m *Model) AttachFlight(fl *flight.Recorder) { m.fl = fl }

// New builds a model from the configuration. It panics on invalid geometry
// (callers validate configs up front; see config.System.Validate).
func New(cfg config.DRAM) *Model {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.RowBytes < config.BlockSize {
		panic(fmt.Sprintf("dram: invalid geometry %+v", cfg))
	}
	if cfg.Channels > 1<<16 || cfg.BanksPerChannel > 1<<16 {
		// Run packs channel and bank into uint16 each.
		panic(fmt.Sprintf("dram: geometry exceeds run encoding %+v", cfg))
	}
	cpd := uint64(cfg.CPUCyclesPerDRAMCycle)
	m := &Model{
		cfg: cfg,
		t: timing{
			burst: uint64(cfg.TBurst) * cpd,
			cas:   uint64(cfg.TCAS) * cpd,
			rcd:   uint64(cfg.TRCD) * cpd,
			pre:   uint64(cfg.TRP) * cpd,
			wr:    uint64(cfg.TWR) * cpd,
		},
		channels:  make([]channel, cfg.Channels),
		rowBlocks: uint64(cfg.RowBytes / config.BlockSize),
	}
	for i := range m.channels {
		m.channels[i].banks = make([]bank, cfg.BanksPerChannel)
		for b := range m.channels[i].banks {
			m.channels[i].banks[b].openRow = noRow
		}
	}
	m.lastRun = make([]int32, cfg.Channels)
	m.chCount = make([]uint64, cfg.Channels)
	m.runScratch = make([]Run, 0, 64)
	nCh, nBk := uint64(cfg.Channels), uint64(cfg.BanksPerChannel)
	if nCh&(nCh-1) == 0 && nBk&(nBk-1) == 0 && m.rowBlocks&(m.rowBlocks-1) == 0 {
		m.pow2 = true
		m.chShift = uint(bits.TrailingZeros64(nCh))
		m.chMask = nCh - 1
		m.rowShift = uint(bits.TrailingZeros64(m.rowBlocks))
		m.bkShift = uint(bits.TrailingZeros64(nBk))
		m.bkMask = nBk - 1
	}
	return m
}

// RowBlocks returns the number of 64 B blocks per DRAM row.
func (m *Model) RowBlocks() uint64 { return m.rowBlocks }

// decompose maps a physical block address to channel, bank and row using
// block-level channel interleaving (the USIMM default): consecutive blocks
// rotate across channels, so a row-aligned subtree is striped over all
// channels — every path batch gets full channel parallelism while each
// channel still sees one open row per subtree.
func (m *Model) decompose(addr uint64) (ch, bk int, row uint64) {
	ch = int(addr % uint64(m.cfg.Channels))
	rest := addr / uint64(m.cfg.Channels)
	rowID := rest / m.rowBlocks
	bk = int(rowID % uint64(m.cfg.BanksPerChannel))
	row = rowID / uint64(m.cfg.BanksPerChannel)
	return ch, bk, row
}

// ServiceBatch services the accesses of one path phase starting no earlier
// than now and returns the cycle at which the last transfer finishes.
//
// The model pipelines banks behind a shared per-channel data bus, the way
// DDR controllers do: a row miss charges precharge (+ write recovery) and
// activate on the *bank*, which overlaps with other banks' data transfers;
// only the tBURST data beats serialize on the channel bus. Channel cursors
// persist across batches, so a batch issued while an earlier one is
// draining queues behind it — which is how dummy-path contention delays
// demand requests.
func (m *Model) ServiceBatch(now uint64, accs []Access) uint64 {
	if len(accs) == 0 {
		return now
	}
	done := now
	for i := range accs {
		if finish := m.serviceOne(now, accs[i].Addr, accs[i].Write); finish > done {
			done = finish
		}
	}
	return done
}

// ServicePath services one path phase given the physical block addresses
// directly — the zero-copy twin of ServiceBatch for the controller hot path,
// which holds the path as a []uint64 (tree.Layout.PathPhys) and would
// otherwise rebuild an []Access per phase. Every address is offset by off
// (the tree's physical base; 0 for the main tree) and serviced in the given
// direction. Timing, statistics and channel-state evolution are identical
// to ServiceBatch on the equivalent []Access; internally the phase is
// serviced in run-length form (AppendRuns + ServiceRuns) rather than
// address by address.
func (m *Model) ServicePath(now uint64, phys []uint64, off uint64, write bool) uint64 {
	if len(phys) == 0 {
		return now
	}
	m.runScratch = m.AppendRuns(phys, off, m.runScratch[:0])
	return m.ServiceRuns(now, m.runScratch, write)
}

// serviceOne charges one block transfer issued at now and returns when its
// data beats finish on the channel bus.
func (m *Model) serviceOne(now uint64, addr uint64, write bool) uint64 {
	chIdx, bkIdx, row := m.decompose(addr)
	ch := &m.channels[chIdx]
	b := &ch.banks[bkIdx]

	if b.openRow == row {
		m.stats.RowHits++
	} else {
		m.stats.RowMisses++
		// The controller knows a path's full address list when it
		// issues, so the MC opens rows ahead of the data transfers:
		// precharge+activate chains from when the bank last moved
		// data, not from the batch start. In steady state activation
		// latency hides behind the previous path's bursts; only the
		// per-block bus occupancy remains — the quantity IR-Alloc cuts.
		start := b.lastData
		if b.openRow != noRow {
			start += m.t.pre
			if b.lastWrite {
				start += m.t.wr
			}
		}
		b.avail = start + m.t.rcd + m.t.cas
		b.openRow = row
	}
	// Data for this access can appear no earlier than the row being
	// open (b.avail) and no earlier than a column command issued now;
	// consecutive row hits pipeline and become bus-limited.
	dataReady := b.avail
	if min := now + m.t.cas; dataReady < min {
		dataReady = min
	}
	busStart := dataReady
	if busStart < ch.freeAt {
		busStart = ch.freeAt
	}
	finish := busStart + m.t.burst
	ch.freeAt = finish
	b.lastData = finish
	b.lastWrite = write
	m.stats.BusyCPUCycles += m.t.burst
	if write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
	}
	return finish
}

// PostWrites queues a write batch the way an FR-FCFS controller's write
// buffer drains it: the transfers occupy the channel data buses (delaying
// everything issued later) but do not close rows or block later reads on
// bank timing — reads are prioritized over buffered writes, and ORAM write
// phases target the rows the read phase just opened. It returns the cycle
// the last write drains (informational; callers normally don't wait on it).
func (m *Model) PostWrites(now uint64, accs []Access) uint64 {
	if len(accs) == 0 {
		return now
	}
	done := now
	for i := range accs {
		if freeAt := m.postOne(now, accs[i].Addr); freeAt > done {
			done = freeAt
		}
	}
	return done
}

// PostWritePath posts one path-sized write phase given the physical block
// addresses directly (offset by off), the zero-copy twin of PostWrites —
// same drain semantics, no []Access rebuild. Posted writes only occupy
// channel buses, so the run-length form degenerates to one per-channel
// access count: the drain is O(channels) regardless of path length.
func (m *Model) PostWritePath(now uint64, phys []uint64, off uint64) uint64 {
	if len(phys) == 0 {
		return now
	}
	for i := range m.chCount {
		m.chCount[i] = 0
	}
	nCh := uint64(m.cfg.Channels)
	for _, a := range phys {
		m.chCount[(a+off)%nCh]++
	}
	return m.drainCounts(now)
}

// postOne drains one buffered write onto addr's channel bus and returns when
// that channel goes idle.
func (m *Model) postOne(now uint64, addr uint64) uint64 {
	ch := &m.channels[int(addr%uint64(m.cfg.Channels))]
	start := ch.freeAt
	if start < now {
		start = now
	}
	ch.freeAt = start + m.t.burst
	m.stats.BusyCPUCycles += m.t.burst
	m.stats.Writes++
	m.stats.RowHits++ // write phases target the rows the read opened
	return ch.freeAt
}

// FreeAt returns the cycle at which every channel is idle, i.e. when all
// previously issued traffic has drained.
func (m *Model) FreeAt() uint64 {
	var max uint64
	for i := range m.channels {
		if m.channels[i].freeAt > max {
			max = m.channels[i].freeAt
		}
	}
	return max
}

// Stats returns a copy of the accumulated statistics.
func (m *Model) Stats() Stats { return m.stats }

// Reset clears timing state and statistics, and invalidates every
// PathSched created from this model.
func (m *Model) Reset() {
	m.stats = Stats{}
	for i := range m.channels {
		m.channels[i].freeAt = 0
		for b := range m.channels[i].banks {
			m.channels[i].banks[b] = bank{openRow: noRow}
		}
	}
	for _, s := range m.scheds {
		s.Invalidate()
	}
}

// PathServiceBound returns an upper bound on the CPU cycles one path phase
// of n blocks takes on an idle memory system — useful for checking that the
// timing-protection interval T can absorb a full path (the paper's
// assumption when fixing T=1000).
//
// The bound is strict for any address sequence: a channel's cursor advances
// by at most one full row turnaround (precharge + write recovery +
// activate + column access) plus one burst per access, because a bank's
// last data beat never trails its channel's bus cursor. Real subtree-laid-
// out paths come in far under it — they pay roughly one turnaround per
// chunk, not per block — which TestPathServiceBoundDominatesRunLength
// exercises against the run-length servicer.
func (m *Model) PathServiceBound(n int) uint64 {
	cpd := uint64(m.cfg.CPUCyclesPerDRAMCycle)
	perChan := (uint64(n) + uint64(m.cfg.Channels) - 1) / uint64(m.cfg.Channels)
	lat := uint64(m.cfg.TRP+m.cfg.TWR+m.cfg.TRCD+m.cfg.TCAS) * cpd
	return perChan * (lat + uint64(m.cfg.TBurst)*cpd)
}
