package dram

import (
	"fmt"

	"iroram/internal/flight"
)

// This file implements the run-length path service (PR 7). The subtree data
// layout guarantees that a path's physical addresses arrive in long
// same-(channel,bank,row) stretches; the per-address loops in
// ServicePath/PostWritePath recomputed that structure on every block. The
// run iterator below pays one address decomposition per block only when a
// run list is built, and one row-buffer state transition plus one burst
// accumulation per run when it is serviced — with dram.PathSched memoizing
// the built lists per leaf so repeat leaves skip the build entirely.
//
// Correctness argument: serviceOne touches only the state of the channel
// (bus cursor) and bank (row buffer) the address decomposes to, and every
// access of one phase is issued at the same cycle `now`. Order across
// channels therefore cannot affect timing, statistics, or final state —
// only the per-channel access order matters, and AppendRuns preserves it
// (runs are emitted in first-address order; a channel's runs form an
// in-order subsequence). Within one (bank,row) run of n accesses, the first
// transfer starts at max(bankAvail, now+tCAS, busFree) and the remaining
// n-1 pipeline bus-limited, so the run finishes exactly n*tBURST after the
// first transfer starts — the closed form ServiceRuns charges. The
// retained per-address implementations (ServiceBatch/PostWrites) are the
// differential oracle; TestServicePathMatchesServiceBatch and the
// randomized differentials in runs_test.go pin the equivalence.

// Run is one maximal stretch of consecutive same-channel path addresses
// that fall into the same DRAM bank and row. A path's run list is a pure
// function of its physical address list and the model geometry.
type Run struct {
	// Row is the row index within the bank.
	Row uint64
	// Count is the number of 64 B block transfers in the run.
	Count uint32
	// Ch and Bank locate the run's row buffer.
	Ch, Bank uint16
}

// AppendRuns decomposes the physical block addresses phys (each offset by
// off), in order, into per-channel (bank,row) runs appended to dst. Two
// accesses join the same run exactly when they are consecutive on their
// channel and hit the same bank and row; the emitted list preserves each
// channel's access order, which is all the timing model depends on.
func (m *Model) AppendRuns(phys []uint64, off uint64, dst []Run) []Run {
	for i := range m.lastRun {
		m.lastRun[i] = -1
	}
	if m.pow2 {
		// Power-of-two geometry (every preset): decompose with shifts and
		// masks — the division form below costs three 64-bit divides per
		// address, which dominates a cold (uncached) run-list build.
		chShift, rowShift, bkShift := m.chShift, m.rowShift, m.bkShift
		chMask, bkMask := m.chMask, m.bkMask
		for _, a := range phys {
			addr := a + off
			ch := addr & chMask
			rowID := (addr >> chShift) >> rowShift
			bk := rowID & bkMask
			row := rowID >> bkShift
			if j := m.lastRun[ch]; j >= 0 {
				if r := &dst[j]; r.Row == row && r.Bank == uint16(bk) {
					r.Count++
					continue
				}
			}
			m.lastRun[ch] = int32(len(dst))
			dst = append(dst, Run{Row: row, Count: 1, Ch: uint16(ch), Bank: uint16(bk)})
		}
		return dst
	}
	nCh := uint64(m.cfg.Channels)
	nBk := uint64(m.cfg.BanksPerChannel)
	for _, a := range phys {
		addr := a + off
		ch := addr % nCh
		rowID := (addr / nCh) / m.rowBlocks
		bk := rowID % nBk
		row := rowID / nBk
		if j := m.lastRun[ch]; j >= 0 {
			if r := &dst[j]; r.Row == row && r.Bank == uint16(bk) {
				r.Count++
				continue
			}
		}
		m.lastRun[ch] = int32(len(dst))
		dst = append(dst, Run{Row: row, Count: 1, Ch: uint16(ch), Bank: uint16(bk)})
	}
	return dst
}

// ServiceRuns services one read or write path phase given its precomputed
// run list, starting no earlier than now. Timing, statistics and
// channel/bank state evolution are identical to ServiceBatch on the
// per-address expansion of the runs; the returned cycle is when the last
// transfer finishes on its channel bus.
func (m *Model) ServiceRuns(now uint64, runs []Run, write bool) uint64 {
	done := now
	var total, hits, misses uint64
	// Timing parameters and stats accumulate in locals: the run loop is the
	// hottest few instructions of the simulator and per-run read-modify-
	// writes through the Model pointer cost measurably more.
	pre, wr, rcdcas, burst := m.t.pre, m.t.wr, m.t.rcd+m.t.cas, m.t.burst
	minBus := now + m.t.cas
	armed := m.fl.Armed()
	for i := range runs {
		r := &runs[i]
		ch := &m.channels[r.Ch]
		b := &ch.banks[r.Bank]
		n := uint64(r.Count)
		total += n
		rowHit := b.openRow == r.Row
		if rowHit {
			hits += n
		} else {
			// Row transition once per run; the n-1 follow-up transfers hit
			// the row the first one opened (see serviceOne for the
			// activate-ahead rationale).
			misses++
			hits += n - 1
			start := b.lastData
			if b.openRow != noRow {
				start += pre
				if b.lastWrite {
					start += wr
				}
			}
			b.avail = start + rcdcas
			b.openRow = r.Row
		}
		// First transfer: row open, column command issued now, bus free.
		// The rest of the run pipelines bus-limited behind it.
		busStart := b.avail
		if busStart < minBus {
			busStart = minBus
		}
		if busStart < ch.freeAt {
			busStart = ch.freeAt
		}
		finish := busStart + n*burst
		ch.freeAt = finish
		b.lastData = finish
		b.lastWrite = write
		if finish > done {
			done = finish
		}
		if armed {
			sub := uint8(0)
			if rowHit {
				sub = 1
			}
			m.fl.Record(flight.Event{Start: busStart, End: finish,
				Arg: r.Row, Aux: n, Kind: flight.KindDramRun,
				Sub: sub, Ch: r.Ch, Bank: r.Bank})
		}
	}
	m.stats.RowHits += hits
	m.stats.RowMisses += misses
	m.stats.BusyCPUCycles += total * burst
	if write {
		m.stats.Writes += total
	} else {
		m.stats.Reads += total
	}
	return done
}

// PostWriteRuns drains one posted write phase given its precomputed run
// list — the run-length twin of PostWrites: per-channel bus occupancy only,
// no bank timing (see PostWrites for the FR-FCFS rationale).
func (m *Model) PostWriteRuns(now uint64, runs []Run) uint64 {
	if len(runs) == 0 {
		return now
	}
	for i := range m.chCount {
		m.chCount[i] = 0
	}
	for i := range runs {
		m.chCount[runs[i].Ch] += uint64(runs[i].Count)
	}
	return m.drainCounts(now)
}

// drainCounts applies m.chCount buffered writes per channel starting no
// earlier than now and returns when the last channel goes idle.
func (m *Model) drainCounts(now uint64) uint64 {
	done := now
	armed := m.fl.Armed()
	for c := range m.channels {
		n := m.chCount[c]
		if n == 0 {
			continue
		}
		ch := &m.channels[c]
		start := ch.freeAt
		if start < now {
			start = now
		}
		ch.freeAt = start + n*m.t.burst
		m.stats.BusyCPUCycles += n * m.t.burst
		m.stats.Writes += n
		m.stats.RowHits += n // write phases target the rows the read opened
		if ch.freeAt > done {
			done = ch.freeAt
		}
		if armed {
			m.fl.Record(flight.Event{Start: start, End: ch.freeAt,
				Aux: n, Kind: flight.KindDramDrain, Ch: uint16(c)})
		}
	}
	return done
}

// PathSched is a direct-mapped, per-leaf memo of path run lists for one
// tree layout (identified by its physical base offset). The run structure
// of a path is a pure function of (leaf, layout, model geometry), so repeat
// leaves service straight from the table — no address generation, no
// decomposition. Storage is preallocated flat at construction, so steady-
// state fills are allocation-free. Model.Reset invalidates every schedule
// created from it (the cached structure is geometry-dependent state).
type PathSched struct {
	m       *Model
	off     uint64
	mask    uint64
	maxRuns int
	tags    []uint64 // leaf+1; 0 marks an empty slot
	lens    []uint32
	runs    []Run // slot i owns runs[i*maxRuns : (i+1)*maxRuns]

	// Hits and Misses count Lookup outcomes (observability + tests).
	Hits, Misses uint64
}

// NewPathSched creates a schedule cache with at least slots direct-mapped
// entries (rounded up to a power of two), for paths of at most maxRuns runs
// — maxRuns = the path's block count is always a safe bound. off is the
// layout's physical base, added to every address at build time. The cache
// is registered with the model: Model.Reset invalidates it.
func (m *Model) NewPathSched(slots, maxRuns int, off uint64) *PathSched {
	if slots <= 0 || maxRuns <= 0 {
		panic(fmt.Sprintf("dram: PathSched slots %d / maxRuns %d must be positive", slots, maxRuns))
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	s := &PathSched{
		m:       m,
		off:     off,
		mask:    uint64(n - 1),
		maxRuns: maxRuns,
		tags:    make([]uint64, n),
		lens:    make([]uint32, n),
		runs:    make([]Run, n*maxRuns),
	}
	m.scheds = append(m.scheds, s)
	return s
}

// Lookup returns the memoized run list of leaf, if present.
func (s *PathSched) Lookup(leaf uint64) ([]Run, bool) {
	i := leaf & s.mask
	if s.tags[i] != leaf+1 {
		s.Misses++
		return nil, false
	}
	s.Hits++
	base := int(i) * s.maxRuns
	return s.runs[base : base+int(s.lens[i])], true
}

// Install builds the run list for leaf from its physical address list,
// stores it in leaf's slot (evicting whatever leaf mapped there), and
// returns it. It panics if the path produces more than maxRuns runs, which
// would mean the caller's bound was not the path block count.
func (s *PathSched) Install(leaf uint64, phys []uint64) []Run {
	i := leaf & s.mask
	base := int(i) * s.maxRuns
	rs := s.m.AppendRuns(phys, s.off, s.runs[base:base:base+s.maxRuns])
	if len(rs) > s.maxRuns {
		panic(fmt.Sprintf("dram: path of %d blocks built %d runs, bound %d",
			len(phys), len(rs), s.maxRuns))
	}
	s.tags[i] = leaf + 1
	s.lens[i] = uint32(len(rs))
	return rs
}

// Invalidate empties the cache. Run lists depend on bank/row geometry, not
// on mutable model state, so invalidation is only needed when the backing
// model is reset wholesale (Model.Reset calls this).
func (s *PathSched) Invalidate() {
	for i := range s.tags {
		s.tags[i] = 0
	}
}
