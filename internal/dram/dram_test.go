package dram

import (
	"testing"
	"testing/quick"

	"iroram/internal/config"
)

func testCfg() config.DRAM {
	return config.Scaled().DRAM
}

func reads(addrs ...uint64) []Access {
	accs := make([]Access, len(addrs))
	for i, a := range addrs {
		accs[i] = Access{Addr: a}
	}
	return accs
}

func TestEmptyBatchIsFree(t *testing.T) {
	m := New(testCfg())
	if got := m.ServiceBatch(100, nil); got != 100 {
		t.Errorf("empty batch completed at %d, want 100", got)
	}
}

func TestRowHitCheaperThanMiss(t *testing.T) {
	m := New(testCfg())
	// Two blocks on the same channel and row: the second is a row hit.
	t0 := m.ServiceBatch(0, reads(0))
	t1 := m.ServiceBatch(t0, reads(uint64(testCfg().Channels)))
	hitCost := t1 - t0
	if hitCost >= t0 {
		t.Errorf("row hit cost %d not cheaper than first access %d", hitCost, t0)
	}
	s := m.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss", s)
	}
}

func TestRowConflictCostsPrecharge(t *testing.T) {
	cfg := testCfg()
	m := New(cfg)
	rowBlocks := m.RowBlocks()
	chans, banks := uint64(cfg.Channels), uint64(cfg.BanksPerChannel)
	// Same channel, same bank, different row.
	a := uint64(0)
	b := chans * rowBlocks * banks
	t0 := m.ServiceBatch(0, reads(a))
	t1 := m.ServiceBatch(t0, reads(b))
	conflictCost := t1 - t0
	if conflictCost <= t0 {
		t.Errorf("row conflict cost %d should exceed cold access %d", conflictCost, t0)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := testCfg()
	m := New(cfg)
	// One block per channel: they overlap, so the batch should take about
	// one access time rather than Channels x access time.
	var accs []Access
	for c := 0; c < cfg.Channels; c++ {
		accs = append(accs, Access{Addr: uint64(c)})
	}
	parallel := m.ServiceBatch(0, accs)
	single := New(cfg).ServiceBatch(0, reads(0))
	if parallel != single {
		t.Errorf("parallel batch took %d, want %d (one access)", parallel, single)
	}
}

func TestSameChannelSerializes(t *testing.T) {
	cfg := testCfg()
	m := New(cfg)
	stride := uint64(cfg.Channels) * m.RowBlocks() // same channel, next bank
	done := m.ServiceBatch(0, reads(0, stride, 2*stride))
	single := New(cfg).ServiceBatch(0, reads(0))
	if done < 3*uint64(cfg.TBurst)*uint64(cfg.CPUCyclesPerDRAMCycle) {
		t.Errorf("3 same-channel accesses finished implausibly fast: %d", done)
	}
	if done <= single {
		t.Errorf("3 accesses (%d) should take longer than 1 (%d)", done, single)
	}
}

func TestBatchQueuesBehindEarlierTraffic(t *testing.T) {
	m := New(testCfg())
	first := m.ServiceBatch(0, reads(0, 1, 2, 3, 4, 5, 6, 7))
	// A batch issued at cycle 0 while the first is draining must not
	// complete before the first.
	second := m.ServiceBatch(0, reads(8))
	if second <= first-8*uint64(testCfg().TBurst) {
		t.Errorf("second batch at %d ignored queueing behind first at %d", second, first)
	}
	if m.FreeAt() != second {
		t.Errorf("FreeAt = %d, want %d", m.FreeAt(), second)
	}
}

func TestWriteRecoveryCharged(t *testing.T) {
	cfg := testCfg()
	rowStride := uint64(cfg.Channels) * uint64(cfg.RowBytes/config.BlockSize) * uint64(cfg.BanksPerChannel)

	afterRead := New(cfg)
	t0 := afterRead.ServiceBatch(0, reads(0))
	readThenConflict := afterRead.ServiceBatch(t0, reads(rowStride)) - t0

	afterWrite := New(cfg)
	t1 := afterWrite.ServiceBatch(0, []Access{{Addr: 0, Write: true}})
	writeThenConflict := afterWrite.ServiceBatch(t1, reads(rowStride)) - t1

	if writeThenConflict <= readThenConflict {
		t.Errorf("conflict after write (%d) should cost more than after read (%d)",
			writeThenConflict, readThenConflict)
	}
}

func TestStatsCountReadsWrites(t *testing.T) {
	m := New(testCfg())
	ch := uint64(testCfg().Channels)
	m.ServiceBatch(0, []Access{{Addr: 0}, {Addr: ch, Write: true}, {Addr: 2 * ch, Write: true}})
	s := m.Stats()
	if s.Reads != 1 || s.Writes != 2 {
		t.Errorf("reads/writes = %d/%d, want 1/2", s.Reads, s.Writes)
	}
	if s.RowHitRate() <= 0 {
		t.Error("expected some row hits for sequential addresses")
	}
}

func TestResetClearsState(t *testing.T) {
	m := New(testCfg())
	m.ServiceBatch(0, reads(0, 1, 2))
	m.Reset()
	if m.FreeAt() != 0 {
		t.Error("Reset should clear channel cursors")
	}
	if m.Stats() != (Stats{}) {
		t.Error("Reset should clear stats")
	}
}

func TestCompletionMonotoneInBatchSize(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%32) + 1
		cfg := testCfg()
		a := New(cfg)
		b := New(cfg)
		accs := make([]Access, n)
		x := seed
		for i := range accs {
			x = x*6364136223846793005 + 1442695040888963407
			accs[i] = Access{Addr: x % (1 << 20), Write: x&1 == 0}
		}
		ta := a.ServiceBatch(0, accs)
		tb := b.ServiceBatch(0, accs[:n/2+1])
		return tb <= ta
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() uint64 {
		m := New(testCfg())
		var done uint64
		for i := 0; i < 50; i++ {
			done = m.ServiceBatch(done, reads(uint64(i*37)%4096, uint64(i*113)%4096))
		}
		return done
	}
	if run() != run() {
		t.Error("model is not deterministic")
	}
}

func TestRowHitRateEmpty(t *testing.T) {
	if (Stats{}).RowHitRate() != 0 {
		t.Error("empty stats should report 0 hit rate")
	}
}

func TestSubtreeRowLocality(t *testing.T) {
	// A row-sized sequential batch stripes across channels: one row miss
	// per channel, everything else hits.
	m := New(testCfg())
	var accs []Access
	for i := uint64(0); i < m.RowBlocks(); i++ {
		accs = append(accs, Access{Addr: i})
	}
	m.ServiceBatch(0, accs)
	s := m.Stats()
	if s.RowMisses != uint64(testCfg().Channels) {
		t.Errorf("row misses = %d, want one per channel (%d)", s.RowMisses, testCfg().Channels)
	}
}
