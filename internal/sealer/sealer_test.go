package sealer

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTestSealer(t *testing.T) *Sealer {
	t.Helper()
	key := bytes.Repeat([]byte{7}, 32)
	s, err := New(key, 64)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := newTestSealer(t)
	pt := bytes.Repeat([]byte{0xAB}, 64)
	sealed, err := s.Seal(12345, 1, pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 64+Overhead {
		t.Fatalf("sealed size %d", len(sealed))
	}
	got, err := s.Open(12345, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip corrupted data")
	}
}

func TestTamperDetected(t *testing.T) {
	s := newTestSealer(t)
	sealed, _ := s.Seal(1, 1, make([]byte, 64))
	for _, i := range []int{0, 8, 40, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 1
		if _, err := s.Open(1, tampered); !errors.Is(err, ErrAuth) {
			t.Errorf("byte %d flip: err = %v, want ErrAuth", i, err)
		}
	}
}

func TestRelocationDetected(t *testing.T) {
	// A sealed block copied to a different tree position must not open:
	// this is the spatial-replay defence.
	s := newTestSealer(t)
	sealed, _ := s.Seal(100, 5, make([]byte, 64))
	if _, err := s.Open(101, sealed); !errors.Is(err, ErrAuth) {
		t.Errorf("relocated block opened: %v", err)
	}
}

func TestCiphertextDiffersByPositionAndCounter(t *testing.T) {
	s := newTestSealer(t)
	pt := make([]byte, 64)
	a, _ := s.Seal(1, 1, pt)
	b, _ := s.Seal(2, 1, pt)
	c, _ := s.Seal(1, 2, pt)
	if bytes.Equal(a[8:72], b[8:72]) {
		t.Error("same ciphertext at different positions")
	}
	if bytes.Equal(a[8:72], c[8:72]) {
		t.Error("same ciphertext for different counters")
	}
}

func TestRealAndDummyIndistinguishable(t *testing.T) {
	// The ORAM security argument needs ciphertexts to carry no plaintext
	// structure: a zero block and a patterned block must look equally
	// random. A coarse check: no long runs of equal bytes.
	s := newTestSealer(t)
	for _, pt := range [][]byte{make([]byte, 64), bytes.Repeat([]byte{0xFF}, 64)} {
		sealed, _ := s.Seal(7, 3, pt)
		run, best := 1, 1
		for i := 9; i < 72; i++ {
			if sealed[i] == sealed[i-1] {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 1
			}
		}
		if best > 4 {
			t.Errorf("ciphertext has a run of %d equal bytes", best)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New(make([]byte, 16), 64); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(make([]byte, 32), 0); err == nil {
		t.Error("zero block size accepted")
	}
	s := newTestSealer(t)
	if _, err := s.Seal(1, 1, make([]byte, 63)); err == nil {
		t.Error("wrong plaintext size accepted")
	}
	if _, err := s.Open(1, make([]byte, 10)); err == nil {
		t.Error("wrong sealed size accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := newTestSealer(t)
	check := func(seed uint64, pos uint64, ctr uint64) bool {
		pt := make([]byte, 64)
		x := seed
		for i := range pt {
			x = x*6364136223846793005 + 1442695040888963407
			pt[i] = byte(x >> 56)
		}
		sealed, err := s.Seal(pos, ctr, pt)
		if err != nil {
			return false
		}
		got, err := s.Open(pos, sealed)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
