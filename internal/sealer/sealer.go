// Package sealer provides the per-block encryption and authentication layer
// the paper assumes in hardware (Section II-A: data secrecy and integrity
// come from SGX-style enhancements; all tree blocks are encrypted so real
// and dummy blocks are indistinguishable).
//
// The simulator charges sealing as a fixed on-chip latency, but the library
// is also usable as a real oblivious store (see examples/obliviousstore),
// so this package implements functional sealing with stdlib crypto:
// AES-128-CTR for confidentiality and HMAC-SHA-256 (truncated to 16 bytes)
// for integrity, with the block's tree position and a per-write counter
// bound into both the nonce and the MAC so blocks cannot be replayed or
// relocated undetected.
package sealer

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Overhead is the sealing overhead in bytes: an 8-byte write counter plus a
// 16-byte truncated MAC.
const Overhead = 8 + 16

// ErrAuth reports a failed integrity check.
var ErrAuth = errors.New("sealer: authentication failed")

// Sealer seals and opens fixed-size blocks.
type Sealer struct {
	block     cipher.Block
	macKey    []byte
	blockSize int
}

// New creates a Sealer for plaintext blocks of blockSize bytes. key must be
// 32 bytes: the first 16 key AES, the rest key the MAC.
func New(key []byte, blockSize int) (*Sealer, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("sealer: key must be 32 bytes, got %d", len(key))
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("sealer: block size %d must be positive", blockSize)
	}
	b, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	return &Sealer{block: b, macKey: append([]byte(nil), key[16:]...), blockSize: blockSize}, nil
}

// SealedSize returns the ciphertext size.
func (s *Sealer) SealedSize() int { return s.blockSize + Overhead }

func (s *Sealer) nonce(position, counter uint64) []byte {
	iv := make([]byte, aes.BlockSize)
	binary.LittleEndian.PutUint64(iv[:8], position)
	binary.LittleEndian.PutUint64(iv[8:], counter)
	return iv
}

func (s *Sealer) mac(position, counter uint64, ct []byte) []byte {
	h := hmac.New(sha256.New, s.macKey)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], position)
	binary.LittleEndian.PutUint64(hdr[8:], counter)
	h.Write(hdr[:])
	h.Write(ct)
	return h.Sum(nil)[:16]
}

// Seal encrypts plaintext for storage at the given tree position (a
// physical slot index) with a fresh write counter. Layout: counter ||
// ciphertext || mac.
func (s *Sealer) Seal(position, counter uint64, plaintext []byte) ([]byte, error) {
	if len(plaintext) != s.blockSize {
		return nil, fmt.Errorf("sealer: plaintext %d bytes, want %d", len(plaintext), s.blockSize)
	}
	out := make([]byte, s.SealedSize())
	binary.LittleEndian.PutUint64(out[:8], counter)
	ct := out[8 : 8+s.blockSize]
	cipher.NewCTR(s.block, s.nonce(position, counter)).XORKeyStream(ct, plaintext)
	copy(out[8+s.blockSize:], s.mac(position, counter, ct))
	return out, nil
}

// Open authenticates and decrypts a sealed block read from position.
func (s *Sealer) Open(position uint64, sealed []byte) ([]byte, error) {
	if len(sealed) != s.SealedSize() {
		return nil, fmt.Errorf("sealer: sealed block %d bytes, want %d", len(sealed), s.SealedSize())
	}
	counter := binary.LittleEndian.Uint64(sealed[:8])
	ct := sealed[8 : 8+s.blockSize]
	want := s.mac(position, counter, ct)
	if !hmac.Equal(want, sealed[8+s.blockSize:]) {
		return nil, ErrAuth
	}
	pt := make([]byte, s.blockSize)
	cipher.NewCTR(s.block, s.nonce(position, counter)).XORKeyStream(pt, ct)
	return pt, nil
}
