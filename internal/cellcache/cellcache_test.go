package cellcache

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"iroram/internal/config"
	"iroram/internal/sim"
)

func quickKey(mut func(*config.System)) string {
	cfg := config.Tiny().WithScheme(config.Baseline())
	cfg.Seed = 1
	if mut != nil {
		mut(&cfg)
	}
	return Key(cfg, "gcc", 2000, 0)
}

// TestKeyIdentity: the fingerprint is a pure function of the cell — equal
// inputs give equal keys, including a fresh but value-equal Z profile slice.
func TestKeyIdentity(t *testing.T) {
	if quickKey(nil) != quickKey(nil) {
		t.Fatal("identical cells produced different keys")
	}
	fresh := quickKey(func(s *config.System) {
		s.ORAM.Z = append(config.ZProfile(nil), s.ORAM.Z...)
	})
	if fresh != quickKey(nil) {
		t.Fatal("value-equal Z profile in a fresh slice changed the key")
	}
}

// TestKeyDistinct: every axis the issue names — scheme, Z profile, seed,
// requests, epoch interval — plus the benchmark must separate keys.
func TestKeyDistinct(t *testing.T) {
	base := quickKey(nil)
	variants := map[string]string{
		"scheme": quickKey(func(s *config.System) {
			*s = config.Tiny().WithScheme(config.IRDWBScheme())
			s.Seed = 1
		}),
		"zprofile": quickKey(func(s *config.System) {
			s.ORAM.Z = append(config.ZProfile(nil), s.ORAM.Z...)
			s.ORAM.Z[12] = 3
		}),
		"seed": quickKey(func(s *config.System) { s.Seed = 2 }),
		"interval": quickKey(func(s *config.System) {
			s.ORAM.IntervalT = 0
		}),
		"mlp": quickKey(func(s *config.System) { s.CPU.MLP = 1 }),
	}
	cfg := config.Tiny().WithScheme(config.Baseline())
	cfg.Seed = 1
	variants["bench"] = Key(cfg, "mcf", 2000, 0)
	variants["requests"] = Key(cfg, "gcc", 1000, 0)
	variants["epoch"] = Key(cfg, "gcc", 2000, 500)

	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if k == base {
			t.Errorf("%s variant has the same key as base", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s variants collide", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyProfileEquivalence pins the cross-figure dedup the scheduler relies
// on: an explicit Z-profile override that equals the profile WithScheme
// installs (Fig 12's IR-Alloc4 vs Fig 10's standalone IR-Alloc) maps to the
// same key.
func TestKeyProfileEquivalence(t *testing.T) {
	viaScheme := config.Tiny().WithScheme(config.IRAllocScheme())
	viaScheme.Seed = 1
	viaProfile := config.Tiny().WithScheme(config.IRAllocScheme())
	viaProfile.ORAM.Z = config.Alloc4Profile(viaProfile.ORAM.Levels, viaProfile.ORAM.TopLevels)
	viaProfile.Seed = 1
	if Key(viaScheme, "gcc", 2000, 0) != Key(viaProfile, "gcc", 2000, 0) {
		t.Fatal("value-equal configs resolved through different paths got different keys")
	}
}

// TestCoverageGuard: the reflection guard accepts the real config structs
// (mustCoverConfig must not panic) and detects both drift directions on a
// synthetic struct.
func TestCoverageGuard(t *testing.T) {
	mustCoverConfig() // panics on failure

	type demo struct{ A, B int }
	dt := reflect.TypeOf(demo{})
	if err := coverageError(dt, []string{"A", "B"}); err != nil {
		t.Errorf("exact coverage rejected: %v", err)
	}
	err := coverageError(dt, []string{"A"})
	if err == nil || !strings.Contains(err.Error(), "B") {
		t.Errorf("uncovered field not detected: %v", err)
	}
	err = coverageError(dt, []string{"A", "B", "C"})
	if err == nil || !strings.Contains(err.Error(), "C") {
		t.Errorf("stale encoder field not detected: %v", err)
	}
	err = coverageError(dt, []string{"A", "A", "B"})
	if err == nil {
		t.Error("duplicate coverage entry not detected")
	}
}

// TestDoSingleFlight: N concurrent requesters for one key run compute
// exactly once; everyone gets the same result; exactly one caller reports a
// miss.
func TestDoSingleFlight(t *testing.T) {
	c := New()
	var computes atomic.Int64
	var hits atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, hit, err := c.Do("k", func() (sim.Result, error) {
				computes.Add(1)
				close(started)
				<-release // hold the entry in flight so duplicates queue behind it
				return sim.Result{Cycles: 42}, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if res.Cycles != 42 {
				t.Errorf("got Cycles=%d, want 42", res.Cycles)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	// Whether a duplicate blocks on the in-flight entry or arrives after
	// completion, it counts as a hit either way — no scheduling assumption
	// needed beyond "compute started".
	<-started
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if got := hits.Load(); got != n-1 {
		t.Errorf("%d hits, want %d", got, n-1)
	}
	if h, m := c.Stats(); h != n-1 || m != 1 {
		t.Errorf("Stats() = (%d, %d), want (%d, 1)", h, m, n-1)
	}

	// Late requester: O(1) completed hit.
	if _, hit, _ := c.Do("k", func() (sim.Result, error) {
		t.Error("compute ran for a completed entry")
		return sim.Result{}, nil
	}); !hit {
		t.Error("completed entry not reported as hit")
	}
}

// TestDoDistinctKeys: distinct keys compute independently.
func TestDoDistinctKeys(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		want := uint64(i + 1)
		res, hit, err := c.Do(key, func() (sim.Result, error) {
			return sim.Result{Cycles: want}, nil
		})
		if err != nil || hit || res.Cycles != want {
			t.Errorf("key %s: res=%d hit=%v err=%v", key, res.Cycles, hit, err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len() = %d, want 3", c.Len())
	}
}

// TestDoMemoizesError: a failed cell reports the identical error to every
// requester, first and late.
func TestDoMemoizesError(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (sim.Result, error) {
		return sim.Result{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first requester got %v, want boom", err)
	}
	_, hit, err := c.Do("k", func() (sim.Result, error) {
		t.Error("compute re-ran after a memoized error")
		return sim.Result{}, nil
	})
	if !hit || !errors.Is(err, boom) {
		t.Errorf("late requester: hit=%v err=%v, want memoized boom", hit, err)
	}
}
