// Package cellcache memoizes simulation cell results across experiment
// drivers.
//
// The evaluation pipeline replays the paper's studies as ~16 figure drivers,
// and the drivers re-simulate identical cells: Baseline × all benchmarks
// alone is rebuilt by Table2, Fig2, Fig12's normalization row and the
// ablation bases, and the scheme grids of Fig10/11/14/15/energy overlap
// further. Every cell is a pure function of its fully-resolved configuration
// (internal/experiments documents the determinism contract), so exact
// memoization is safe: the cache key is a canonical fingerprint of the
// post-override config.System plus the benchmark name, request count and
// epoch interval — everything the cell's result depends on.
//
// # Single-flight contract
//
// Do runs the compute function at most once per key, ever: the first
// requester simulates, concurrent duplicates block until that in-flight
// computation completes, and later requesters get the memoized result in
// O(1). A blocked duplicate waits at most one cell (cells run to completion;
// the simulators have no preemption points), which preserves the experiment
// engine's cancellation-at-cell-boundaries semantics.
//
// # Immutability contract
//
// Do returns the one stored sim.Result value to every requester. A
// sim.Result is immutable after the producing System returns it (see the
// sim package doc); consumers — table math, artifact records — only read
// it. TestCachedResultImmutable in internal/experiments pins that contract:
// if it ever fails, hits must start deep-copying.
//
// # Fail-closed keying
//
// The key encoder is hand-written field by field. A reflection guard runs
// before the first Key and panics if config.System (or any struct reachable
// from it) has gained a field the encoder does not cover — growing the
// configuration surface without extending the fingerprint fails loudly
// instead of ever serving a stale hit.
package cellcache

import (
	"sync"

	"iroram/internal/sim"
)

// Cache is a concurrency-safe, single-flight memo of cell results keyed by
// the canonical cell fingerprint (Key). The zero value is not usable; call
// New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	hits    uint64
	misses  uint64
}

// entry is one cell's slot: done closes when the first requester's compute
// finishes, after which res and err are immutable.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// New returns an empty cell-result cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// Do returns the memoized result for key, running compute at most once per
// key across all goroutines: the first caller computes, concurrent callers
// with the same key block until it finishes, and later callers return
// immediately. hit reports whether this call was served without running
// compute (a completed entry or an in-flight wait both count). Errors are
// memoized like results: a failed cell reports the same error to every
// requester (the experiment engine aborts the sweep on the first error, so
// retries never arise).
//
// compute must not call back into the same Cache — cells do not request
// other cells — and must return; if it panics, the process is tearing down
// anyway (the experiment workers do not recover).
func (c *Cache) Do(key string, compute func() (sim.Result, error)) (res sim.Result, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.res, true, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.res, e.err = compute()
	close(e.done)
	return e.res, false, e.err
}

// Stats returns how many Do calls were served from the cache (completed or
// in-flight entries) and how many ran their compute function.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of distinct cells the cache holds (including any
// still in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
