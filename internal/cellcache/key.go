package cellcache

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"sync"

	"iroram/internal/config"
)

// Key returns the canonical fingerprint of one simulation cell: the
// fully-resolved (post-override) system configuration, the benchmark name,
// the number of trace records consumed, and the epoch-snapshot interval.
// Two cells with equal keys produce bit-identical sim.Results (the
// determinism contract of internal/sim), and the encoding is collision-free
// by construction — every field is written out in full, so distinct cells
// can never share a key.
//
// The encoder is hand-written field by field; the coverage guard
// (verifyCoverage) panics before the first key is built if any config
// struct has grown a field the encoder does not write. Fail-closed: a
// configuration change can break the build-time contract, never serve a
// stale hit.
func Key(cfg config.System, bench string, requests int, epochInterval uint64) string {
	guardOnce.Do(mustCoverConfig)
	b := make([]byte, 0, 512)
	b = appendSystem(b, cfg)
	b = append(b, "bench="...)
	b = append(b, bench...)
	b = appendUint(b, "requests", uint64(requests))
	b = appendUint(b, "epoch", epochInterval)
	return string(b)
}

func appendUint(b []byte, name string, v uint64) []byte {
	b = append(b, ';')
	b = append(b, name...)
	b = append(b, '=')
	return strconv.AppendUint(b, v, 10)
}

func appendInt(b []byte, name string, v int) []byte {
	b = append(b, ';')
	b = append(b, name...)
	b = append(b, '=')
	return strconv.AppendInt(b, int64(v), 10)
}

func appendBool(b []byte, name string, v bool) []byte {
	b = append(b, ';')
	b = append(b, name...)
	b = append(b, '=')
	return strconv.AppendBool(b, v)
}

// appendString writes a length-prefixed string so no value can fake a field
// separator (benchmark and scheme names are short identifiers, but the
// encoding should not rely on that).
func appendString(b []byte, name, v string) []byte {
	b = append(b, ';')
	b = append(b, name...)
	b = append(b, '=')
	b = strconv.AppendInt(b, int64(len(v)), 10)
	b = append(b, ':')
	return append(b, v...)
}

func appendSystem(b []byte, s config.System) []byte {
	b = appendORAM(b, s.ORAM)
	b = appendDRAM(b, s.DRAM)
	b = appendCache(b, "llc", s.LLC)
	b = appendCache(b, "l1", s.L1)
	b = appendCPU(b, s.CPU)
	b = appendScheme(b, s.Scheme)
	b = appendUint(b, "seed", s.Seed)
	b = append(b, ';')
	return b
}

func appendORAM(b []byte, o config.ORAM) []byte {
	b = appendInt(b, "o.levels", o.Levels)
	b = appendInt(b, "o.top", o.TopLevels)
	b = append(b, ";o.z="...)
	for i, z := range o.Z {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(z), 10)
	}
	b = appendUint(b, "o.user", o.UserBlocks)
	b = appendInt(b, "o.stash", o.StashCapacity)
	b = appendInt(b, "o.evictthr", o.StashEvictThreshold)
	b = appendInt(b, "o.sstashways", o.SStashWays)
	b = appendInt(b, "o.plbentries", o.PLBEntries)
	b = appendInt(b, "o.plbways", o.PLBWays)
	b = appendUint(b, "o.intervalt", o.IntervalT)
	b = appendUint(b, "o.onchip", o.OnChipLatency)
	return b
}

func appendDRAM(b []byte, d config.DRAM) []byte {
	b = appendInt(b, "d.ch", d.Channels)
	b = appendInt(b, "d.banks", d.BanksPerChannel)
	b = appendInt(b, "d.row", d.RowBytes)
	b = appendInt(b, "d.ratio", d.CPUCyclesPerDRAMCycle)
	b = appendInt(b, "d.trcd", d.TRCD)
	b = appendInt(b, "d.tcas", d.TCAS)
	b = appendInt(b, "d.trp", d.TRP)
	b = appendInt(b, "d.tburst", d.TBurst)
	b = appendInt(b, "d.twr", d.TWR)
	// PathSchedSlots is deliberately part of the key even though the
	// memoized DRAM schedule is documented output-neutral: the fingerprint
	// never encodes semantic knowledge about which knobs are inert —
	// cheaper one duplicate simulation than one wrong hit.
	b = appendInt(b, "d.schedslots", d.PathSchedSlots)
	return b
}

func appendCache(b []byte, prefix string, c config.Cache) []byte {
	b = appendInt(b, prefix+".cap", c.CapacityBytes)
	b = appendInt(b, prefix+".ways", c.Ways)
	b = appendUint(b, prefix+".hit", c.HitLatency)
	return b
}

func appendCPU(b []byte, c config.CPU) []byte {
	b = appendInt(b, "c.ipc", c.IPC)
	b = appendInt(b, "c.wq", c.WriteQueueDepth)
	b = appendInt(b, "c.mlp", c.MLP)
	return b
}

func appendScheme(b []byte, s config.Scheme) []byte {
	// Name does not influence simulation (labels only), but it costs a few
	// bytes to include and keeps the encoder total over the struct — the
	// property the coverage guard checks.
	b = appendString(b, "s.name", s.Name)
	b = appendInt(b, "s.top", int(s.Top))
	b = appendBool(b, "s.dwb", s.DWB)
	b = appendBool(b, "s.dremap", s.DelayedRemap)
	b = appendBool(b, "s.premap", s.ProactiveRemap)
	b = appendBool(b, "s.rho", s.Rho)
	b = appendInt(b, "s.rhodelta", s.RhoLevelsDelta)
	b = appendInt(b, "s.rhoz", s.RhoZ)
	b = appendInt(b, "s.rhopat", s.RhoPattern)
	b = appendBool(b, "s.ring", s.Ring)
	b = appendInt(b, "s.rings", s.RingS)
	b = appendInt(b, "s.ringa", s.RingA)
	return b
}

var guardOnce sync.Once

// covered lists, per config struct type, exactly the fields the key encoder
// writes. mustCoverConfig compares these lists against the real struct
// shapes by reflection; any drift — a field added to config without a
// matching encoder line, or an encoder line naming a removed field — panics
// before the first key is built.
var covered = map[reflect.Type][]string{
	reflect.TypeOf(config.System{}): {"ORAM", "DRAM", "LLC", "L1", "CPU", "Scheme", "Seed"},
	reflect.TypeOf(config.ORAM{}): {
		"Levels", "TopLevels", "Z", "UserBlocks", "StashCapacity",
		"StashEvictThreshold", "SStashWays", "PLBEntries", "PLBWays",
		"IntervalT", "OnChipLatency",
	},
	reflect.TypeOf(config.DRAM{}): {
		"Channels", "BanksPerChannel", "RowBytes", "CPUCyclesPerDRAMCycle",
		"TRCD", "TCAS", "TRP", "TBurst", "TWR", "PathSchedSlots",
	},
	reflect.TypeOf(config.Cache{}): {"CapacityBytes", "Ways", "HitLatency"},
	reflect.TypeOf(config.CPU{}):   {"IPC", "WriteQueueDepth", "MLP"},
	reflect.TypeOf(config.Scheme{}): {
		"Name", "Top", "DWB", "DelayedRemap", "ProactiveRemap",
		"Rho", "RhoLevelsDelta", "RhoZ", "RhoPattern",
		"Ring", "RingS", "RingA",
	},
}

// mustCoverConfig panics unless every config struct's field set matches the
// encoder's covered list exactly. Exercised by the unit tests and, via
// sync.Once, before the first Key of every process.
func mustCoverConfig() {
	for t, fields := range covered {
		if err := coverageError(t, fields); err != nil {
			panic("cellcache: " + err.Error() +
				" — extend the key encoder in internal/cellcache/key.go" +
				" (a cell fingerprint that misses a field could serve stale results)")
		}
	}
}

// coverageError reports the first mismatch between a struct's real fields
// and the list the encoder claims to cover, in either direction.
func coverageError(t reflect.Type, fields []string) error {
	want := make(map[string]bool, len(fields))
	for _, f := range fields {
		if want[f] {
			return fmt.Errorf("%s: field %s listed twice in coverage table", t, f)
		}
		want[f] = true
	}
	var actual []string
	for i := 0; i < t.NumField(); i++ {
		actual = append(actual, t.Field(i).Name)
	}
	sort.Strings(actual)
	for _, name := range actual {
		if !want[name] {
			return fmt.Errorf("%s: field %s is not covered by the cell fingerprint", t, name)
		}
		delete(want, name)
	}
	for _, f := range fields {
		if want[f] {
			return fmt.Errorf("%s: encoder covers field %s which no longer exists", t, f)
		}
	}
	return nil
}
