package cache

import (
	"testing"

	"iroram/internal/rng"
)

// Benchmark bodies for the cache hot paths, exported (rather than living in
// a _test file) so cmd/benchjson can snapshot them programmatically via
// testing.Benchmark while the root bench_test.go wraps them for
// `make bench`. Geometry matches the scaled LLC (1024 sets x 8 ways).

// AccessBenchmark is the body of BenchmarkLLCAccess: a random
// access-or-insert stream against an LLC with LRU tracking enabled — the
// IR-DWB configuration, i.e. the one that pays the per-mutation summary
// refresh on top of mask-based set indexing.
func AccessBenchmark(b *testing.B) {
	c := New(1024, 8)
	c.EnableLRUTracking()
	r := rng.New(3)
	const addrSpace = 1024 * 8 * 4 // 4x capacity: steady miss/evict mix
	for i := 0; i < 50000; i++ { // warm to full occupancy
		a := r.Uint64n(addrSpace)
		if !c.Access(a, r.Bool(0.3)) {
			c.Insert(a, r.Bool(0.3))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := r.Uint64n(addrSpace)
		if !c.Access(a, r.Bool(0.3)) {
			c.Insert(a, r.Bool(0.3))
		}
	}
}

// ScanBenchmark is the body of BenchmarkDWBScan: the sparse-candidate case
// the Ptr register actually faces — every set full, exactly one set holding
// a dirty LRU line — so each FindCandidate wraps the whole cursor range.
// This is the op the summary bitmaps turn from an O(sets) set-by-set sweep
// into a 16-word bit scan.
func ScanBenchmark(b *testing.B) {
	c := New(1024, 8)
	r := rng.New(4)
	s := NewDWBScanner(c, func() int { return r.Intn(1024) })
	for set := 0; set < 1024; set++ {
		for w := 0; w < 8; w++ {
			c.Insert(uint64(set+1024*w), false)
		}
	}
	c.MarkDirty(lruAddrOf(c, 511)) // the lone candidate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.FindCandidate(0); !ok {
			b.Fatal("candidate disappeared")
		}
	}
}

func lruAddrOf(c *Cache, si int) uint64 {
	a, ok := c.LRU(si)
	if !ok {
		panic("cache: benchmark set not full")
	}
	return a
}
