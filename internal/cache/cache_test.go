package cache

import (
	"testing"
	"testing/quick"

	"iroram/internal/rng"
)

func TestMissThenHit(t *testing.T) {
	c := New(4, 2)
	if c.Access(42, false) {
		t.Fatal("cold cache should miss")
	}
	c.Insert(42, false)
	if !c.Access(42, false) {
		t.Fatal("should hit after insert")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss", s)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := New(4, 2)
	c.Insert(42, false)
	c.Access(42, true)
	if !c.IsDirty(42) {
		t.Error("write hit should dirty the line")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2)
	c.Insert(1, false)
	c.Insert(2, false)
	c.Access(1, false) // make 2 the LRU
	v := c.Insert(3, true)
	if !v.Valid || v.Addr != 2 {
		t.Errorf("victim %+v, want addr 2", v)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("post-eviction contents wrong")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := New(1, 1)
	c.Insert(1, true)
	v := c.Insert(2, false)
	if !v.Valid || !v.Dirty || v.Addr != 1 {
		t.Errorf("victim %+v, want dirty addr 1", v)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.DirtyEvictions != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	c := New(1, 2)
	c.Insert(1, false)
	v := c.Insert(1, true)
	if v.Valid {
		t.Error("re-insert should not evict")
	}
	if !c.IsDirty(1) {
		t.Error("re-insert with dirty should set dirty bit")
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy %d, want 1", c.Occupancy())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(2, 2)
	c.Insert(5, true)
	was := c.Invalidate(5)
	if !was.Valid || !was.Dirty {
		t.Errorf("Invalidate returned %+v", was)
	}
	if c.Contains(5) {
		t.Error("line still present after invalidate")
	}
	if c.Invalidate(5).Valid {
		t.Error("double invalidate should report absent")
	}
}

func TestMarkCleanDirty(t *testing.T) {
	c := New(2, 2)
	c.Insert(7, true)
	if !c.MarkClean(7) || c.IsDirty(7) {
		t.Error("MarkClean failed")
	}
	if !c.MarkDirty(7) || !c.IsDirty(7) {
		t.Error("MarkDirty failed")
	}
	if c.MarkClean(999) || c.MarkDirty(999) {
		t.Error("marking absent lines should report false")
	}
}

func TestDirtyLRU(t *testing.T) {
	c := New(1, 2)
	if _, ok := c.DirtyLRU(0); ok {
		t.Error("set with invalid ways should have no dirty LRU")
	}
	c.Insert(1, true)
	c.Insert(2, false)
	// Set full; LRU is 1 and dirty.
	addr, ok := c.DirtyLRU(0)
	if !ok || addr != 1 {
		t.Errorf("DirtyLRU = %d,%v, want 1,true", addr, ok)
	}
	if !c.IsDirtyLRU(1) || c.IsDirtyLRU(2) {
		t.Error("IsDirtyLRU predicates wrong")
	}
	c.Access(1, false) // now 2 is LRU but clean
	if _, ok := c.DirtyLRU(0); ok {
		t.Error("clean LRU should not be a candidate")
	}
}

func TestOccupancyAndDirtyCount(t *testing.T) {
	c := New(4, 2)
	c.Insert(0, true)
	c.Insert(1, false)
	c.Insert(2, true)
	if c.Occupancy() != 3 || c.DirtyCount() != 2 {
		t.Errorf("occupancy/dirty = %d/%d, want 3/2", c.Occupancy(), c.DirtyCount())
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("idle MissRate should be 0")
	}
	s := Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", s.MissRate())
	}
}

// TestOccupancyNeverExceedsCapacity is the basic capacity invariant under
// random workloads.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(8, 4)
		for i := 0; i < 500; i++ {
			a := r.Uint64n(256)
			if !c.Access(a, r.Bool(0.5)) {
				c.Insert(a, r.Bool(0.5))
			}
		}
		return c.Occupancy() <= 8*4 && c.DirtyCount() <= c.Occupancy()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestInclusionAfterInsert: an inserted line stays resident until evicted or
// invalidated, and each insert evicts at most one line.
func TestInclusionAfterInsert(t *testing.T) {
	r := rng.New(3)
	c := New(16, 4)
	resident := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		a := r.Uint64n(1024)
		if c.Access(a, false) {
			if !resident[a] {
				t.Fatal("hit on a line the model says is absent")
			}
			continue
		}
		if resident[a] {
			t.Fatal("miss on a line the model says is resident")
		}
		v := c.Insert(a, false)
		resident[a] = true
		if v.Valid {
			if !resident[v.Addr] {
				t.Fatal("evicted a non-resident line")
			}
			delete(resident, v.Addr)
		}
	}
	if len(resident) != c.Occupancy() {
		t.Fatalf("model %d lines vs cache %d", len(resident), c.Occupancy())
	}
}

func TestDWBScannerFindsDirtyLRU(t *testing.T) {
	c := New(4, 2)
	r := rng.New(1)
	s := NewDWBScanner(c, func() int { return r.Intn(4) })
	// Fill set 2 with a dirty LRU.
	c.Insert(2, true)  // set 2
	c.Insert(6, false) // set 2, second way; LRU = 2 (dirty)
	addr, ok := s.FindCandidate(0)
	if !ok || addr != 2 {
		t.Fatalf("FindCandidate = %d,%v want 2,true", addr, ok)
	}
	if s.Found != 1 {
		t.Errorf("Found = %d", s.Found)
	}
}

func TestDWBScannerSkipsPartialSets(t *testing.T) {
	c := New(4, 2)
	r := rng.New(1)
	s := NewDWBScanner(c, func() int { return r.Intn(4) })
	c.Insert(2, true) // set 2 has a free way: no LRU pressure
	if _, ok := s.FindCandidate(0); ok {
		t.Error("sets with free ways should not yield candidates")
	}
}

func TestDWBScannerPausesAfterEmptySweep(t *testing.T) {
	c := New(4, 2)
	r := rng.New(1)
	s := NewDWBScanner(c, func() int { return r.Intn(4) })
	if _, ok := s.FindCandidate(0); ok {
		t.Fatal("empty cache should yield no candidate")
	}
	if s.EmptySweeps != 1 {
		t.Fatalf("EmptySweeps = %d", s.EmptySweeps)
	}
	// Even with a candidate now present, the scanner stays paused.
	c.Insert(0, true)
	c.Insert(4, false)
	if _, ok := s.FindCandidate(500); ok {
		t.Error("scanner should be paused")
	}
	if _, ok := s.FindCandidate(1001); !ok {
		t.Error("scanner should resume after the pause window")
	}
}

func TestDWBScannerRoundRobin(t *testing.T) {
	c := New(4, 1)
	r := rng.New(1)
	s := NewDWBScanner(c, func() int { return r.Intn(4) })
	// Single-way sets: every valid dirty line is its set's LRU.
	for a := uint64(0); a < 4; a++ {
		c.Insert(a, true)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		addr, ok := s.FindCandidate(0)
		if !ok {
			t.Fatalf("candidate %d missing", i)
		}
		seen[addr] = true
	}
	if len(seen) != 4 {
		t.Errorf("round-robin visited %d/4 distinct sets", len(seen))
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 4)
}
