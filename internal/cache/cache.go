// Package cache implements the set-associative write-back caches of the
// simulated system: the LLC in front of the ORAM controller, the L1 filter
// used when replaying raw traces, and the PLB (PosMap lookaside buffer).
// It also provides the dirty-LRU scanner that IR-DWB's Ptr register walks
// (Section IV-D of the paper).
package cache

import "fmt"

// Line is the externally visible state of one cache line.
type Line struct {
	Addr  uint64
	Valid bool
	Dirty bool
}

type way struct {
	addr  uint64
	valid bool
	dirty bool
	stamp uint64 // larger = more recently used
}

// Cache is a set-associative cache with true-LRU replacement, keyed by block
// address (block units, not bytes).
type Cache struct {
	sets  int
	ways  int
	lines []way // sets*ways, row-major by set
	clock uint64
	// mask is sets-1 when sets is a power of two (validated at New), so
	// setOf is a single AND on the hot path; 0 selects the modulo fallback
	// for exotic geometries.
	mask uint64
	// occupied / dirtyLines are maintained incrementally by every mutator,
	// making Occupancy and DirtyCount O(1) instead of full-line scans.
	occupied   int
	dirtyLines int
	// lruSummary / dirtySummary are per-set predicate bitmaps for the
	// IR-DWB scanner: bit si of lruSummary is set iff set si is full (has
	// an LRU victim candidate), bit si of dirtySummary iff additionally
	// that LRU line is dirty. They are allocated lazily by
	// EnableLRUTracking (scanner attach) and refreshed by every mutator,
	// turning the scanner's O(sets) sweep into a word-wise bit scan.
	lruSummary   []uint64
	dirtySummary []uint64
	// Stats
	hits, misses, evictions, dirtyEvictions uint64
}

// New builds a cache with the given geometry. It panics on non-positive
// geometry; callers validate configs up front. Power-of-two set counts
// (every preset geometry) get mask-based set indexing.
func New(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %dx%d", sets, ways))
	}
	c := &Cache{sets: sets, ways: ways, lines: make([]way, sets*ways)}
	if sets&(sets-1) == 0 {
		c.mask = uint64(sets - 1)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(addr uint64) int {
	if c.mask != 0 {
		return int(addr & c.mask)
	}
	return int(addr % uint64(c.sets))
}

func (c *Cache) set(idx int) []way { return c.lines[idx*c.ways : (idx+1)*c.ways] }

func (c *Cache) findIn(si int, addr uint64) *way {
	for s, i := c.set(si), 0; i < len(s); i++ {
		if s[i].valid && s[i].addr == addr {
			return &s[i]
		}
	}
	return nil
}

func (c *Cache) find(addr uint64) *way {
	return c.findIn(c.setOf(addr), addr)
}

// EnableLRUTracking allocates and fills the per-set summary bitmaps the
// DWB scanner consumes. Scanner constructors call it; plain caches (PLB,
// L1, non-DWB LLCs) never pay the per-mutation refresh.
func (c *Cache) EnableLRUTracking() {
	if c.lruSummary != nil {
		return
	}
	words := (c.sets + 63) / 64
	c.lruSummary = make([]uint64, words)
	c.dirtySummary = make([]uint64, words)
	for si := 0; si < c.sets; si++ {
		c.refreshSummary(si)
	}
}

// refreshSummary recomputes set si's two summary bits after a mutation.
// One O(ways) pass — over the same lines the mutation just touched — keeps
// the bitmaps exact, which is what lets FindCandidate trust a set bit
// without re-deriving the predicate.
func (c *Cache) refreshSummary(si int) {
	if c.lruSummary == nil {
		return
	}
	s := c.set(si)
	vi := 0
	full := true
	for i := range s {
		if !s[i].valid {
			full = false
			break
		}
		if s[i].stamp < s[vi].stamp {
			vi = i
		}
	}
	w, bit := si>>6, uint64(1)<<uint(si&63)
	if !full {
		c.lruSummary[w] &^= bit
		c.dirtySummary[w] &^= bit
		return
	}
	c.lruSummary[w] |= bit
	if s[vi].dirty {
		c.dirtySummary[w] |= bit
	} else {
		c.dirtySummary[w] &^= bit
	}
}

// Access looks up addr, updating recency and the dirty bit on a write hit.
// It returns whether the line was present.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	si := c.setOf(addr)
	if w := c.findIn(si, addr); w != nil {
		w.stamp = c.clock
		if write && !w.dirty {
			w.dirty = true
			c.dirtyLines++
		}
		c.hits++
		c.refreshSummary(si)
		return true
	}
	c.misses++
	return false
}

// Contains reports presence without touching recency or stats.
func (c *Cache) Contains(addr uint64) bool { return c.find(addr) != nil }

// IsDirty reports whether the line is present and dirty, without side
// effects.
func (c *Cache) IsDirty(addr uint64) bool {
	w := c.find(addr)
	return w != nil && w.dirty
}

// Insert fills addr (allocating on a miss path). It returns the victim line
// if a valid line had to be evicted. Inserting an already-present address
// just updates its state.
func (c *Cache) Insert(addr uint64, dirty bool) (victim Line) {
	c.clock++
	si := c.setOf(addr)
	if w := c.findIn(si, addr); w != nil {
		w.stamp = c.clock
		if dirty && !w.dirty {
			w.dirty = true
			c.dirtyLines++
		}
		c.refreshSummary(si)
		return Line{}
	}
	s := c.set(si)
	vi := 0
	for i := 1; i < len(s); i++ {
		if !s[i].valid {
			vi = i
			break
		}
		if !s[vi].valid {
			break
		}
		if s[i].stamp < s[vi].stamp {
			vi = i
		}
	}
	if !s[0].valid {
		vi = 0
	}
	if s[vi].valid {
		victim = Line{Addr: s[vi].addr, Valid: true, Dirty: s[vi].dirty}
		c.evictions++
		if s[vi].dirty {
			c.dirtyEvictions++
			c.dirtyLines--
		}
	} else {
		c.occupied++
	}
	s[vi] = way{addr: addr, valid: true, dirty: dirty, stamp: c.clock}
	if dirty {
		c.dirtyLines++
	}
	c.refreshSummary(si)
	return victim
}

// Invalidate drops addr if present and returns its previous state.
func (c *Cache) Invalidate(addr uint64) (was Line) {
	si := c.setOf(addr)
	if w := c.findIn(si, addr); w != nil {
		was = Line{Addr: w.addr, Valid: true, Dirty: w.dirty}
		*w = way{}
		c.occupied--
		if was.Dirty {
			c.dirtyLines--
		}
		c.refreshSummary(si)
	}
	return was
}

// MarkDirty sets the dirty bit of a present line; it reports whether the
// line was found.
func (c *Cache) MarkDirty(addr uint64) bool {
	si := c.setOf(addr)
	if w := c.findIn(si, addr); w != nil {
		if !w.dirty {
			w.dirty = true
			c.dirtyLines++
			c.refreshSummary(si)
		}
		return true
	}
	return false
}

// MarkClean clears the dirty bit of a present line (IR-DWB's final step);
// it reports whether the line was found.
func (c *Cache) MarkClean(addr uint64) bool {
	si := c.setOf(addr)
	if w := c.findIn(si, addr); w != nil {
		if w.dirty {
			w.dirty = false
			c.dirtyLines--
			c.refreshSummary(si)
		}
		return true
	}
	return false
}

// lruOf returns the LRU way index of set si, or -1 if the set has an
// invalid way (nothing to evict, so no LRU pressure).
func (c *Cache) lruOf(si int) int {
	s := c.set(si)
	vi := -1
	for i := range s {
		if !s[i].valid {
			return -1
		}
		if vi < 0 || s[i].stamp < s[vi].stamp {
			vi = i
		}
	}
	return vi
}

// DirtyLRU returns the address of set si's LRU line if that line is dirty.
// This is the predicate IR-DWB's Ptr register evaluates per set.
func (c *Cache) DirtyLRU(si int) (addr uint64, ok bool) {
	vi := c.lruOf(si)
	if vi < 0 {
		return 0, false
	}
	w := c.set(si)[vi]
	if !w.dirty {
		return 0, false
	}
	return w.addr, true
}

// LRU returns the address of set si's LRU line regardless of dirtiness —
// the candidate predicate of the proactive-remapping extension (Section
// IV-D future work), where under LLC-D every eviction needs PosMap work.
func (c *Cache) LRU(si int) (addr uint64, ok bool) {
	vi := c.lruOf(si)
	if vi < 0 {
		return 0, false
	}
	return c.set(si)[vi].addr, true
}

// IsLRU reports whether addr is still the LRU line of its (full) set.
func (c *Cache) IsLRU(addr uint64) bool {
	vi := c.lruOf(c.setOf(addr))
	return vi >= 0 && c.set(c.setOf(addr))[vi].addr == addr
}

// IsDirtyLRU reports whether addr is still the dirty LRU line of its set —
// the abort condition of an in-flight IR-DWB early write-back.
func (c *Cache) IsDirtyLRU(addr uint64) bool {
	si := c.setOf(addr)
	vi := c.lruOf(si)
	if vi < 0 {
		return false
	}
	w := c.set(si)[vi]
	return w.addr == addr && w.dirty
}

// Occupancy returns the number of valid lines. O(1): the count is
// maintained by Insert and Invalidate.
func (c *Cache) Occupancy() int { return c.occupied }

// DirtyCount returns the number of dirty lines. O(1): the count is
// maintained by every mutator that flips a dirty bit.
func (c *Cache) DirtyCount() int { return c.dirtyLines }

// Stats are hit/miss/eviction counters.
type Stats struct {
	Hits, Misses, Evictions, DirtyEvictions uint64
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, DirtyEvictions: c.dirtyEvictions}
}

// MissRate returns misses / (hits+misses), or 0 when idle.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}
