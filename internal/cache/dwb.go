package cache

// DWBScanner implements the candidate-search half of IR-DWB (Fig 9): a Ptr
// register that round-robins across LLC sets looking for a dirty LRU entry
// while the LLC is idle. If a full sweep finds nothing, the search pauses
// for 1000 cycles and restarts from a random set, exactly as the paper's
// small state machine (borrowed from autonomous eager writeback) does.
type DWBScanner struct {
	c          *Cache
	cursor     int
	pauseUntil uint64
	randSet    func() int
	// anyLRU widens the predicate from dirty-LRU to any LRU line (the
	// proactive-remapping extension, where clean LLC-D lines also need
	// PosMap work at eviction).
	anyLRU bool

	// Candidates found / sweeps that came up empty, for diagnostics.
	Found, EmptySweeps uint64
}

// scanPause is the paper's 1000-cycle back-off after an empty sweep.
const scanPause = 1000

// NewDWBScanner attaches a scanner to c. randSet supplies the random restart
// set; it must return values in [0, c.Sets()).
func NewDWBScanner(c *Cache, randSet func() int) *DWBScanner {
	return &DWBScanner{c: c, randSet: randSet}
}

// NewLRUScanner is NewDWBScanner with the any-LRU predicate.
func NewLRUScanner(c *Cache, randSet func() int) *DWBScanner {
	return &DWBScanner{c: c, randSet: randSet, anyLRU: true}
}

// FindCandidate returns the dirty LRU entry of the first set at or after the
// round-robin cursor, advancing the cursor past it. During the pause window
// after an empty sweep it reports no candidate.
func (s *DWBScanner) FindCandidate(now uint64) (addr uint64, ok bool) {
	if now < s.pauseUntil {
		return 0, false
	}
	for i := 0; i < s.c.Sets(); i++ {
		si := (s.cursor + i) % s.c.Sets()
		var a uint64
		var ok bool
		if s.anyLRU {
			a, ok = s.c.LRU(si)
		} else {
			a, ok = s.c.DirtyLRU(si)
		}
		if ok {
			s.cursor = (si + 1) % s.c.Sets()
			s.Found++
			return a, true
		}
	}
	s.EmptySweeps++
	s.pauseUntil = now + scanPause
	s.cursor = s.randSet()
	return 0, false
}
