package cache

import (
	"fmt"
	"math/bits"
)

// DWBScanner implements the candidate-search half of IR-DWB (Fig 9): a Ptr
// register that round-robins across LLC sets looking for a dirty LRU entry
// while the LLC is idle. If a full sweep finds nothing, the search pauses
// for 1000 cycles and restarts from a random set, exactly as the paper's
// small state machine (borrowed from autonomous eager writeback) does.
//
// Since PR 4 the search itself is a word-wise scan of the cache's per-set
// summary bitmaps (see Cache.EnableLRUTracking) instead of an O(sets)
// set-by-set sweep: the candidate returned, the cursor advance and the
// pause/restart behavior are identical to the historical sweep, which is
// retained below (findCandidateSweep) as the differential-test oracle.
type DWBScanner struct {
	c          *Cache
	cursor     int
	pauseUntil uint64
	randSet    func() int
	// anyLRU widens the predicate from dirty-LRU to any LRU line (the
	// proactive-remapping extension, where clean LLC-D lines also need
	// PosMap work at eviction).
	anyLRU bool

	// Candidates found / sweeps that came up empty, for diagnostics.
	Found, EmptySweeps uint64
}

// scanPause is the paper's 1000-cycle back-off after an empty sweep.
const scanPause = 1000

// NewDWBScanner attaches a scanner to c. randSet supplies the random restart
// set; it must return values in [0, c.Sets()).
func NewDWBScanner(c *Cache, randSet func() int) *DWBScanner {
	c.EnableLRUTracking()
	return &DWBScanner{c: c, randSet: randSet}
}

// NewLRUScanner is NewDWBScanner with the any-LRU predicate.
func NewLRUScanner(c *Cache, randSet func() int) *DWBScanner {
	c.EnableLRUTracking()
	return &DWBScanner{c: c, randSet: randSet, anyLRU: true}
}

// FindCandidate returns the dirty LRU entry of the first set at or after the
// round-robin cursor, advancing the cursor past it. During the pause window
// after an empty sweep it reports no candidate.
func (s *DWBScanner) FindCandidate(now uint64) (addr uint64, ok bool) {
	if now < s.pauseUntil {
		return 0, false
	}
	bm := s.c.dirtySummary
	if s.anyLRU {
		bm = s.c.lruSummary
	}
	if si, found := scanBitmapFrom(bm, s.cursor); found {
		if s.anyLRU {
			addr, _ = s.c.LRU(si)
		} else {
			addr, _ = s.c.DirtyLRU(si)
		}
		s.cursor = si + 1
		if s.cursor == s.c.sets {
			s.cursor = 0
		}
		s.Found++
		return addr, true
	}
	s.EmptySweeps++
	s.pauseUntil = now + scanPause
	s.cursor = s.restartSet()
	return 0, false
}

// restartSet draws the post-empty-sweep restart set, validating randSet's
// contract so a buggy supplier fails loudly instead of indexing (or
// bit-scanning) out of range on some later call.
func (s *DWBScanner) restartSet() int {
	si := s.randSet()
	if si < 0 || si >= s.c.sets {
		panic(fmt.Sprintf("cache: DWBScanner randSet returned %d, want [0,%d)",
			si, s.c.sets))
	}
	return si
}

// scanBitmapFrom returns the index of the first set bit at or after `from`,
// wrapping once past the end — the bitmap analogue of the round-robin
// sweep. Bits above the set count are never set (refreshSummary only writes
// bits < sets), so no tail masking is needed.
func scanBitmapFrom(bm []uint64, from int) (int, bool) {
	// [from, end)
	w := from >> 6
	word := bm[w] &^ (uint64(1)<<uint(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 | bits.TrailingZeros64(word), true
		}
		w++
		if w == len(bm) {
			break
		}
		word = bm[w]
	}
	// wrap: [0, from)
	limW := from >> 6
	for w = 0; w <= limW; w++ {
		word = bm[w]
		if w == limW {
			word &= uint64(1)<<uint(from&63) - 1
		}
		if word != 0 {
			return w<<6 | bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// findCandidateSweep is the historical O(sets) implementation, retained
// verbatim (modulo the restart validation) as the oracle for
// TestDWBScannerDifferential: state transitions must match FindCandidate's
// exactly on any cache/op sequence.
func (s *DWBScanner) findCandidateSweep(now uint64) (addr uint64, ok bool) {
	if now < s.pauseUntil {
		return 0, false
	}
	for i := 0; i < s.c.Sets(); i++ {
		si := (s.cursor + i) % s.c.Sets()
		var a uint64
		var ok bool
		if s.anyLRU {
			a, ok = s.c.LRU(si)
		} else {
			a, ok = s.c.DirtyLRU(si)
		}
		if ok {
			s.cursor = (si + 1) % s.c.Sets()
			s.Found++
			return a, true
		}
	}
	s.EmptySweeps++
	s.pauseUntil = now + scanPause
	s.cursor = s.restartSet()
	return 0, false
}
