package cache

import (
	"testing"

	"iroram/internal/rng"
)

// applyRandomOp mutates c with one random cache operation drawn from r.
// Both caches in a differential pair receive the same stream.
func applyRandomOp(c *Cache, r *rng.Source, addrSpace uint64) {
	a := r.Uint64n(addrSpace)
	switch r.Intn(6) {
	case 0, 1:
		if !c.Access(a, r.Bool(0.5)) {
			c.Insert(a, r.Bool(0.5))
		}
	case 2:
		c.Insert(a, r.Bool(0.3))
	case 3:
		c.MarkClean(a)
	case 4:
		c.MarkDirty(a)
	default:
		c.Invalidate(a)
	}
}

// TestDWBScannerDifferential replays identical op streams into two caches —
// one scanned by the bitmap FindCandidate, one by the retained historical
// sweep (findCandidateSweep) — and requires identical candidates, cursor
// positions, pause windows and counters at every step. Both the dirty-LRU
// and the any-LRU predicates are covered, over geometries that exercise
// partial bitmap words (sets < 64), exact words (sets == 64) and multiple
// words (sets > 64).
func TestDWBScannerDifferential(t *testing.T) {
	geometries := []struct{ sets, ways int }{
		{4, 2}, {16, 4}, {64, 2}, {128, 4}, {256, 8},
	}
	for _, anyLRU := range []bool{false, true} {
		for _, g := range geometries {
			newScan := NewDWBScanner
			if anyLRU {
				newScan = NewLRUScanner
			}
			cLive, cRef := New(g.sets, g.ways), New(g.sets, g.ways)
			// Identical restart RNGs keep the post-empty-sweep cursors in
			// lockstep.
			rLive, rRef := rng.New(7), rng.New(7)
			sLive := newScan(cLive, func() int { return rLive.Intn(g.sets) })
			sRef := newScan(cRef, func() int { return rRef.Intn(g.sets) })

			// One shared op stream drives both caches so their line states
			// are identical at every FindCandidate call.
			ops := rng.New(uint64(g.sets)*31 + uint64(g.ways))
			addrSpace := uint64(g.sets * g.ways * 4)
			now := uint64(0)
			for i := 0; i < 20000; i++ {
				a := ops.Uint64n(addrSpace)
				op := ops.Intn(6)
				dirty := ops.Bool(0.5)
				for _, c := range []*Cache{cLive, cRef} {
					switch op {
					case 0, 1:
						if !c.Access(a, dirty) {
							c.Insert(a, dirty)
						}
					case 2:
						c.Insert(a, dirty)
					case 3:
						c.MarkClean(a)
					case 4:
						c.MarkDirty(a)
					default:
						c.Invalidate(a)
					}
				}
				now += uint64(ops.Intn(400))
				gotA, gotOK := sLive.FindCandidate(now)
				wantA, wantOK := sRef.findCandidateSweep(now)
				if gotA != wantA || gotOK != wantOK {
					t.Fatalf("%v sets=%d step %d: FindCandidate = %d,%v sweep oracle = %d,%v",
						anyLRU, g.sets, i, gotA, gotOK, wantA, wantOK)
				}
				if sLive.cursor != sRef.cursor || sLive.pauseUntil != sRef.pauseUntil {
					t.Fatalf("%v sets=%d step %d: scanner state diverged: cursor %d/%d pause %d/%d",
						anyLRU, g.sets, i, sLive.cursor, sRef.cursor,
						sLive.pauseUntil, sRef.pauseUntil)
				}
				if sLive.Found != sRef.Found || sLive.EmptySweeps != sRef.EmptySweeps {
					t.Fatalf("%v sets=%d step %d: counters diverged: found %d/%d empty %d/%d",
						anyLRU, g.sets, i, sLive.Found, sRef.Found,
						sLive.EmptySweeps, sRef.EmptySweeps)
				}
			}
		}
	}
}

// TestSummaryBitmapsMatchPredicates checks, after a random workload, that
// every summary bit equals the predicate it caches (set-full for lruSummary,
// dirty-LRU for dirtySummary) recomputed from scratch.
func TestSummaryBitmapsMatchPredicates(t *testing.T) {
	c := New(48, 4) // partial final bitmap word
	c.EnableLRUTracking()
	r := rng.New(5)
	for i := 0; i < 30000; i++ {
		applyRandomOp(c, r, 48*4*3)
	}
	for si := 0; si < c.sets; si++ {
		w, bit := si>>6, uint64(1)<<uint(si&63)
		_, wantLRU := c.LRU(si)
		if got := c.lruSummary[w]&bit != 0; got != wantLRU {
			t.Errorf("set %d: lruSummary bit %v, predicate %v", si, got, wantLRU)
		}
		_, wantDirty := c.DirtyLRU(si)
		if got := c.dirtySummary[w]&bit != 0; got != wantDirty {
			t.Errorf("set %d: dirtySummary bit %v, predicate %v", si, got, wantDirty)
		}
	}
	// Tail bits past the set count must stay zero (scanBitmapFrom relies
	// on it).
	if tail := c.lruSummary[0] >> 48; tail != 0 {
		t.Errorf("lruSummary tail bits set: %#x", tail)
	}
	if tail := c.dirtySummary[0] >> 48; tail != 0 {
		t.Errorf("dirtySummary tail bits set: %#x", tail)
	}
}

// TestCountersMatchScan pins the O(1) Occupancy/DirtyCount counters against
// a full-line recount after a random workload.
func TestCountersMatchScan(t *testing.T) {
	c := New(16, 4)
	r := rng.New(9)
	for i := 0; i < 30000; i++ {
		applyRandomOp(c, r, 512)
		if i%1000 != 0 {
			continue
		}
		occ, dirty := 0, 0
		for j := range c.lines {
			if c.lines[j].valid {
				occ++
				if c.lines[j].dirty {
					dirty++
				}
			}
		}
		if c.Occupancy() != occ || c.DirtyCount() != dirty {
			t.Fatalf("step %d: counters %d/%d, scan %d/%d",
				i, c.Occupancy(), c.DirtyCount(), occ, dirty)
		}
	}
}

// TestScannerRandSetValidation: an out-of-range restart set must fail
// loudly, not index out of range later.
func TestScannerRandSetValidation(t *testing.T) {
	c := New(4, 1)
	s := NewDWBScanner(c, func() int { return 4 }) // out of [0,4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range randSet")
		}
	}()
	s.FindCandidate(0) // empty cache -> empty sweep -> restart draw
}

// TestScanBitmapFrom covers the wrap and word-boundary cases directly.
func TestScanBitmapFrom(t *testing.T) {
	bm := make([]uint64, 2) // 128 sets
	set := func(si int) { bm[si>>6] |= 1 << uint(si&63) }
	clearAll := func() { bm[0], bm[1] = 0, 0 }

	if _, ok := scanBitmapFrom(bm, 17); ok {
		t.Fatal("empty bitmap yielded a hit")
	}
	set(5)
	if si, ok := scanBitmapFrom(bm, 0); !ok || si != 5 {
		t.Fatalf("got %d,%v want 5,true", si, ok)
	}
	if si, ok := scanBitmapFrom(bm, 5); !ok || si != 5 {
		t.Fatalf("from==bit: got %d,%v want 5,true", si, ok)
	}
	if si, ok := scanBitmapFrom(bm, 6); !ok || si != 5 {
		t.Fatalf("wrap: got %d,%v want 5,true", si, ok)
	}
	clearAll()
	set(127)
	if si, ok := scanBitmapFrom(bm, 64); !ok || si != 127 {
		t.Fatalf("second word: got %d,%v want 127,true", si, ok)
	}
	if si, ok := scanBitmapFrom(bm, 0); !ok || si != 127 {
		t.Fatalf("full scan: got %d,%v want 127,true", si, ok)
	}
	set(3)
	if si, ok := scanBitmapFrom(bm, 100); !ok || si != 127 {
		t.Fatalf("prefer at-or-after cursor: got %d,%v want 127,true", si, ok)
	}
	if si, ok := scanBitmapFrom(bm, 4); !ok || si != 127 {
		t.Fatalf("skip below-cursor bit: got %d,%v want 127,true", si, ok)
	}
}
