package stash

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

// TestAddrTableDifferential drives a long randomized Put/Get/Delete stream
// through the open-addressed table and a shadow Go map in lockstep. The
// key space is kept narrow relative to the op count so probe chains
// overlap hard and backward-shift deletion is exercised in every shape
// (head, middle, wrapped-around tail of a chain).
func TestAddrTableDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99} {
		r := rng.New(seed)
		tab := NewAddrTable(32)
		shadow := map[block.ID]uint32{}
		for op := 0; op < 60000; op++ {
			id := block.ID(r.Uint64n(300))
			switch {
			case r.Bool(0.45):
				v := uint32(r.Uint64n(1 << 30))
				tab.Put(id, v)
				shadow[id] = v
			case r.Bool(0.6):
				got, ok := tab.Get(id)
				want, wantOK := shadow[id]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("seed %d op %d: Get(%v) = %d,%v want %d,%v",
						seed, op, id, got, ok, want, wantOK)
				}
			default:
				if gotDel, wantDel := tab.Delete(id), hasKey(shadow, id); gotDel != wantDel {
					t.Fatalf("seed %d op %d: Delete(%v) = %v want %v",
						seed, op, id, gotDel, wantDel)
				}
				delete(shadow, id)
			}
			if tab.Len() != len(shadow) {
				t.Fatalf("seed %d op %d: Len %d want %d", seed, op, tab.Len(), len(shadow))
			}
		}
		// Final full sweep: every shadow key resolves, absent keys miss.
		for id, want := range shadow {
			if got, ok := tab.Get(id); !ok || got != want {
				t.Fatalf("seed %d final: Get(%v) = %d,%v want %d,true", seed, id, got, ok, want)
			}
		}
		for id := block.ID(300); id < 400; id++ {
			if _, ok := tab.Get(id); ok {
				t.Fatalf("seed %d: phantom key %v", seed, id)
			}
		}
	}
}

func hasKey(m map[block.ID]uint32, id block.ID) bool {
	_, ok := m[id]
	return ok
}

// TestAddrTableGrowth checks the transient-overflow path: a table pre-sized
// for a small capacity hint absorbs far more entries than the hint by
// doubling, and every entry survives each rehash.
func TestAddrTableGrowth(t *testing.T) {
	tab := NewAddrTable(4) // 16 slots; grow bound 13
	const n = 5000
	for i := 0; i < n; i++ {
		tab.Put(block.ID(i*7), uint32(i))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := tab.Get(block.ID(i * 7)); !ok || v != uint32(i) {
			t.Fatalf("post-growth Get(%d) = %d,%v want %d,true", i*7, v, ok, i)
		}
	}
	// Shrink back down by deleting everything; the table must end empty
	// and still functional.
	for i := 0; i < n; i++ {
		if !tab.Delete(block.ID(i * 7)) {
			t.Fatalf("Delete(%d) reported absent", i*7)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tab.Len())
	}
	tab.Put(7, 42)
	if v, ok := tab.Get(7); !ok || v != 42 {
		t.Fatal("table unusable after full drain")
	}
}

// TestFStashIndexDifferential exercises the stash through its public
// surface against a shadow map[block.ID]block.Leaf, so the open-addressed
// index is validated where it actually runs: Insert/Lookup/Remove/SetLeaf
// with swap-with-last slot churn, at occupancies well past the capacity
// hint (transient overflow).
func TestFStashIndexDifferential(t *testing.T) {
	r := rng.New(17)
	s := NewFStash(8) // small hint so the index grows under load
	shadow := map[block.ID]block.Leaf{}
	for op := 0; op < 40000; op++ {
		id := block.ID(r.Uint64n(500))
		switch {
		case r.Bool(0.5):
			leaf := block.Leaf(r.Uint64n(1 << 20))
			s.Insert(tree.Entry{Addr: id, Leaf: leaf})
			shadow[id] = leaf
		case r.Bool(0.5):
			got, ok := s.Lookup(id)
			want, wantOK := shadow[id]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%v) = %v,%v want %v,%v", op, id, got, ok, want, wantOK)
			}
		case r.Bool(0.5):
			_, wantOK := shadow[id]
			if got := s.Remove(id); got != wantOK {
				t.Fatalf("op %d: Remove(%v) = %v want %v", op, id, got, wantOK)
			}
			delete(shadow, id)
		default:
			leaf := block.Leaf(r.Uint64n(1 << 20))
			_, wantOK := shadow[id]
			if got := s.SetLeaf(id, leaf); got != wantOK {
				t.Fatalf("op %d: SetLeaf(%v) = %v want %v", op, id, got, wantOK)
			}
			if wantOK {
				shadow[id] = leaf
			}
		}
		if s.Len() != len(shadow) {
			t.Fatalf("op %d: Len %d want %d", op, s.Len(), len(shadow))
		}
	}
	seen := map[block.ID]block.Leaf{}
	s.Each(func(e tree.Entry) { seen[e.Addr] = e.Leaf })
	if len(seen) != len(shadow) {
		t.Fatalf("iteration saw %d entries, shadow has %d", len(seen), len(shadow))
	}
	for id, want := range shadow {
		if seen[id] != want {
			t.Fatalf("entry %v: leaf %v want %v", id, seen[id], want)
		}
	}
}

// TestAddrTableZeroValue pins that a stored zero value is distinguishable
// from absence (the F-Stash stores slot 0 as a value).
func TestAddrTableZeroValue(t *testing.T) {
	tab := NewAddrTable(8)
	tab.Put(5, 0)
	if v, ok := tab.Get(5); !ok || v != 0 {
		t.Fatalf("Get(5) = %d,%v want 0,true", v, ok)
	}
	if _, ok := tab.Get(6); ok {
		t.Fatal("absent key reported present")
	}
}

// TestAddrTableRejectsInvalidKey: block.Invalid is the empty-slot sentinel.
func TestAddrTableRejectsInvalidKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on block.Invalid key")
		}
	}()
	NewAddrTable(8).Put(block.Invalid, 1)
}
