// Package stash implements the on-chip block holding structures of the ORAM
// controller: the classic fully-associative F-Stash, the baseline's
// dedicated tree-top cache, and the IR-Stash design (a double-indexed
// set-associative S-Stash plus the TT pointer table) of Section IV-C.
package stash

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/tree"
)

// FStash is the traditional fully-associative stash. Storage is unbounded —
// Path ORAM lets the stash grow transiently and relies on background
// eviction to drain it (Ren et al.) — but Capacity records the provisioned
// size so the controller can detect pressure.
type FStash struct {
	capacity int
	items    []tree.Entry
	index    *AddrTable
	// HighWater tracks the maximum occupancy ever reached.
	HighWater int
}

// NewFStash returns an empty stash provisioned for capacity blocks. The
// index is an open-addressed AddrTable pre-sized for that capacity, so
// steady-state inserts never grow it (Path ORAM lets occupancy exceed
// capacity transiently; the table doubles then, and only then). All
// iteration happens over the items slice, so the index never influences
// ordering — determinism is untouched by the table swap.
func NewFStash(capacity int) *FStash {
	return &FStash{capacity: capacity, index: NewAddrTable(capacity)}
}

// Capacity returns the provisioned size.
func (s *FStash) Capacity() int { return s.capacity }

// Len returns the current occupancy.
func (s *FStash) Len() int { return len(s.items) }

// Overfull reports whether occupancy exceeds the given threshold.
func (s *FStash) Overfull(threshold int) bool { return len(s.items) > threshold }

// Insert adds or updates a block. Duplicate inserts update the leaf in
// place (the block was remapped while stashed).
func (s *FStash) Insert(e tree.Entry) {
	if i, ok := s.index.GetOrPut(e.Addr, uint32(len(s.items))); ok {
		s.items[i] = e
		return
	}
	s.items = append(s.items, e)
	if len(s.items) > s.HighWater {
		s.HighWater = len(s.items)
	}
}

// Lookup returns the leaf of addr if stashed.
func (s *FStash) Lookup(addr block.ID) (block.Leaf, bool) {
	if i, ok := s.index.Get(addr); ok {
		return s.items[i].Leaf, true
	}
	return block.NoLeaf, false
}

// Remove deletes addr, reporting whether it was present. Removal is O(1)
// via swap-with-last, keeping iteration deterministic for a given op
// sequence.
func (s *FStash) Remove(addr block.ID) bool {
	i, ok := s.index.Get(addr)
	if !ok {
		return false
	}
	s.removeAt(int(i))
	return true
}

// removeAt deletes the entry in storage slot i by swap-with-last. Callers
// that already hold the slot (the scan loops below) use it directly instead
// of paying a second index lookup through Remove.
func (s *FStash) removeAt(i int) {
	addr := s.items[i].Addr
	last := len(s.items) - 1
	if i != last {
		s.items[i] = s.items[last]
		s.index.Put(s.items[i].Addr, uint32(i))
	}
	s.items = s.items[:last]
	s.index.Delete(addr)
}

// SetLeaf updates the leaf of a stashed block (remap while stashed); it
// reports whether the block was found.
func (s *FStash) SetLeaf(addr block.ID, leaf block.Leaf) bool {
	if i, ok := s.index.Get(addr); ok {
		s.items[i].Leaf = leaf
		return true
	}
	return false
}

// Each calls fn for every stashed entry in storage order. fn must not
// mutate the stash.
func (s *FStash) Each(fn func(tree.Entry)) {
	for _, e := range s.items {
		fn(e)
	}
}

// EachUntil calls fn for stashed entries in storage order until fn returns
// false. It lets scans that only need a prefix (invariant checks hunting the
// first violation) stop early instead of visiting every entry. fn must not
// mutate the stash.
func (s *FStash) EachUntil(fn func(tree.Entry) bool) {
	for _, e := range s.items {
		if !fn(e) {
			return
		}
	}
}

// TakeForBucket removes and returns up to max blocks whose leaves allow
// placement in the bucket that the path of leaf crosses at level — the
// per-level write-phase selection scan (retained as the reference eviction;
// the controller hot path uses TakeForPath). accept lets the caller veto
// candidates (the IR-Stash set-conflict rule); pass nil to accept all.
// Selected entries are appended to dst (may be nil) and returned.
func (s *FStash) TakeForBucket(leaf block.Leaf, level, levels, max int,
	accept func(tree.Entry) bool, dst []tree.Entry) []tree.Entry {
	out := dst
	if max <= 0 {
		return out
	}
	taken := 0
	for i := 0; i < len(s.items) && taken < max; {
		e := s.items[i]
		if tree.SameSubtree(leaf, e.Leaf, level, levels) && (accept == nil || accept(e)) {
			out = append(out, e)
			taken++
			s.removeAt(i) // swaps the last entry into slot i; do not advance
			continue
		}
		i++
	}
	return out
}

// TakeForPath is the single-pass half of the deepest-first eviction
// (Stefanov et al.): one walk over the stash removes every entry placeable
// on the path of leaf at level lowLevel or deeper and appends it to
// perLevel[d], where d is the entry's deepest placeable level
// (tree.DeepestLevel). The caller then fills buckets deepest-first, letting
// unplaced entries spill toward the root — O(stash + path) in total, versus
// the O(levels × stash) of running TakeForBucket once per level.
//
// perLevel must have at least levels slices; slices are appended to, so the
// caller resets and reuses them across paths to stay allocation-free.
// Entries land in the deterministic order the removal scan visits them
// (storage order with swap-with-last dynamics), which keeps repeated runs
// byte-identical.
func (s *FStash) TakeForPath(leaf block.Leaf, lowLevel, levels int, perLevel [][]tree.Entry) {
	for i := 0; i < len(s.items); {
		e := s.items[i]
		d := tree.DeepestLevel(leaf, e.Leaf, levels)
		if d < lowLevel {
			i++
			continue
		}
		perLevel[d] = append(perLevel[d], e)
		s.removeAt(i) // swaps the last entry into slot i; do not advance
	}
}

// DrainForPath is TakeForPath specialized to lowLevel == 0, where the
// removal scan takes every entry: it drains the whole stash plus the
// caller's just-gathered extra entries into perLevel, visiting them in
// exactly the order TakeForPath would have had extra first been Inserted —
// storage slot 0, then the combined tail in reverse (the swap-with-last
// dynamics of a scan that never advances past slot 0) — without paying the
// per-entry index maintenance of Insert followed by removeAt. extra
// entries must not already be stashed (the controller's a-block-lives-in-
// exactly-one-place invariant). HighWater advances as if the extra entries
// had been inserted first.
func (s *FStash) DrainForPath(leaf block.Leaf, levels int, perLevel [][]tree.Entry, extra []tree.Entry) {
	n := len(s.items)
	if hw := n + len(extra); hw > s.HighWater {
		s.HighWater = hw
	}
	first := 0
	if n > 0 {
		drainVisit(leaf, levels, perLevel, s.items[0])
	} else if len(extra) > 0 {
		drainVisit(leaf, levels, perLevel, extra[0])
		first = 1
	}
	for i := len(extra) - 1; i >= first; i-- {
		drainVisit(leaf, levels, perLevel, extra[i])
	}
	for i := n - 1; i >= 1; i-- {
		drainVisit(leaf, levels, perLevel, s.items[i])
	}
	for _, e := range s.items {
		s.index.Delete(e.Addr)
	}
	s.items = s.items[:0]
}

// drainVisit classifies one drained entry into its deepest placeable
// level. The gather walk may have marked extra entries with
// tree.GatherFlag; the flag is masked out of the leaf arithmetic but rides
// along on the appended entry for the write phase to consume.
func drainVisit(leaf block.Leaf, levels int, perLevel [][]tree.Entry, e tree.Entry) {
	d := tree.DeepestLevel(leaf, e.Leaf&^tree.GatherFlag, levels)
	perLevel[d] = append(perLevel[d], e)
}

func (s *FStash) String() string {
	return fmt.Sprintf("FStash{%d/%d}", len(s.items), s.capacity)
}
