// Package stash implements the on-chip block holding structures of the ORAM
// controller: the classic fully-associative F-Stash, the baseline's
// dedicated tree-top cache, and the IR-Stash design (a double-indexed
// set-associative S-Stash plus the TT pointer table) of Section IV-C.
package stash

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/tree"
)

// FStash is the traditional fully-associative stash. Storage is unbounded —
// Path ORAM lets the stash grow transiently and relies on background
// eviction to drain it (Ren et al.) — but Capacity records the provisioned
// size so the controller can detect pressure.
type FStash struct {
	capacity int
	items    []tree.Entry
	index    map[block.ID]int
	// HighWater tracks the maximum occupancy ever reached.
	HighWater int
}

// NewFStash returns an empty stash provisioned for capacity blocks.
func NewFStash(capacity int) *FStash {
	return &FStash{capacity: capacity, index: make(map[block.ID]int)}
}

// Capacity returns the provisioned size.
func (s *FStash) Capacity() int { return s.capacity }

// Len returns the current occupancy.
func (s *FStash) Len() int { return len(s.items) }

// Overfull reports whether occupancy exceeds the given threshold.
func (s *FStash) Overfull(threshold int) bool { return len(s.items) > threshold }

// Insert adds or updates a block. Duplicate inserts update the leaf in
// place (the block was remapped while stashed).
func (s *FStash) Insert(e tree.Entry) {
	if i, ok := s.index[e.Addr]; ok {
		s.items[i] = e
		return
	}
	s.index[e.Addr] = len(s.items)
	s.items = append(s.items, e)
	if len(s.items) > s.HighWater {
		s.HighWater = len(s.items)
	}
}

// Lookup returns the leaf of addr if stashed.
func (s *FStash) Lookup(addr block.ID) (block.Leaf, bool) {
	if i, ok := s.index[addr]; ok {
		return s.items[i].Leaf, true
	}
	return block.NoLeaf, false
}

// Remove deletes addr, reporting whether it was present. Removal is O(1)
// via swap-with-last, keeping iteration deterministic for a given op
// sequence.
func (s *FStash) Remove(addr block.ID) bool {
	i, ok := s.index[addr]
	if !ok {
		return false
	}
	last := len(s.items) - 1
	if i != last {
		s.items[i] = s.items[last]
		s.index[s.items[i].Addr] = i
	}
	s.items = s.items[:last]
	delete(s.index, addr)
	return true
}

// SetLeaf updates the leaf of a stashed block (remap while stashed); it
// reports whether the block was found.
func (s *FStash) SetLeaf(addr block.ID, leaf block.Leaf) bool {
	if i, ok := s.index[addr]; ok {
		s.items[i].Leaf = leaf
		return true
	}
	return false
}

// Each calls fn for every stashed entry in storage order. fn must not
// mutate the stash.
func (s *FStash) Each(fn func(tree.Entry)) {
	for _, e := range s.items {
		fn(e)
	}
}

// TakeForBucket removes and returns up to max blocks whose leaves allow
// placement in the bucket that the path of leaf crosses at level — the
// write-phase selection loop. accept lets the caller veto candidates (the
// IR-Stash set-conflict rule); pass nil to accept all.
func (s *FStash) TakeForBucket(leaf block.Leaf, level, levels, max int,
	accept func(tree.Entry) bool) []tree.Entry {
	if max <= 0 {
		return nil
	}
	var out []tree.Entry
	for i := 0; i < len(s.items) && len(out) < max; {
		e := s.items[i]
		if tree.SameSubtree(leaf, e.Leaf, level, levels) && (accept == nil || accept(e)) {
			out = append(out, e)
			s.Remove(e.Addr) // swaps; do not advance i
			continue
		}
		i++
	}
	return out
}

func (s *FStash) String() string {
	return fmt.Sprintf("FStash{%d/%d}", len(s.items), s.capacity)
}
