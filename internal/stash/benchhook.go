package stash

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

// TopCacheFindBenchmark is the body of BenchmarkTopCacheFind. It lives in
// the package (not a _test file) so cmd/benchjson snapshots the same code
// via testing.Benchmark; the root bench_test.go wraps it for `make bench`.
//
// One op is the tree-top lookup mix of a demand access: a hit Find, a miss
// Find, then a Remove+Fill churn of the hit block. The churn keeps the lazy
// address index accumulating garbage so its amortized in-place sweeps are
// inside the measurement — and, with the alloccheck gate, proves the index
// never grows in steady state.
func TopCacheFindBenchmark(b *testing.B) {
	o := config.Tiny().ORAM
	tc := NewTopCache(o.Levels, o.TopLevels, o.Z)
	r := rng.New(1)
	leaves := o.LeafCount()
	type resident struct {
		addr block.ID
		leaf block.Leaf
	}
	var pairs []resident
	var id block.ID
	// Load the top buckets the way the controller does: deepest level
	// first along random paths. A few thousand attempts leave every bucket
	// at or near capacity with the survivors' paths on record.
	for attempt := 0; attempt < 4096; attempt++ {
		leaf := block.Leaf(r.Uint64n(leaves))
		for l := o.TopLevels - 1; l >= 0; l-- {
			if tc.Fill(l, leaf, tree.Entry{Addr: id, Leaf: leaf}) {
				pairs = append(pairs, resident{id, leaf})
				id++
				break
			}
		}
	}
	absent := id // never filled: the guaranteed-miss probe
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		l, ok := tc.Find(p.addr, p.leaf)
		if !ok {
			b.Fatal("resident block not found")
		}
		if _, ok := tc.Find(absent, p.leaf); ok {
			b.Fatal("absent block found")
		}
		if !tc.Remove(p.addr, p.leaf) {
			b.Fatal("resident block not removed")
		}
		if !tc.Fill(l, p.leaf, tree.Entry{Addr: p.addr, Leaf: p.leaf}) {
			b.Fatal("refill refused")
		}
	}
}
