package stash

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"

	"iroram/internal/block"
	"iroram/internal/tree"
)

// IRStash is the double-indexed tree-top store of Section IV-C:
//
//   - S-Stash: a set-associative array of block entries, set-indexed by the
//     MD5 hash of the block address (the paper uses MD5 to spread addresses
//     evenly), so the LLC can search it directly — a hit needs no PosMap
//     access, no path access and no remap.
//   - TT: a small pointer table, one entry per tree-top bucket (heap coded
//     level by level exactly as in Fig 8b), whose per-bucket pointers
//     identify the S-Stash slots holding that bucket's blocks. TT lets the
//     ORAM controller traverse the on-chip path segment by tree position.
//
// A block therefore occupies one S-Stash slot and one TT pointer at a time.
// When the write phase cannot place a block because its S-Stash set is
// full, Fill refuses and the block stays in the F-Stash for a later round
// (the paper's conflict rule).
type IRStash struct {
	topLevels int
	levels    int
	z         []int
	sets      int
	ways      int
	slots     []sslot
	// tt[node] holds up to Z(level) pointers into slots; -1 means empty.
	tt       [][]int32
	occupied []uint64
	// Conflicts counts Fill refusals due to S-Stash set conflicts.
	Conflicts uint64
}

type sslot struct {
	addr  block.ID
	leaf  block.Leaf
	node  int32 // owning TT bucket, for reverse removal
	valid bool
}

// NewIRStash sizes the S-Stash to hold exactly the tree-top capacity
// (sum over top levels of 2^l * Z(l)) at the given associativity, rounding
// the set count up so capacity is never below the dedicated design's.
func NewIRStash(levels, topLevels int, z []int, ways int) *IRStash {
	if topLevels <= 0 || topLevels >= levels {
		panic(fmt.Sprintf("stash: topLevels %d out of (0,%d)", topLevels, levels))
	}
	if ways <= 0 {
		panic("stash: IR-Stash needs positive associativity")
	}
	capacity := 0
	for l := 0; l < topLevels; l++ {
		capacity += (1 << uint(l)) * z[l]
	}
	sets := (capacity + ways - 1) / ways
	s := &IRStash{
		topLevels: topLevels,
		levels:    levels,
		z:         append([]int(nil), z...),
		sets:      sets,
		ways:      ways,
		slots:     make([]sslot, sets*ways),
		tt:        make([][]int32, 1<<uint(topLevels)),
		occupied:  make([]uint64, topLevels),
	}
	for n := range s.tt {
		level := levelOfNode(n)
		if level >= 0 && level < topLevels {
			ptrs := make([]int32, z[level])
			for i := range ptrs {
				ptrs[i] = -1
			}
			s.tt[n] = ptrs
		}
	}
	return s
}

func levelOfNode(n int) int {
	if n == 0 {
		return -1 // code 0 is skipped, as in the paper
	}
	l := -1
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}

// setOf hashes addr with MD5 and maps it to an S-Stash set.
func (s *IRStash) setOf(addr block.ID) int {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(addr))
	sum := md5.Sum(buf[:])
	return int(binary.LittleEndian.Uint64(sum[:8]) % uint64(s.sets))
}

func (s *IRStash) node(level int, leaf block.Leaf) int {
	idx := uint64(leaf) >> (uint(s.levels-1) - uint(level))
	return (1 << uint(level)) + int(idx)
}

// LookupByAddr implements AddrIndex: the fast path for LLC requests.
func (s *IRStash) LookupByAddr(addr block.ID) (block.Leaf, bool) {
	base := s.setOf(addr) * s.ways
	for w := 0; w < s.ways; w++ {
		if sl := &s.slots[base+w]; sl.valid && sl.addr == addr {
			return sl.leaf, true
		}
	}
	return block.NoLeaf, false
}

// ReadPath implements TopStore: it drains the top buckets along leaf via
// the TT pointers.
func (s *IRStash) ReadPath(leaf block.Leaf, dst []tree.Entry) []tree.Entry {
	out := dst
	for l := 0; l < s.topLevels; l++ {
		n := s.node(l, leaf)
		for i, ptr := range s.tt[n] {
			if ptr < 0 {
				continue
			}
			sl := &s.slots[ptr]
			out = append(out, tree.Entry{Addr: sl.addr, Leaf: sl.leaf})
			sl.valid = false
			s.tt[n][i] = -1
			s.occupied[l]--
		}
	}
	return out
}

// ReadPathEach implements TopStore.
func (s *IRStash) ReadPathEach(leaf block.Leaf, visit func(tree.Entry, int)) {
	for l := 0; l < s.topLevels; l++ {
		n := s.node(l, leaf)
		for i, ptr := range s.tt[n] {
			if ptr < 0 {
				continue
			}
			sl := &s.slots[ptr]
			e := tree.Entry{Addr: sl.addr, Leaf: sl.leaf}
			sl.valid = false
			s.tt[n][i] = -1
			s.occupied[l]--
			visit(e, l)
		}
	}
}

// Fill implements TopStore. It refuses on bucket overflow or when the
// block's S-Stash set has no free way (counted in Conflicts).
func (s *IRStash) Fill(level int, leaf block.Leaf, e tree.Entry) bool {
	if !tree.SameSubtree(leaf, e.Leaf, level, s.levels) {
		panic(fmt.Sprintf("stash: block %v (leaf %d) misplaced at top level %d of path %d",
			e.Addr, e.Leaf, level, leaf))
	}
	n := s.node(level, leaf)
	ptrIdx := -1
	for i, ptr := range s.tt[n] {
		if ptr < 0 {
			ptrIdx = i
			break
		}
	}
	if ptrIdx < 0 {
		return false // bucket full
	}
	base := s.setOf(e.Addr) * s.ways
	for w := 0; w < s.ways; w++ {
		if sl := &s.slots[base+w]; !sl.valid {
			*sl = sslot{addr: e.Addr, leaf: e.Leaf, node: int32(n), valid: true}
			s.tt[n][ptrIdx] = int32(base + w)
			s.occupied[level]++
			return true
		}
	}
	s.Conflicts++
	return false
}

// Find implements TopStore via the TT walk, mirroring how the controller
// reads the on-chip path segment.
func (s *IRStash) Find(addr block.ID, leaf block.Leaf) (int, bool) {
	for l := 0; l < s.topLevels; l++ {
		for _, ptr := range s.tt[s.node(l, leaf)] {
			if ptr >= 0 && s.slots[ptr].addr == addr {
				return l, true
			}
		}
	}
	return 0, false
}

// Remove implements TopStore.
func (s *IRStash) Remove(addr block.ID, leaf block.Leaf) bool {
	for l := 0; l < s.topLevels; l++ {
		n := s.node(l, leaf)
		for i, ptr := range s.tt[n] {
			if ptr >= 0 && s.slots[ptr].addr == addr {
				s.slots[ptr].valid = false
				s.tt[n][i] = -1
				s.occupied[l]--
				return true
			}
		}
	}
	return false
}

// RemoveByAddr deletes addr found through the address index (used when an
// S-Stash-resident block is invalidated, e.g. by LLC-D takeover).
func (s *IRStash) RemoveByAddr(addr block.ID) bool {
	base := s.setOf(addr) * s.ways
	for w := 0; w < s.ways; w++ {
		sl := &s.slots[base+w]
		if sl.valid && sl.addr == addr {
			for i, ptr := range s.tt[sl.node] {
				if ptr == int32(base+w) {
					s.tt[sl.node][i] = -1
					break
				}
			}
			s.occupied[levelOfNode(int(sl.node))]--
			sl.valid = false
			return true
		}
	}
	return false
}

// OccupiedAt implements TopStore.
func (s *IRStash) OccupiedAt(level int) uint64 { return s.occupied[level] }

// CapacityAt implements TopStore.
func (s *IRStash) CapacityAt(level int) uint64 {
	return (uint64(1) << uint(level)) * uint64(s.z[level])
}

// Len implements TopStore.
func (s *IRStash) Len() int {
	n := 0
	for _, o := range s.occupied {
		n += int(o)
	}
	return n
}

// TTBytes returns the TT table size in bytes using the paper's 12-bit
// pointer encoding ((2^t - 1) buckets x Z pointers x 12 bits) — 6 KB for
// the Table I geometry, the space-overhead number of Section VI-F.
func (s *IRStash) TTBytes() int {
	bits := 0
	for l := 0; l < s.topLevels; l++ {
		bits += (1 << uint(l)) * s.z[l] * 12
	}
	return bits / 8
}
