package stash

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

// TestTakeForPathClassifies checks the single-pass scan against the
// definition: every entry placeable at lowLevel or deeper is removed and
// filed under exactly its deepest placeable level; shallower entries stay.
func TestTakeForPathClassifies(t *testing.T) {
	const levels = 6
	leaves := uint64(1) << (levels - 1)
	r := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		s := NewFStash(64)
		n := int(r.Uint64n(40))
		entries := make([]tree.Entry, 0, n)
		for i := 0; i < n; i++ {
			e := tree.Entry{Addr: block.ID(i), Leaf: block.Leaf(r.Uint64n(leaves))}
			entries = append(entries, e)
			s.Insert(e)
		}
		pathLeaf := block.Leaf(r.Uint64n(leaves))
		lowLevel := int(r.Uint64n(levels))

		perLevel := make([][]tree.Entry, levels)
		s.TakeForPath(pathLeaf, lowLevel, levels, perLevel)

		taken := 0
		for l, list := range perLevel {
			for _, e := range list {
				taken++
				if d := tree.DeepestLevel(pathLeaf, e.Leaf, levels); d != l {
					t.Fatalf("entry %v (leaf %d) filed at level %d, deepest placeable is %d",
						e.Addr, e.Leaf, l, d)
				}
				if l < lowLevel {
					t.Fatalf("entry %v filed below lowLevel %d", e.Addr, lowLevel)
				}
				if _, still := s.Lookup(e.Addr); still {
					t.Fatalf("taken entry %v still stashed", e.Addr)
				}
			}
		}
		for _, e := range entries {
			if d := tree.DeepestLevel(pathLeaf, e.Leaf, levels); d < lowLevel {
				if _, still := s.Lookup(e.Addr); !still {
					t.Fatalf("unplaceable entry %v (deepest %d < lowLevel %d) was removed",
						e.Addr, d, lowLevel)
				}
			}
		}
		if taken+s.Len() != n {
			t.Fatalf("entries lost: took %d, %d remain, started with %d", taken, s.Len(), n)
		}
	}
}

// TestTakeForPathReusesLists pins the zero-allocation contract: reused
// per-level slices are appended to, so the caller's reset-and-reuse pattern
// must see only this call's entries.
func TestTakeForPathReusesLists(t *testing.T) {
	const levels = 4
	s := NewFStash(8)
	s.Insert(tree.Entry{Addr: 1, Leaf: 7})
	perLevel := make([][]tree.Entry, levels)
	perLevel[levels-1] = append(perLevel[levels-1], tree.Entry{Addr: 99, Leaf: 0})
	perLevel[levels-1] = perLevel[levels-1][:0] // caller reset, stale backing
	s.TakeForPath(7, 0, levels, perLevel)
	if len(perLevel[levels-1]) != 1 || perLevel[levels-1][0].Addr != 1 {
		t.Fatalf("perLevel[leaf] = %v, want exactly block 1", perLevel[levels-1])
	}
}

// TestEachUntilStopsEarly verifies the early-exit contract used by the
// controller's invariant checker.
func TestEachUntilStopsEarly(t *testing.T) {
	s := NewFStash(8)
	for i := 0; i < 5; i++ {
		s.Insert(tree.Entry{Addr: block.ID(i), Leaf: 0})
	}
	visited := 0
	s.EachUntil(func(tree.Entry) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d entries, want 3", visited)
	}
	visited = 0
	s.EachUntil(func(tree.Entry) bool { visited++; return true })
	if visited != 5 {
		t.Fatalf("full walk visited %d entries, want 5", visited)
	}
}

// TestTakeForBucketAppendsToDst pins the buffered contract: selections are
// appended behind whatever dst already holds.
func TestTakeForBucketAppendsToDst(t *testing.T) {
	const levels = 4
	s := NewFStash(8)
	s.Insert(tree.Entry{Addr: 1, Leaf: 5})
	dst := []tree.Entry{{Addr: 42, Leaf: 1}}
	out := s.TakeForBucket(5, levels-1, levels, 4, nil, dst)
	if len(out) != 2 || out[0].Addr != 42 || out[1].Addr != 1 {
		t.Fatalf("TakeForBucket dst contract broken: %v", out)
	}
	if s.Len() != 0 {
		t.Fatalf("selected entry not removed, Len = %d", s.Len())
	}
}
