package stash

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

// shadowTop is the historical per-node-slice tree-top cache retained as the
// differential oracle for the SoA + lazy-index TopCache: dense per-node
// slices, appended by fills and compacted by swap-with-last removals, with
// Find and Remove scanning the path's nodes linearly. Its emission and
// compaction dynamics are the contract the indexed implementation must
// reproduce exactly.
type shadowTop struct {
	topLevels, levels int
	z                 []int
	nodes             [][]tree.Entry // heap node -> live entries (dense)
}

func newShadowTop(levels, topLevels int, z []int) *shadowTop {
	return &shadowTop{
		topLevels: topLevels,
		levels:    levels,
		z:         z,
		nodes:     make([][]tree.Entry, 1<<uint(topLevels)),
	}
}

func (s *shadowTop) node(level int, leaf block.Leaf) int {
	return (1 << uint(level)) + int(uint64(leaf)>>(uint(s.levels-1)-uint(level)))
}

func (s *shadowTop) fill(level int, leaf block.Leaf, e tree.Entry) bool {
	n := s.node(level, leaf)
	if len(s.nodes[n]) >= s.z[level] {
		return false
	}
	s.nodes[n] = append(s.nodes[n], e)
	return true
}

func (s *shadowTop) readPathEach(leaf block.Leaf, visit func(tree.Entry, int)) {
	for l := 0; l < s.topLevels; l++ {
		n := s.node(l, leaf)
		for _, e := range s.nodes[n] {
			visit(e, l)
		}
		s.nodes[n] = s.nodes[n][:0]
	}
}

func (s *shadowTop) find(addr block.ID, leaf block.Leaf) (int, bool) {
	for l := 0; l < s.topLevels; l++ {
		for _, e := range s.nodes[s.node(l, leaf)] {
			if e.Addr == addr {
				return l, true
			}
		}
	}
	return 0, false
}

func (s *shadowTop) remove(addr block.ID, leaf block.Leaf) bool {
	for l := 0; l < s.topLevels; l++ {
		n := s.node(l, leaf)
		for i, e := range s.nodes[n] {
			if e.Addr == addr {
				last := len(s.nodes[n]) - 1
				s.nodes[n][i] = s.nodes[n][last]
				s.nodes[n] = s.nodes[n][:last]
				return true
			}
		}
	}
	return false
}

func (s *shadowTop) lenAt(level int) uint64 {
	var n uint64
	for i := 0; i < 1<<uint(level); i++ {
		n += uint64(len(s.nodes[(1<<uint(level))+i]))
	}
	return n
}

// TestTopCacheDifferential churns the indexed TopCache and the linear-scan
// shadow through a randomized schedule of fills, path drains, probes and
// removals, asserting identical refusals, hits, emission order and
// occupancy after every step. The schedule is long relative to the tiny
// top's slot count, so the lazy address index accumulates garbage past its
// growth bound and must sweep (in place) several times inside the run —
// the reclamation path a short unit test never reaches.
func TestTopCacheDifferential(t *testing.T) {
	o := config.Tiny().ORAM
	tc := NewTopCache(o.Levels, o.TopLevels, o.Z)
	sh := newShadowTop(o.Levels, o.TopLevels, o.Z)
	r := rng.New(99)
	leaves := o.LeafCount()
	nextAddr := block.ID(1)

	type rec struct {
		e tree.Entry
		l int
	}
	var got, want []rec
	for i := 0; i < 20000; i++ {
		leaf := block.Leaf(r.Uint64n(leaves))
		level := int(r.Uint64n(uint64(o.TopLevels)))
		switch op := r.Uint64n(100); {
		case op < 45:
			// Fill at a random top level; refusals must agree.
			e := tree.Entry{Addr: nextAddr, Leaf: subtreePathLeaf(r, leaf, level, o.Levels)}
			nextAddr++
			if g, w := tc.Fill(level, leaf, e), sh.fill(level, leaf, e); g != w {
				t.Fatalf("op %d: Fill(%d, %d, %+v) = %v, shadow %v", i, level, leaf, e, g, w)
			}
		case op < 60:
			// Drain the path; sequences must match element for element.
			got, want = got[:0], want[:0]
			tc.ReadPathEach(leaf, func(e tree.Entry, l int) { got = append(got, rec{e, l}) })
			sh.readPathEach(leaf, func(e tree.Entry, l int) { want = append(want, rec{e, l}) })
			if len(got) != len(want) {
				t.Fatalf("op %d: drained %d, shadow %d", i, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("op %d: emission %d = %+v, shadow %+v", i, k, got[k], want[k])
				}
			}
		default:
			// Probe and remove a resident (when the shadow has one on this
			// path) or an absent address; results must agree either way.
			addr := nextAddr + 1000
			if wl, ok := shadowAnyOnPath(sh, leaf); ok {
				addr = wl
			}
			gl, gok := tc.Find(addr, leaf)
			wl, wok := sh.find(addr, leaf)
			if gl != wl || gok != wok {
				t.Fatalf("op %d: Find(%v, %d) = (%d,%v), shadow (%d,%v)", i, addr, leaf, gl, gok, wl, wok)
			}
			if g, w := tc.Remove(addr, leaf), sh.remove(addr, leaf); g != w {
				t.Fatalf("op %d: Remove(%v, %d) = %v, shadow %v", i, addr, leaf, g, w)
			}
		}
		for l := 0; l < o.TopLevels; l++ {
			if g, w := tc.OccupiedAt(l), sh.lenAt(l); g != w {
				t.Fatalf("op %d: OccupiedAt(%d) = %d, shadow %d", i, l, g, w)
			}
		}
	}
	var total int
	for l := 0; l < o.TopLevels; l++ {
		total += int(sh.lenAt(l))
	}
	if g := tc.Len(); g != total {
		t.Fatalf("Len = %d, shadow %d", g, total)
	}
}

// subtreePathLeaf builds a random leaf in the same level-subtree as leaf —
// the placement constraint Fill enforces.
func subtreePathLeaf(r *rng.Source, leaf block.Leaf, level, levels int) block.Leaf {
	shift := uint(levels-1) - uint(level)
	base := (uint64(leaf) >> shift) << shift
	return block.Leaf(base | r.Uint64n(uint64(1)<<shift))
}

// shadowAnyOnPath returns some resident address on the path of leaf.
func shadowAnyOnPath(s *shadowTop, leaf block.Leaf) (block.ID, bool) {
	for l := 0; l < s.topLevels; l++ {
		if n := s.nodes[s.node(l, leaf)]; len(n) > 0 {
			return n[0].Addr, true
		}
	}
	return 0, false
}
