package stash

import (
	"fmt"

	"iroram/internal/block"
)

// AddrTable maps block.ID -> uint32 with open addressing: a power-of-two
// slot array, linear probing, and backward-shift deletion (no tombstones).
// It replaces Go maps on the simulator's hottest lookup paths (the F-Stash
// index, the ρ membership table): probe sequences are short contiguous
// array walks, lookups never hash more than once, and — unlike a Go map —
// a pre-sized table performs no steady-state allocation.
//
// The table stores no iteration order and exposes no iteration: callers
// that need deterministic traversal keep their own dense slice (the
// F-Stash items array), so swapping the map for this table cannot perturb
// recorded experiment output.
//
// block.Invalid is reserved as the empty-slot sentinel and must not be
// used as a key; Put panics on it.
type AddrTable struct {
	keys []block.ID // block.Invalid marks an empty slot
	vals []uint32
	mask uint64
	n    int
	grow int // occupancy that triggers doubling (load factor 13/16)
}

// minAddrTableSlots keeps degenerate capacity hints (0, tiny test stashes)
// from building tables too small to probe efficiently.
const minAddrTableSlots = 16

// NewAddrTable returns a table pre-sized so that `capacity` live entries
// stay at or below 50% load; it grows (by doubling) only if occupancy later
// exceeds the 13/16 load bound — the transient-overflow case.
func NewAddrTable(capacity int) *AddrTable {
	slots := minAddrTableSlots
	for slots < 2*capacity {
		slots <<= 1
	}
	t := &AddrTable{}
	t.init(slots)
	return t
}

func (t *AddrTable) init(slots int) {
	t.keys = make([]block.ID, slots)
	for i := range t.keys {
		t.keys[i] = block.Invalid
	}
	t.vals = make([]uint32, slots)
	t.mask = uint64(slots - 1)
	t.grow = slots * 13 / 16
	t.n = 0
}

// Len returns the number of live entries.
func (t *AddrTable) Len() int { return t.n }

// slot returns the home slot of id: a 64-bit finalizer mix (splitmix64)
// masked to the table size, so dense block IDs spread over the whole array.
func (t *AddrTable) slot(id block.ID) uint64 {
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x & t.mask
}

// Get returns the value stored for id.
func (t *AddrTable) Get(id block.ID) (uint32, bool) {
	for i := t.slot(id); ; i = (i + 1) & t.mask {
		k := t.keys[i]
		if k == id {
			return t.vals[i], true
		}
		if k == block.Invalid {
			return 0, false
		}
	}
}

// GetOrPut returns the value stored for id when present (ok true). When
// absent it inserts id -> v in the same probe sequence and returns (v,
// false) — the insert-or-update primitive of the F-Stash, which would
// otherwise pay a Get probe followed by a full Put re-probe on the hot
// path's every gather insert.
func (t *AddrTable) GetOrPut(id block.ID, v uint32) (uint32, bool) {
	if id == block.Invalid {
		panic("stash: AddrTable key must not be block.Invalid")
	}
	if t.n >= t.grow {
		t.rehash(len(t.keys) * 2)
	}
	for i := t.slot(id); ; i = (i + 1) & t.mask {
		k := t.keys[i]
		if k == id {
			return t.vals[i], true
		}
		if k == block.Invalid {
			t.keys[i] = id
			t.vals[i] = v
			t.n++
			return v, false
		}
	}
}

// Put inserts or updates id -> v.
func (t *AddrTable) Put(id block.ID, v uint32) {
	if id == block.Invalid {
		panic("stash: AddrTable key must not be block.Invalid")
	}
	if t.n >= t.grow {
		t.rehash(len(t.keys) * 2)
	}
	for i := t.slot(id); ; i = (i + 1) & t.mask {
		k := t.keys[i]
		if k == id {
			t.vals[i] = v
			return
		}
		if k == block.Invalid {
			t.keys[i] = id
			t.vals[i] = v
			t.n++
			return
		}
	}
}

// Delete removes id, reporting whether it was present. Removal back-shifts
// the probe chain into the vacated slot, so no tombstones accumulate and
// the Get invariant (probe until an empty slot) always holds.
func (t *AddrTable) Delete(id block.ID) bool {
	i := t.slot(id)
	for {
		k := t.keys[i]
		if k == block.Invalid {
			return false
		}
		if k == id {
			break
		}
		i = (i + 1) & t.mask
	}
	t.deleteAt(i)
	return true
}

// deleteAt vacates occupied slot i and back-shifts the probe chain after
// it: any entry whose home slot is NOT in the cyclic interval (i, j] may
// legally move into the hole.
func (t *AddrTable) deleteAt(i uint64) {
	j := i
	for {
		j = (j + 1) & t.mask
		k := t.keys[j]
		if k == block.Invalid {
			break
		}
		h := t.slot(k)
		inPlace := false
		if i <= j {
			inPlace = i < h && h <= j
		} else {
			inPlace = h > i || h <= j
		}
		if inPlace {
			continue
		}
		t.keys[i] = k
		t.vals[i] = t.vals[j]
		i = j
	}
	t.keys[i] = block.Invalid
	t.n--
}

// Full reports whether the next insert of a new key would trigger a
// doubling. Callers that tolerate stale entries (the lazy TopCache index)
// check it before Put and Sweep instead, so a pre-sized table never grows
// — and therefore never allocates — in steady state.
func (t *AddrTable) Full() bool { return t.n >= t.grow }

// Sweep deletes, in place and without allocating, every entry for which
// keep returns false. keep must be a pure predicate of current caller
// state: entries relocated by the back-shifts are re-examined under the
// same predicate, so a sweep terminates with exactly the kept entries.
func (t *AddrTable) Sweep(keep func(id block.ID, v uint32) bool) {
	for i := uint64(0); i < uint64(len(t.keys)); {
		k := t.keys[i]
		if k == block.Invalid || keep(k, t.vals[i]) {
			i++
			continue
		}
		// deleteAt may back-shift a later chain entry into slot i; do not
		// advance, so the new occupant is examined too.
		t.deleteAt(i)
	}
}

func (t *AddrTable) rehash(slots int) {
	oldKeys, oldVals := t.keys, t.vals
	t.init(slots)
	for i, k := range oldKeys {
		if k != block.Invalid {
			t.Put(k, oldVals[i])
		}
	}
}

func (t *AddrTable) String() string {
	return fmt.Sprintf("AddrTable{%d/%d}", t.n, len(t.keys))
}
