package stash

import (
	"testing"
	"testing/quick"

	"iroram/internal/block"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

func TestFStashInsertLookupRemove(t *testing.T) {
	s := NewFStash(8)
	s.Insert(tree.Entry{Addr: 1, Leaf: 10})
	s.Insert(tree.Entry{Addr: 2, Leaf: 20})
	if l, ok := s.Lookup(1); !ok || l != 10 {
		t.Fatalf("Lookup(1) = %d,%v", l, ok)
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if _, ok := s.Lookup(1); ok {
		t.Fatal("removed block still present")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestFStashDuplicateInsertUpdatesLeaf(t *testing.T) {
	s := NewFStash(8)
	s.Insert(tree.Entry{Addr: 1, Leaf: 10})
	s.Insert(tree.Entry{Addr: 1, Leaf: 11})
	if s.Len() != 1 {
		t.Fatalf("duplicate insert grew stash to %d", s.Len())
	}
	if l, _ := s.Lookup(1); l != 11 {
		t.Errorf("leaf = %d, want 11", l)
	}
}

func TestFStashSetLeaf(t *testing.T) {
	s := NewFStash(8)
	s.Insert(tree.Entry{Addr: 1, Leaf: 10})
	if !s.SetLeaf(1, 99) {
		t.Fatal("SetLeaf failed")
	}
	if l, _ := s.Lookup(1); l != 99 {
		t.Errorf("leaf = %d", l)
	}
	if s.SetLeaf(2, 1) {
		t.Error("SetLeaf on absent block should fail")
	}
}

func TestFStashHighWaterAndOverfull(t *testing.T) {
	s := NewFStash(4)
	for i := 0; i < 6; i++ {
		s.Insert(tree.Entry{Addr: block.ID(i), Leaf: 0})
	}
	if s.HighWater != 6 {
		t.Errorf("HighWater = %d", s.HighWater)
	}
	if !s.Overfull(4) || s.Overfull(6) {
		t.Error("Overfull thresholds wrong")
	}
}

func TestFStashTakeForBucket(t *testing.T) {
	const levels = 5 // leaves 0..15
	s := NewFStash(16)
	s.Insert(tree.Entry{Addr: 1, Leaf: 0}) // left half
	s.Insert(tree.Entry{Addr: 2, Leaf: 1})
	s.Insert(tree.Entry{Addr: 3, Leaf: 15}) // right half
	// Level 1 bucket of leaf 0 accepts leaves 0..7 only.
	got := s.TakeForBucket(0, 1, levels, 4, nil, nil)
	if len(got) != 2 {
		t.Fatalf("took %d blocks, want 2", len(got))
	}
	if s.Len() != 1 {
		t.Errorf("stash kept %d blocks, want 1", s.Len())
	}
	if _, ok := s.Lookup(3); !ok {
		t.Error("wrong block taken")
	}
}

func TestFStashTakeForBucketRespectsMaxAndVeto(t *testing.T) {
	const levels = 5
	s := NewFStash(16)
	for i := 0; i < 6; i++ {
		s.Insert(tree.Entry{Addr: block.ID(i), Leaf: 0})
	}
	got := s.TakeForBucket(0, 0, levels, 2, nil, nil)
	if len(got) != 2 {
		t.Fatalf("max ignored: took %d", len(got))
	}
	veto := s.TakeForBucket(0, 0, levels, 10, func(e tree.Entry) bool { return e.Addr%2 == 0 }, nil)
	for _, e := range veto {
		if e.Addr%2 != 0 {
			t.Errorf("veto ignored for %v", e.Addr)
		}
	}
}

func TestFStashEachDeterministic(t *testing.T) {
	build := func() []block.ID {
		s := NewFStash(8)
		for i := 0; i < 8; i++ {
			s.Insert(tree.Entry{Addr: block.ID(i), Leaf: 0})
		}
		s.Remove(3)
		s.Remove(0)
		var order []block.ID
		s.Each(func(e tree.Entry) { order = append(order, e.Addr) })
		return order
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("iteration order not deterministic")
		}
	}
}

const testLevels = 14
const testTop = 5

func topZ() []int {
	z := make([]int, testLevels)
	for i := range z {
		z[i] = 4
	}
	return z
}

func testStores() map[string]TopStore {
	return map[string]TopStore{
		"dedicated": NewTopCache(testLevels, testTop, topZ()),
		"ir-stash":  NewIRStash(testLevels, testTop, topZ(), 4),
	}
}

func TestTopStoreFillReadRoundTrip(t *testing.T) {
	for name, ts := range testStores() {
		leaf := block.Leaf(12)
		if !ts.Fill(0, leaf, tree.Entry{Addr: 1, Leaf: 500}) {
			t.Fatalf("%s: root fill refused", name)
		}
		if !ts.Fill(2, leaf, tree.Entry{Addr: 2, Leaf: leaf}) {
			t.Fatalf("%s: level-2 fill refused", name)
		}
		if ts.Len() != 2 {
			t.Fatalf("%s: Len = %d", name, ts.Len())
		}
		got := ts.ReadPath(leaf, nil)
		if len(got) != 2 {
			t.Fatalf("%s: ReadPath returned %d", name, len(got))
		}
		if ts.Len() != 0 {
			t.Errorf("%s: store not drained", name)
		}
	}
}

func TestTopStoreFindRemove(t *testing.T) {
	for name, ts := range testStores() {
		leaf := block.Leaf(3)
		ts.Fill(1, leaf, tree.Entry{Addr: 42, Leaf: leaf})
		if l, ok := ts.Find(42, leaf); !ok || l != 1 {
			t.Fatalf("%s: Find = %d,%v", name, l, ok)
		}
		// A leaf in the other half of the tree shares only the root.
		other := block.Leaf(1 << (testLevels - 2))
		if _, ok := ts.Find(42, other); ok {
			t.Errorf("%s: found block on unrelated path", name)
		}
		if !ts.Remove(42, leaf) || ts.Remove(42, leaf) {
			t.Errorf("%s: Remove semantics wrong", name)
		}
		if ts.OccupiedAt(1) != 0 {
			t.Errorf("%s: occupancy leak", name)
		}
	}
}

func TestTopStoreBucketCapacity(t *testing.T) {
	for name, ts := range testStores() {
		leaf := block.Leaf(0)
		placed := 0
		for i := 0; i < 10; i++ {
			if ts.Fill(0, leaf, tree.Entry{Addr: block.ID(100 + i), Leaf: block.Leaf(i)}) {
				placed++
			}
		}
		if placed > 4 {
			t.Errorf("%s: root bucket accepted %d > Z=4 blocks", name, placed)
		}
	}
}

func TestTopStoreCapacityAt(t *testing.T) {
	for name, ts := range testStores() {
		if got := ts.CapacityAt(3); got != 8*4 {
			t.Errorf("%s: CapacityAt(3) = %d, want 32", name, got)
		}
	}
}

func TestTopCachePanicsOnWrongSubtree(t *testing.T) {
	ts := NewTopCache(testLevels, testTop, topZ())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// Level 4 bucket of leaf 0 vs a leaf from the other half of the tree.
	ts.Fill(4, 0, tree.Entry{Addr: 1, Leaf: 1 << (testLevels - 2)})
}

func TestIRStashAddrIndex(t *testing.T) {
	s := NewIRStash(testLevels, testTop, topZ(), 4)
	leaf := block.Leaf(7)
	s.Fill(2, leaf, tree.Entry{Addr: 77, Leaf: leaf})
	if l, ok := s.LookupByAddr(77); !ok || l != leaf {
		t.Fatalf("LookupByAddr = %d,%v", l, ok)
	}
	if _, ok := s.LookupByAddr(78); ok {
		t.Error("phantom hit")
	}
	if !s.RemoveByAddr(77) || s.RemoveByAddr(77) {
		t.Error("RemoveByAddr semantics wrong")
	}
	if _, ok := s.Find(77, leaf); ok {
		t.Error("TT still points at removed block")
	}
}

func TestIRStashConflictRefusal(t *testing.T) {
	// With 1-way sets, two distinct addresses hashing to the same set
	// conflict. Fill many root-adjacent buckets and verify refusals are
	// counted and the store never lies about placement.
	s := NewIRStash(testLevels, testTop, topZ(), 1)
	r := rng.New(4)
	placed := 0
	for i := 0; i < 200; i++ {
		leaf := block.Leaf(r.Uint64n(1 << (testLevels - 1)))
		level := int(r.Uint64n(testTop))
		if s.Fill(level, leaf, tree.Entry{Addr: block.ID(1000 + i), Leaf: leaf}) {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	if s.Len() != placed {
		t.Errorf("Len %d != placed %d", s.Len(), placed)
	}
	if s.Conflicts == 0 {
		t.Log("no conflicts with 1-way sets is unlikely but not fatal")
	}
}

func TestIRStashTTBytesTableI(t *testing.T) {
	// Section VI-F: (2^10-1) buckets x 4 pointers x 12 bits ~= 6 KB.
	z := make([]int, 25)
	for i := range z {
		z[i] = 4
	}
	s := NewIRStash(25, 10, z, 4)
	got := s.TTBytes()
	if got < 6000 || got > 6200 {
		t.Errorf("TTBytes = %d, want about 6 KB", got)
	}
}

func TestIRStashHashSpreads(t *testing.T) {
	s := NewIRStash(testLevels, testTop, topZ(), 4)
	counts := make([]int, s.sets)
	for a := block.ID(0); a < 4096; a++ {
		counts[s.setOf(a)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := 4096 / s.sets
	if max > mean*4 {
		t.Errorf("MD5 set index skewed: max %d vs mean %d", max, mean)
	}
}

// TestTopStoreConservation: across random fill/read cycles both designs
// conserve blocks and stay within capacity.
func TestTopStoreConservation(t *testing.T) {
	makers := map[string]func() TopStore{
		"dedicated": func() TopStore { return NewTopCache(testLevels, testTop, topZ()) },
		"ir-stash":  func() TopStore { return NewIRStash(testLevels, testTop, topZ(), 4) },
	}
	for name, mk := range makers {
		check := func(seed uint64) bool {
			ts := mk()
			r := rng.New(seed)
			inStore := 0
			for op := 0; op < 300; op++ {
				leaf := block.Leaf(r.Uint64n(1 << (testLevels - 1)))
				if r.Bool(0.6) {
					level := int(r.Uint64n(testTop))
					// A block legal at this bucket: borrow the path's leaf.
					if ts.Fill(level, leaf, tree.Entry{Addr: block.ID(r.Uint64n(1 << 30)), Leaf: leaf}) {
						inStore++
					}
				} else {
					inStore -= len(ts.ReadPath(leaf, nil))
				}
				if ts.Len() != inStore {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
