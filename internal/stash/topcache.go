package stash

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/tree"
)

// TopStore is the on-chip home of the top tree levels. Both the baseline's
// dedicated cache and IR-Stash implement it; only IR-Stash additionally
// offers the block-address index (AddrIndex) that lets the LLC discover
// tree-top hits without a PosMap lookup.
type TopStore interface {
	// ReadPath removes every real block in the top buckets on the path of
	// leaf (the on-chip segment of a path read), appending to dst — which
	// may be nil, or a buffer reused across paths to avoid allocation.
	ReadPath(leaf block.Leaf, dst []tree.Entry) []tree.Entry
	// ReadPathEach is ReadPath without the intermediate buffer: each
	// removed block is handed to visit with its level, in exactly
	// ReadPath's emission order. visit must not touch the store.
	ReadPathEach(leaf block.Leaf, visit func(tree.Entry, int))
	// Fill places e into the bucket the path of leaf crosses at level; it
	// returns false when the design cannot accept the block (bucket full,
	// or an S-Stash set conflict) and the caller must keep it stashed.
	Fill(level int, leaf block.Leaf, e tree.Entry) bool
	// Find reports the level at which addr sits on the path of leaf.
	Find(addr block.ID, leaf block.Leaf) (level int, ok bool)
	// Remove deletes addr from the path of leaf.
	Remove(addr block.ID, leaf block.Leaf) bool
	// OccupiedAt returns the number of real blocks at one top level.
	OccupiedAt(level int) uint64
	// CapacityAt returns the allocated slots at one top level.
	CapacityAt(level int) uint64
	// Len returns the total number of blocks held.
	Len() int
}

// AddrIndex is the extra capability of IR-Stash: a block-address lookup that
// serves LLC requests directly from the tree top — no PosMap access, no
// path access, no remap (Section IV-C).
type AddrIndex interface {
	// LookupByAddr reports whether addr is held, without PosMap knowledge.
	LookupByAddr(addr block.ID) (block.Leaf, bool)
}

// TopCache is the baseline's dedicated tree-top cache: buckets indexed by
// tree position only. The LLC cannot search it by address, so a request
// must resolve its PosMap entry before a tree-top hit can be discovered —
// the PosMap waste IR-Stash eliminates.
type TopCache struct {
	topLevels int
	levels    int
	z         []int
	// nodes is heap-indexed: node of (level l, index i) = 2^l + i.
	nodes    [][]tree.Entry
	occupied []uint64
}

// NewTopCache allocates an empty cache for levels [0, topLevels) of a tree
// with levels levels and the given per-level bucket sizes.
func NewTopCache(levels, topLevels int, z []int) *TopCache {
	if topLevels <= 0 || topLevels >= levels {
		panic(fmt.Sprintf("stash: topLevels %d out of (0,%d)", topLevels, levels))
	}
	return &TopCache{
		topLevels: topLevels,
		levels:    levels,
		z:         append([]int(nil), z...),
		nodes:     make([][]tree.Entry, 1<<uint(topLevels)),
		occupied:  make([]uint64, topLevels),
	}
}

func (t *TopCache) node(level int, leaf block.Leaf) int {
	idx := uint64(leaf) >> (uint(t.levels-1) - uint(level))
	return (1 << uint(level)) + int(idx)
}

// ReadPath implements TopStore.
func (t *TopCache) ReadPath(leaf block.Leaf, dst []tree.Entry) []tree.Entry {
	out := dst
	for l := 0; l < t.topLevels; l++ {
		n := t.node(l, leaf)
		out = append(out, t.nodes[n]...)
		t.occupied[l] -= uint64(len(t.nodes[n]))
		t.nodes[n] = t.nodes[n][:0]
	}
	return out
}

// ReadPathEach implements TopStore.
func (t *TopCache) ReadPathEach(leaf block.Leaf, visit func(tree.Entry, int)) {
	for l := 0; l < t.topLevels; l++ {
		n := t.node(l, leaf)
		bucket := t.nodes[n]
		t.occupied[l] -= uint64(len(bucket))
		t.nodes[n] = bucket[:0]
		for _, e := range bucket {
			visit(e, l)
		}
	}
}

// Fill implements TopStore. The dedicated cache owns its buckets outright,
// so it only refuses when the bucket is at capacity.
func (t *TopCache) Fill(level int, leaf block.Leaf, e tree.Entry) bool {
	n := t.node(level, leaf)
	if len(t.nodes[n]) >= t.z[level] {
		return false
	}
	if !tree.SameSubtree(leaf, e.Leaf, level, t.levels) {
		panic(fmt.Sprintf("stash: block %v (leaf %d) misplaced at top level %d of path %d",
			e.Addr, e.Leaf, level, leaf))
	}
	t.nodes[n] = append(t.nodes[n], e)
	t.occupied[level]++
	return true
}

// Find implements TopStore.
func (t *TopCache) Find(addr block.ID, leaf block.Leaf) (int, bool) {
	for l := 0; l < t.topLevels; l++ {
		for _, e := range t.nodes[t.node(l, leaf)] {
			if e.Addr == addr {
				return l, true
			}
		}
	}
	return 0, false
}

// Remove implements TopStore.
func (t *TopCache) Remove(addr block.ID, leaf block.Leaf) bool {
	for l := 0; l < t.topLevels; l++ {
		n := t.node(l, leaf)
		for i, e := range t.nodes[n] {
			if e.Addr == addr {
				last := len(t.nodes[n]) - 1
				t.nodes[n][i] = t.nodes[n][last]
				t.nodes[n] = t.nodes[n][:last]
				t.occupied[l]--
				return true
			}
		}
	}
	return false
}

// OccupiedAt implements TopStore.
func (t *TopCache) OccupiedAt(level int) uint64 { return t.occupied[level] }

// CapacityAt implements TopStore.
func (t *TopCache) CapacityAt(level int) uint64 {
	return (uint64(1) << uint(level)) * uint64(t.z[level])
}

// Len implements TopStore.
func (t *TopCache) Len() int {
	n := 0
	for _, o := range t.occupied {
		n += int(o)
	}
	return n
}
