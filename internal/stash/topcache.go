package stash

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/tree"
)

// TopStore is the on-chip home of the top tree levels. Both the baseline's
// dedicated cache and IR-Stash implement it; only IR-Stash additionally
// offers the block-address index (AddrIndex) that lets the LLC discover
// tree-top hits without a PosMap lookup.
type TopStore interface {
	// ReadPath removes every real block in the top buckets on the path of
	// leaf (the on-chip segment of a path read), appending to dst — which
	// may be nil, or a buffer reused across paths to avoid allocation.
	ReadPath(leaf block.Leaf, dst []tree.Entry) []tree.Entry
	// ReadPathEach is ReadPath without the intermediate buffer: each
	// removed block is handed to visit with its level, in exactly
	// ReadPath's emission order. visit must not touch the store.
	ReadPathEach(leaf block.Leaf, visit func(tree.Entry, int))
	// Fill places e into the bucket the path of leaf crosses at level; it
	// returns false when the design cannot accept the block (bucket full,
	// or an S-Stash set conflict) and the caller must keep it stashed.
	Fill(level int, leaf block.Leaf, e tree.Entry) bool
	// Find reports the level at which addr sits on the path of leaf.
	Find(addr block.ID, leaf block.Leaf) (level int, ok bool)
	// Remove deletes addr from the path of leaf.
	Remove(addr block.ID, leaf block.Leaf) bool
	// OccupiedAt returns the number of real blocks at one top level.
	OccupiedAt(level int) uint64
	// CapacityAt returns the allocated slots at one top level.
	CapacityAt(level int) uint64
	// Len returns the total number of blocks held.
	Len() int
}

// AddrIndex is the extra capability of IR-Stash: a block-address lookup that
// serves LLC requests directly from the tree top — no PosMap access, no
// path access, no remap (Section IV-C).
type AddrIndex interface {
	// LookupByAddr reports whether addr is held, without PosMap knowledge.
	LookupByAddr(addr block.ID) (block.Leaf, bool)
}

// TopCache is the baseline's dedicated tree-top cache: buckets indexed by
// tree position only. The LLC cannot search it by address, so a request
// must resolve its PosMap entry before a tree-top hit can be discovered —
// the PosMap waste IR-Stash eliminates.
//
// Storage is the same SoA layout as tree.Tree (parallel slotAddr/slotLeaf
// arrays), so the controller's fused walk runs the identical inner loop
// over the on-chip and memory-resident segments. Each heap-indexed node
// (node of level l, index i = 2^l + i) owns the fixed slot range
// [nodeLo[n], nodeLo[n]+z[l]); its live entries are the dense prefix of
// length cnt[n], appended to by Fill and compacted by Remove's
// swap-with-last — the exact array dynamics of the historical per-node
// slices, so ReadPath emission order is unchanged.
//
// An AddrTable maps addresses to their global slot, making Find and Remove
// O(1) instead of a scan over every node on the path. The index is lazy:
// Fill and the Remove swap keep every RESIDENT block's mapping current,
// but eviction walks and removals leave the departing key's entry behind
// as garbage rather than paying a backward-shift delete per block on the
// hot path. Lookups verify a mapping against the store (the slot's live
// prefix and its recorded address) before trusting it, which is sound
// because a resident block always has an up-to-date mapping — a stale
// entry can only belong to an absent block or point at a reused slot, and
// both fail verification. When garbage would force the table to grow, Fill
// sweeps the dead entries out in place instead, so the index never
// allocates after construction.
type TopCache struct {
	topLevels int
	levels    int
	z         []int
	occupied  []uint64

	slotAddr []uint32
	slotLeaf []uint32
	nodeLo   []uint32 // heap node -> first slot of its range
	cnt      []uint16 // heap node -> live-prefix length
	slotNode []uint32   // slot -> owning heap node (static)
	slotLvl  []uint8    // slot -> level (static)
	index    *AddrTable // addr -> global slot; lazy, verify before trusting
}

// NewTopCache allocates an empty cache for levels [0, topLevels) of a tree
// with levels levels and the given per-level bucket sizes.
func NewTopCache(levels, topLevels int, z []int) *TopCache {
	if topLevels <= 0 || topLevels >= levels {
		panic(fmt.Sprintf("stash: topLevels %d out of (0,%d)", topLevels, levels))
	}
	t := &TopCache{
		topLevels: topLevels,
		levels:    levels,
		z:         append([]int(nil), z...),
		occupied:  make([]uint64, topLevels),
		nodeLo:    make([]uint32, 1<<uint(topLevels)),
		cnt:       make([]uint16, 1<<uint(topLevels)),
	}
	var slots uint32
	for l := 0; l < topLevels; l++ {
		for i := 0; i < 1<<uint(l); i++ {
			n := (1 << uint(l)) + i
			t.nodeLo[n] = slots
			slots += uint32(z[l])
		}
	}
	t.slotAddr = make([]uint32, slots)
	t.slotLeaf = make([]uint32, slots)
	t.slotNode = make([]uint32, slots)
	t.slotLvl = make([]uint8, slots)
	for l := 0; l < topLevels; l++ {
		for i := 0; i < 1<<uint(l); i++ {
			n := (1 << uint(l)) + i
			lo := t.nodeLo[n]
			for s := lo; s < lo+uint32(z[l]); s++ {
				t.slotNode[s] = uint32(n)
				t.slotLvl[s] = uint8(l)
			}
		}
	}
	// Doubly oversized (4x the live-entry bound) so lazy garbage forces an
	// in-place sweep only once per couple hundred fills. Not larger: the
	// table competes with the slot arrays for L1, and a bigger, colder
	// index costs more per Put than the rarer sweeps save.
	t.index = NewAddrTable(2 * int(slots))
	return t
}

// liveAt reports whether the index mapping id -> s is current: s must sit
// in its node's live prefix and still hold id.
func (t *TopCache) liveAt(id block.ID, s uint32) bool {
	n := t.slotNode[s]
	return s-t.nodeLo[n] < uint32(t.cnt[n]) && t.slotAddr[s] == uint32(id)
}

func (t *TopCache) node(level int, leaf block.Leaf) int {
	idx := uint64(leaf) >> (uint(t.levels-1) - uint(level))
	return (1 << uint(level)) + int(idx)
}

// ReadPath implements TopStore.
func (t *TopCache) ReadPath(leaf block.Leaf, dst []tree.Entry) []tree.Entry {
	out := dst
	for l := 0; l < t.topLevels; l++ {
		n := t.node(l, leaf)
		lo, c := t.nodeLo[n], uint32(t.cnt[n])
		t.occupied[l] -= uint64(c)
		t.cnt[n] = 0
		for s := lo; s < lo+c; s++ {
			out = append(out, tree.Entry{Addr: block.ID(t.slotAddr[s]), Leaf: block.Leaf(t.slotLeaf[s])})
		}
	}
	return out
}

// ReadPathEach implements TopStore.
func (t *TopCache) ReadPathEach(leaf block.Leaf, visit func(tree.Entry, int)) {
	for l := 0; l < t.topLevels; l++ {
		n := t.node(l, leaf)
		lo, c := t.nodeLo[n], uint32(t.cnt[n])
		t.occupied[l] -= uint64(c)
		t.cnt[n] = 0
		for s := lo; s < lo+c; s++ {
			visit(tree.Entry{Addr: block.ID(t.slotAddr[s]), Leaf: block.Leaf(t.slotLeaf[s])}, l)
		}
	}
}

// Fill implements TopStore. The dedicated cache owns its buckets outright,
// so it only refuses when the bucket is at capacity.
func (t *TopCache) Fill(level int, leaf block.Leaf, e tree.Entry) bool {
	n := t.node(level, leaf)
	if int(t.cnt[n]) >= t.z[level] {
		return false
	}
	if !tree.SameSubtree(leaf, e.Leaf, level, t.levels) {
		panic(fmt.Sprintf("stash: block %v (leaf %d) misplaced at top level %d of path %d",
			e.Addr, e.Leaf, level, leaf))
	}
	s := t.nodeLo[n] + uint32(t.cnt[n])
	t.slotAddr[s] = uint32(e.Addr)
	t.slotLeaf[s] = uint32(e.Leaf)
	t.cnt[n]++
	t.occupied[level]++
	if t.index.Full() {
		t.index.Sweep(t.liveAt)
	}
	t.index.Put(e.Addr, s)
	return true
}

// Find implements TopStore: one verified index probe instead of a scan
// over every node on the path. The node check rejects blocks resident in
// the cache but not on this leaf's path.
func (t *TopCache) Find(addr block.ID, leaf block.Leaf) (int, bool) {
	s, ok := t.index.Get(addr)
	if !ok || !t.liveAt(addr, s) {
		return 0, false
	}
	l := int(t.slotLvl[s])
	if int(t.slotNode[s]) != t.node(l, leaf) {
		return 0, false
	}
	return l, true
}

// Remove implements TopStore: verified index lookup, then swap-with-last
// compaction of the owning node's live prefix (the historical slice
// dynamics). The removed key's index entry is left to lazy reclamation.
func (t *TopCache) Remove(addr block.ID, leaf block.Leaf) bool {
	s, ok := t.index.Get(addr)
	if !ok || !t.liveAt(addr, s) {
		return false
	}
	l := int(t.slotLvl[s])
	n := int(t.slotNode[s])
	if n != t.node(l, leaf) {
		return false
	}
	last := t.nodeLo[n] + uint32(t.cnt[n]) - 1
	if s != last {
		moved := t.slotAddr[last]
		t.slotAddr[s] = moved
		t.slotLeaf[s] = t.slotLeaf[last]
		// moved is resident, so its key is present: this Put updates in
		// place and cannot grow the table.
		t.index.Put(block.ID(moved), s)
	}
	t.cnt[n]--
	t.occupied[l]--
	return true
}

// OccupiedAt implements TopStore.
func (t *TopCache) OccupiedAt(level int) uint64 { return t.occupied[level] }

// CapacityAt implements TopStore.
func (t *TopCache) CapacityAt(level int) uint64 {
	return (uint64(1) << uint(level)) * uint64(t.z[level])
}

// Len implements TopStore.
func (t *TopCache) Len() int {
	n := 0
	for _, o := range t.occupied {
		n += int(o)
	}
	return n
}
