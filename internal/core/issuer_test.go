package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
)

// fakeDWB is a scripted DWBSource: a fixed candidate list, always still
// valid unless aborted.
type fakeDWB struct {
	cands   []uint64
	next    int
	valid   map[uint64]bool
	cleaned []uint64
}

func newFakeDWB(cands ...uint64) *fakeDWB {
	f := &fakeDWB{cands: cands, valid: map[uint64]bool{}}
	for _, c := range cands {
		f.valid[c] = true
	}
	return f
}

func (f *fakeDWB) FindCandidate(uint64) (uint64, bool) {
	for f.next < len(f.cands) {
		c := f.cands[f.next]
		f.next++
		if f.valid[c] {
			return c, true
		}
	}
	return 0, false
}

func (f *fakeDWB) StillCandidate(addr uint64) bool { return f.valid[addr] }

func (f *fakeDWB) MarkClean(addr uint64) bool {
	f.cleaned = append(f.cleaned, addr)
	delete(f.valid, addr)
	return true
}

func newDWBSystem(t *testing.T, src DWBSource) (*Issuer, *Controller) {
	t.Helper()
	cfg := config.Tiny().WithScheme(config.IRDWBScheme())
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewIssuer(c, src), c
}

func TestDWBConvertsDummySlots(t *testing.T) {
	src := newFakeDWB(100, 200, 300)
	is, c := newDWBSystem(t, src)
	// Long idle stretch: slots would all be dummies; IR-DWB must convert
	// up to 3 per candidate (Pos2, Pos1, data write).
	is.AdvanceTo(60 * c.o.IntervalT)
	if c.st.DWBConverted == 0 {
		t.Fatal("no dummy slots converted")
	}
	if c.st.DWBCompleted != 3 {
		t.Fatalf("completed %d early write-backs, want 3", c.st.DWBCompleted)
	}
	if len(src.cleaned) != 3 {
		t.Fatalf("MarkClean called for %d lines", len(src.cleaned))
	}
	// With a cold PLB each write-back needs up to 3 paths.
	if c.st.DWBConverted > 9 {
		t.Errorf("converted %d slots for 3 write-backs", c.st.DWBConverted)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDWBStageSkipsResidentPosMaps(t *testing.T) {
	src := newFakeDWB(64, 65) // same PosMap1 block (64/16 == 65/16... adjacent)
	is, c := newDWBSystem(t, src)
	is.AdvanceTo(60 * c.o.IntervalT)
	if c.st.DWBCompleted != 2 {
		t.Fatalf("completed %d, want 2", c.st.DWBCompleted)
	}
	// The second candidate shares the first's PosMap1 block, so its chain
	// must be shorter: strictly fewer than 6 conversions total.
	if c.st.DWBConverted >= 6 {
		t.Errorf("no PLB reuse across DWB candidates: %d conversions", c.st.DWBConverted)
	}
}

func TestDWBAbortsStaleCandidates(t *testing.T) {
	src := newFakeDWB(500)
	is, c := newDWBSystem(t, src)
	// Let it pick the candidate and do the first step, then invalidate.
	is.AdvanceTo(2 * c.o.IntervalT)
	if is.dwbStage == 0 {
		t.Skip("candidate already completed in the window")
	}
	src.valid[500] = false
	is.AdvanceTo(10 * c.o.IntervalT)
	if c.st.DWBAborted == 0 {
		t.Error("stale candidate not aborted")
	}
	if c.st.DWBCompleted != 0 {
		t.Error("aborted candidate reported complete")
	}
}

func TestDWBDistributionShiftsFromDummy(t *testing.T) {
	// Fig 15 shape: with IR-DWB, the dummy share drops and converted
	// slots appear in its place.
	run := func(src DWBSource) (dummy, converted uint64) {
		cfg := config.Tiny().WithScheme(config.IRDWBScheme())
		mem := dram.New(cfg.DRAM)
		c, err := NewController(cfg, mem, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		is := NewIssuer(c, src)
		r := rng.New(5)
		now := uint64(0)
		for i := 0; i < 100; i++ {
			now = is.ReadBlock(now+8000, block.ID(r.Uint64n(c.pm.DataBlocks())))
		}
		return c.st.DummyPaths, c.st.DWBConverted
	}
	cands := make([]uint64, 64)
	for i := range cands {
		cands[i] = uint64(i * 37)
	}
	dummyOff, _ := run(nil)
	dummyOn, conv := run(newFakeDWB(cands...))
	if conv == 0 {
		t.Fatal("nothing converted")
	}
	if dummyOn >= dummyOff {
		t.Errorf("dummy paths %d with DWB >= %d without", dummyOn, dummyOff)
	}
}

func TestRhoBasicOperation(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.RhoScheme())
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	is := NewIssuer(c, nil)
	r := rng.New(9)
	now := uint64(0)
	for i := 0; i < 300; i++ {
		a := block.ID(r.Uint64n(1024))
		now = is.ReadBlock(now+900, a)
	}
	if c.rho.SmallPaths == 0 {
		t.Fatal("rho never used the small tree")
	}
	if c.rho.member.Len() == 0 {
		t.Fatal("no blocks installed in the small tree")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.st.NonUniformIssues != 0 {
		t.Errorf("%d non-uniform issues", c.st.NonUniformIssues)
	}
}

func TestRhoReuseHitsSmallTree(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.RhoScheme())
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	is := NewIssuer(c, nil)
	now := is.ReadBlock(0, 42)
	before := c.rho.SmallPaths
	// Flush it out of the stash into the small tree with dummies, then
	// re-read: the access must be a small-tree path, not a main path.
	is.AdvanceTo(now + 30*c.o.IntervalT)
	mainBefore := c.st.Paths.Paths[block.PathData]
	is.ReadBlock(now+31*c.o.IntervalT, 42)
	if c.rho.SmallPaths == before && c.st.Paths.Paths[block.PathData] > mainBefore {
		t.Error("re-read went to the main tree despite small-tree residency")
	}
}

func TestRhoDemotionDrains(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.RhoScheme())
	// Shrink the small tree hard so demotions happen quickly.
	cfg.Scheme.RhoLevelsDelta = 9
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	is := NewIssuer(c, nil)
	r := rng.New(3)
	now := uint64(0)
	for i := 0; i < 400; i++ {
		a := block.ID(r.Uint64n(c.pm.DataBlocks()))
		now = is.ReadBlock(now+900, a)
	}
	if c.rho.member.Len() > c.rho.limit {
		t.Errorf("small tree holds %d members over limit %d", c.rho.member.Len(), c.rho.limit)
	}
	is.AdvanceTo(now + 100*c.o.IntervalT)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPostWriteReturnsImmediatelyWhenRoom(t *testing.T) {
	is, _ := newSystem(t, config.Baseline())
	if got := is.PostWrite(1234, 7); got != 1234 {
		t.Errorf("PostWrite stalled to %d with an empty queue", got)
	}
}

func TestAdvanceToIdempotent(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	is.AdvanceTo(10 * c.o.IntervalT)
	n := c.st.PathsIssued
	is.AdvanceTo(10 * c.o.IntervalT)
	if c.st.PathsIssued != n {
		t.Error("repeated AdvanceTo issued extra paths")
	}
}

func TestPostWriteNoTimingProtection(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	cfg.ORAM.IntervalT = 0
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	is := NewIssuer(c, nil)
	now := uint64(0)
	for i := 0; i < 3*cfg.CPU.WriteQueueDepth; i++ {
		now = is.PostWrite(now, block.ID(i*53))
	}
	is.AdvanceTo(now + 1_000_000)
	if is.WriteQueueLen() != 0 {
		t.Fatalf("write queue stuck at %d without pacing", is.WriteQueueLen())
	}
	if c.st.DummyPaths != 0 {
		t.Errorf("%d dummies with protection off", c.st.DummyPaths)
	}
}

func TestDummyServiceOpportunisticallyDrainsStash(t *testing.T) {
	// A Path ORAM dummy is a read+write of a random path: its write phase
	// gives stashed blocks placement opportunities, which is why the paper
	// notes timing protection reduces background evictions (Section VI-A).
	is, c := newSystem(t, config.Baseline())
	r := rng.New(41)
	now := uint64(0)
	for i := 0; i < 60; i++ {
		now = is.ReadBlock(now+200, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	before := c.StashLen()
	if before == 0 {
		t.Skip("stash empty")
	}
	is.AdvanceTo(now + 200*c.o.IntervalT)
	if c.StashLen() >= before {
		t.Errorf("stash %d -> %d: dummies never drained it", before, c.StashLen())
	}
}
