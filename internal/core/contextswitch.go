package core

import (
	"iroram/internal/block"
	"iroram/internal/dram"
	"iroram/internal/tree"
)

// ContextSwitch implements the protocol of Section IV-C: at a context
// switch the F-Stash is flushed into the ORAM tree (targeted path accesses
// place each stashed block on its own path), the on-chip tree-top contents
// are sealed and written back to their memory locations, and the TT table
// is discarded; resuming reads the tree top back and rebuilds the table.
// The returned cycle is when the switch (flush + write-back + reload)
// completes; outside the TCB it looks like a burst of ordinary path
// accesses followed by a sequential spill.
func (c *Controller) ContextSwitch(now uint64) uint64 {
	done := now

	// 1. Flush the F-Stash: a path access along a stashed block's own leaf
	// always gives it a placement opportunity at every level of its path.
	// A handful of rounds empties the stash at normal load; the cap keeps
	// a pathological state from wedging the switch.
	for round := 0; round < 8 && c.fstash.Len() > 0; round++ {
		var leaves []block.Leaf
		c.fstash.Each(func(e tree.Entry) {
			leaves = append(leaves, e.Leaf)
		})
		for _, leaf := range leaves {
			if c.fstash.Len() == 0 {
				break
			}
			_, _, d := c.treeAccess(done, leaf, block.Invalid, block.PathEvict)
			done = d
			c.st.BgEvictions++
		}
	}

	// 2. Seal and spill the tree-top contents to their memory home (a
	// reserved region past the tree), then reload on resume. The blocks
	// stay logically in the top store; only the traffic and time are
	// modelled, exactly like the paper's "written back ... then rebuilt".
	if c.top != nil {
		spillBase := c.layout.PhysicalSlots()
		slots := 0
		for l := 0; l < c.minLevel; l++ {
			slots += int(c.top.CapacityAt(l))
		}
		c.accBuf = c.accBuf[:0]
		for j := 0; j < slots; j++ {
			c.accBuf = append(c.accBuf, dram.Access{Addr: spillBase + uint64(j), Write: true})
		}
		done = c.mem.ServiceBatch(done, c.accBuf)
		c.accBuf = c.accBuf[:0]
		for j := 0; j < slots; j++ {
			c.accBuf = append(c.accBuf, dram.Access{Addr: spillBase + uint64(j)})
		}
		done = c.mem.ServiceBatch(done, c.accBuf)
	}

	c.st.ContextSwitches++
	return done + c.o.OnChipLatency
}
