package core

import (
	"math/bits"

	"iroram/internal/block"
)

// pathSet is the per-path-access membership set for "which blocks did this
// path fetch" (recordMigration's fetched-vs-preexisting split). It has the
// exact semantics of epochSet — Add, Has, O(1) generation-bump Reset — but
// where epochSet direct-indexes a stamp per block of the unified space
// (pm.Total() entries, DRAM-resident at realistic geometries, so every Has
// on the write phase was a cold cache miss), pathSet open-addresses a table
// sized to one path's block count: membership never exceeds the blocks a
// single read phase gathers between Resets, so a few hundred bytes stay
// L1-resident across the whole access.
//
// A slot is live iff its stamp equals the current generation; stale slots
// from earlier generations act as empty, terminating probes. Entries are
// never deleted within a generation, so probe chains have no holes.
type pathSet struct {
	keys   []block.ID
	stamps []uint32
	mask   uint64
	shift  uint
	gen    uint32
}

// newPathSet returns an empty set holding at most capacity members per
// generation, sized at or below 25% load so probe chains stay short.
func newPathSet(capacity int) *pathSet {
	slots := 16
	for slots < 4*capacity {
		slots <<= 1
	}
	return &pathSet{
		keys:   make([]block.ID, slots),
		stamps: make([]uint32, slots),
		mask:   uint64(slots - 1),
		shift:  uint(64 - bits.Len(uint(slots-1))),
		gen:    1,
	}
}

// slot returns the home slot of id. One Fibonacci multiply suffices here —
// unlike AddrTable (arbitrary long-lived key sets) this table holds a few
// dozen keys per generation at 25% load, and the hash runs twice per
// gathered block on the hottest loop of the simulator, so it is kept to a
// single multiply and shift.
func (s *pathSet) slot(id block.ID) uint64 {
	return (uint64(id) * 0x9e3779b97f4a7c15) >> s.shift
}

// Reset empties the set in O(1). On the (once per 2^32 resets) generation
// wrap the stamp array is cleared so stale stamps from the previous cycle
// cannot alias the new generation.
func (s *pathSet) Reset() {
	s.gen++
	if s.gen == 0 {
		clear(s.stamps)
		s.gen = 1
	}
}

// Add marks id as a member of the current generation. Adding more members
// than the constructed capacity is a caller bug (the table does not grow);
// the controller's bound is one path's block count.
func (s *pathSet) Add(id block.ID) {
	for i := s.slot(id); ; i = (i + 1) & s.mask {
		if s.stamps[i] != s.gen {
			s.keys[i] = id
			s.stamps[i] = s.gen
			return
		}
		if s.keys[i] == id {
			return
		}
	}
}

// Has reports membership of id in the current generation.
func (s *pathSet) Has(id block.ID) bool {
	for i := s.slot(id); ; i = (i + 1) & s.mask {
		if s.stamps[i] != s.gen {
			return false
		}
		if s.keys[i] == id {
			return true
		}
	}
}
