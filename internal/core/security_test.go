package core

// Security regression tests for the obliviousness argument of Section IV-E:
//
//  1. every observed path (leaf) is drawn uniformly, independent of the
//     workload's addresses — the Path ORAM property IR-ORAM must preserve;
//  2. the sequence of observed leaves carries no mutual information about
//     which of two very different workloads ran (coarse distribution test);
//  3. the issue-gap audit holds for every scheme: the controller is never
//     observably idle beyond the timing-protection interval.

import (
	"math"
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
)

// leafTrace runs a workload and returns the externally visible path trace.
func leafTrace(t *testing.T, sch config.Scheme, addrs []block.ID) []block.Leaf {
	t.Helper()
	cfg := config.Tiny().WithScheme(sch)
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Stats().RecordLeaves = true
	is := NewIssuer(c, nil)
	now := uint64(0)
	for _, a := range addrs {
		now = is.ReadBlock(now+500, a)
	}
	return c.Stats().Leaves
}

// binCounts folds leaves into 8 equal bins.
func binCounts(leaves []block.Leaf, leafCount uint64) []float64 {
	counts := make([]float64, 8)
	per := leafCount / 8
	for _, l := range leaves {
		counts[uint64(l)/per]++
	}
	return counts
}

func TestObservedPathsUniform(t *testing.T) {
	leafCount := config.Tiny().ORAM.LeafCount()
	for _, sch := range []config.Scheme{config.Baseline(), config.IROramScheme()} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			r := rng.New(7)
			addrs := make([]block.ID, 600)
			for i := range addrs {
				addrs[i] = block.ID(r.Uint64n(1 << 12))
			}
			leaves := leafTrace(t, sch, addrs)
			if len(leaves) < 500 {
				t.Fatalf("only %d paths observed", len(leaves))
			}
			counts := binCounts(leaves, leafCount)
			want := float64(len(leaves)) / 8
			for b, c := range counts {
				if math.Abs(c-want) > 0.25*want+8 {
					t.Errorf("leaf bin %d: %v paths, want about %v", b, c, want)
				}
			}
		})
	}
}

// TestTraceIndependentOfWorkload compares the observed leaf distributions of
// a sequential scan and a single-block hammer: the external trace must look
// the same (uniform) for both, even though the address streams could not be
// more different.
func TestTraceIndependentOfWorkload(t *testing.T) {
	leafCount := config.Tiny().ORAM.LeafCount()

	seq := make([]block.ID, 600)
	for i := range seq {
		seq[i] = block.ID(i * 16) // distinct PosMap blocks, streaming
	}
	hammer := make([]block.ID, 600)
	for i := range hammer {
		hammer[i] = block.ID(uint64(i%4) * 5000)
	}

	a := binCounts(leafTrace(t, config.Baseline(), seq), leafCount)
	b := binCounts(leafTrace(t, config.Baseline(), hammer), leafCount)
	norm := func(c []float64) []float64 {
		sum := 0.0
		for _, v := range c {
			sum += v
		}
		out := make([]float64, len(c))
		for i, v := range c {
			out[i] = v / sum
		}
		return out
	}
	na, nb := norm(a), norm(b)
	for i := range na {
		if math.Abs(na[i]-nb[i]) > 0.08 {
			t.Errorf("bin %d: seq %.3f vs hammer %.3f — trace shape depends on workload",
				i, na[i], nb[i])
		}
	}
}

// TestRemappedLeafNeverReused checks the freshness property: after a block
// is accessed via a path, its next access uses an independently drawn leaf
// (we assert it is not systematically identical, which would leak reuse).
func TestRemappedLeafNeverReused(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := block.ID(i * 31)
		before := c.pm.Leaf(a)
		c.pm.Remap(a)
		if c.pm.Leaf(a) == before {
			same++
		}
	}
	// P(same leaf) = 1/leaves = 1/8192; a handful of collisions in 200
	// draws would already be suspicious.
	if same > 2 {
		t.Errorf("remap kept the same leaf %d/%d times", same, trials)
	}
}

// TestIssueGapAuditRhoAndDWB extends the audit to the remaining schemes.
func TestIssueGapAuditRhoAndDWB(t *testing.T) {
	for _, sch := range []config.Scheme{config.RhoScheme(), config.IRDWBScheme()} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			cfg := config.Tiny().WithScheme(sch)
			mem := dram.New(cfg.DRAM)
			c, err := NewController(cfg, mem, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			var src DWBSource
			if sch.DWB {
				src = newFakeDWB(10, 20, 30, 40)
			}
			is := NewIssuer(c, src)
			r := rng.New(5)
			now := uint64(0)
			for i := 0; i < 250; i++ {
				a := block.ID(r.Uint64n(c.pm.DataBlocks()))
				if r.Bool(0.25) {
					now = is.PostWrite(now+uint64(r.Intn(4000)), a)
				} else {
					now = is.ReadBlock(now+uint64(r.Intn(4000)), a)
				}
			}
			if c.st.NonUniformIssues != 0 {
				t.Errorf("%d of %d issues broke the idle bound",
					c.st.NonUniformIssues, c.st.PathsIssued)
			}
		})
	}
}

// TestPathTypeStructurallyIdentical verifies that every path type generates
// the same DRAM traffic shape: equal block counts for equal leaves, so an
// attacker cannot classify path types by size.
func TestPathTypeStructurallyIdentical(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	is := NewIssuer(c, nil)
	// Force a mix of path types.
	now := is.ReadBlock(0, 1234)              // PTp + PTd
	is.AdvanceTo(now + 20*cfg.ORAM.IntervalT) // PTm dummies
	st := c.Stats()
	perPath := float64(st.Paths.BlocksRead) / float64(st.Paths.Total())
	want := float64(cfg.ORAM.Z.BlocksPerPath(cfg.ORAM.TopLevels))
	if perPath != want {
		t.Errorf("blocks per path %.2f, want %.2f for every type", perPath, want)
	}
}
