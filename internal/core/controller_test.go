package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
)

func newSystem(t *testing.T, sch config.Scheme) (*Issuer, *Controller) {
	t.Helper()
	cfg := config.Tiny().WithScheme(sch)
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewIssuer(c, nil), c
}

func TestConstructionAllSchemes(t *testing.T) {
	for _, sch := range config.AllSchemes() {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			_, c := newSystem(t, sch)
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if c.tr.Occupied() == 0 {
				t.Fatal("initial placement left the tree empty")
			}
		})
	}
}

func TestInitialPlacementCoversSpace(t *testing.T) {
	_, c := newSystem(t, config.Baseline())
	total := c.tr.Occupied() + uint64(c.top.Len()) + uint64(c.fstash.Len())
	if total != c.pm.Total() {
		t.Fatalf("placed %d of %d blocks", total, c.pm.Total())
	}
	// Initial stash spill must be tiny at 50% load.
	if c.fstash.Len() > c.o.StashCapacity {
		t.Errorf("init spilled %d blocks to the stash", c.fstash.Len())
	}
}

func TestReadBlockCompletes(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	done := is.ReadBlock(0, 123)
	if done == 0 {
		t.Fatal("zero completion time")
	}
	if c.st.ServedRequests != 1 {
		t.Fatalf("served %d requests", c.st.ServedRequests)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRereadHitsStash(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	done := is.ReadBlock(0, 123)
	is.ReadBlock(done+10, 123)
	if c.st.StashHits == 0 {
		t.Error("immediate re-read should hit the stash")
	}
}

func TestColdReadNeedsPosMapPaths(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	// A cold PLB: the first read needs PTp(Pos2) then PTp(Pos1) then PTd.
	is.ReadBlock(0, 77)
	if c.st.PosMapPaths != 2 {
		t.Errorf("PosMapPaths = %d, want 2 on a cold PLB", c.st.PosMapPaths)
	}
	if c.st.Paths.Paths[block.PathPos1] != 1 || c.st.Paths.Paths[block.PathPos2] != 1 {
		t.Errorf("path counts %v", c.st.Paths.Paths)
	}
}

func TestPosMapLocalitySavesPaths(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	// 16 consecutive blocks share one PosMap1 block: after the first, the
	// PLB must serve the rest.
	now := uint64(0)
	for a := block.ID(1600); a < 1616; a++ {
		now = is.ReadBlock(now+1, a)
	}
	if c.st.PosMapPaths > 2 {
		t.Errorf("PosMapPaths = %d for a 16-block PosMap-local run, want <= 2", c.st.PosMapPaths)
	}
}

func TestDummiesFillIdleGaps(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	done := is.ReadBlock(0, 5)
	// 50 slots of idleness must become 50 dummies.
	is.AdvanceTo(done + 50*c.o.IntervalT)
	if c.st.DummyPaths < 40 {
		t.Errorf("only %d dummy paths during a long idle gap", c.st.DummyPaths)
	}
}

func TestIssueUniformity(t *testing.T) {
	// The obliviousness regression test: every issue exactly T apart.
	for _, sch := range []config.Scheme{config.Baseline(), config.IRAllocScheme(),
		config.IRStashScheme(), config.IROramScheme(), config.LLCDScheme()} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			is, c := newSystem(t, sch)
			r := rng.New(99)
			now := uint64(0)
			// Under LLC-D a block fetched by a read lives only in the LLC
			// until evicted, so reads must not repeat a held-out address
			// (the real LLC would have hit); writes evict held-out blocks.
			heldOut := map[block.ID]bool{}
			var heldList []block.ID
			for i := 0; i < 300; i++ {
				a := block.ID(r.Uint64n(c.pm.DataBlocks()))
				if sch.DelayedRemap && r.Bool(0.3) && len(heldList) > 0 {
					v := heldList[r.Intn(len(heldList))]
					if heldOut[v] {
						delete(heldOut, v)
						now = is.PostWrite(now+uint64(r.Intn(3000)), v)
						continue
					}
				}
				if r.Bool(0.3) && !sch.DelayedRemap {
					now = is.PostWrite(now+uint64(r.Intn(3000)), a)
					continue
				}
				if sch.DelayedRemap {
					if heldOut[a] {
						continue // LLC hit in the real system
					}
					heldOut[a] = true
					heldList = append(heldList, a)
				}
				now = is.ReadBlock(now+uint64(r.Intn(3000)), a)
			}
			if c.st.NonUniformIssues != 0 {
				t.Errorf("%d of %d issues broke the T-cycle cadence",
					c.st.NonUniformIssues, c.st.PathsIssued)
			}
		})
	}
}

func TestNoTimingProtectionNoDummies(t *testing.T) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	cfg.ORAM.IntervalT = 0
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	is := NewIssuer(c, nil)
	now := uint64(0)
	for i := 0; i < 100; i++ {
		now = is.ReadBlock(now+5000, block.ID(i*31))
	}
	if c.st.DummyPaths != 0 {
		t.Errorf("%d dummies without timing protection", c.st.DummyPaths)
	}
}

func TestWriteBackFullAccess(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	end := is.PostWrite(0, 42)
	// Drain the queue by advancing time.
	is.AdvanceTo(end + 100*c.o.IntervalT)
	if is.WriteQueueLen() != 0 {
		t.Fatalf("write queue still has %d entries", is.WriteQueueLen())
	}
	if c.st.ServedRequests != 1 {
		t.Errorf("served %d", c.st.ServedRequests)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteQueueStalls(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	// Posting far more writes than the queue depth at the same instant
	// must stall (returned time advances past the post time).
	now := uint64(0)
	var stalled bool
	for i := 0; i < 3*c.cfg.CPU.WriteQueueDepth; i++ {
		done := is.PostWrite(now, block.ID(i*97))
		if done > now {
			stalled = true
			now = done
		}
	}
	if !stalled {
		t.Error("write queue never stalled the core")
	}
}

func TestBackgroundEvictionTriggers(t *testing.T) {
	is, c := newSystem(t, config.IRAllocScheme())
	r := rng.New(3)
	now := uint64(0)
	for i := 0; i < 600; i++ {
		a := block.ID(r.Uint64n(c.pm.DataBlocks()))
		now = is.ReadBlock(now+1, a)
	}
	if c.fstash.Len() > c.o.StashCapacity {
		t.Errorf("stash at %d blocks, capacity %d: background eviction failing",
			c.fstash.Len(), c.o.StashCapacity)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIRStashServesByAddress(t *testing.T) {
	is, c := newSystem(t, config.IRStashScheme())
	r := rng.New(7)
	now := uint64(0)
	// Work a small hot set so blocks land in the tree top, then re-read.
	for i := 0; i < 400; i++ {
		a := block.ID(r.Uint64n(256))
		now = is.ReadBlock(now+500, a)
	}
	if c.st.SStashHits == 0 {
		t.Error("IR-Stash address index never hit")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIRStashReducesPosMapPaths(t *testing.T) {
	// The paper's scenario: a hot set that lives in the tree top plus cold
	// scans that thrash the PLB. The baseline pays PTp paths to discover
	// its tree-top hits; IR-Stash serves them by address first (Fig 14).
	run := func(sch config.Scheme) uint64 {
		is, c := newSystem(t, sch)
		r := rng.New(11)
		now := uint64(0)
		for i := 0; i < 600; i++ {
			var a block.ID
			if i%2 == 0 {
				// Hot set spread so each block has its own PosMap1 block
				// (the tree-top-resident, PLB-missing case IR-Stash wins).
				a = block.ID(r.Uint64n(96) * 256)
			} else {
				a = block.ID(r.Uint64n(24576)) // cold: thrashes the PLB
			}
			// Leave idle time so dummies flush the stash into the tree top
			// between requests.
			now = is.ReadBlock(now+3000, a)
		}
		return c.st.PosMapPaths
	}
	base := run(config.Baseline())
	irs := run(config.IRStashScheme())
	if irs >= base {
		t.Errorf("IR-Stash PosMap paths %d >= baseline %d (Fig 14 shape violated)", irs, base)
	}
}

func TestTopHitsHappenInBaseline(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	r := rng.New(13)
	now := uint64(0)
	for i := 0; i < 500; i++ {
		a := block.ID(r.Uint64n(512))
		now = is.ReadBlock(now+700, a)
	}
	if c.st.TopHits == 0 {
		t.Error("hot working set never hit the dedicated tree-top cache")
	}
	if c.st.HitLevels.Total() == 0 {
		t.Error("hit-level histogram empty")
	}
}

func TestLLCDHoldsBlocksOut(t *testing.T) {
	is, c := newSystem(t, config.LLCDScheme())
	done := is.ReadBlock(0, 55)
	if c.pm.Leaf(55).Valid() {
		t.Fatal("LLC-D should unmap the fetched block")
	}
	// Eviction reinserts it.
	end := is.PostWrite(done+10, 55)
	is.AdvanceTo(end + 50*c.o.IntervalT)
	if is.WriteQueueLen() != 0 {
		t.Fatal("reinsert never drained")
	}
	if !c.pm.Leaf(55).Valid() {
		t.Fatal("reinsert did not remap the block")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLLCDReadWhileQueuedForwards(t *testing.T) {
	is, c := newSystem(t, config.LLCDScheme())
	done := is.ReadBlock(0, 60)
	is.PostWrite(done+1, 60)
	// Immediately reading it back (LLC miss after eviction) must forward
	// from the queue rather than panic on the unmapped block.
	if got := is.ReadBlock(done+2, 60); got == 0 {
		t.Fatal("forwarded read returned zero time")
	}
	_ = c
}

func TestUtilizationBounds(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	r := rng.New(5)
	now := uint64(0)
	for i := 0; i < 300; i++ {
		now = is.ReadBlock(now+300, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	u := c.Utilization()
	if len(u) != c.o.Levels {
		t.Fatalf("utilization has %d levels", len(u))
	}
	for l, v := range u {
		if v < 0 || v > 1 {
			t.Errorf("level %d utilization %v", l, v)
		}
	}
	// The leaf level must be far better utilized than the middle (Fig 3).
	if u[c.o.Levels-1] < u[c.o.TopLevels+1] {
		t.Errorf("leaf utilization %.3f below middle %.3f", u[c.o.Levels-1], u[c.o.TopLevels+1])
	}
}

func TestMigrationStatsPopulated(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	r := rng.New(17)
	now := uint64(0)
	for i := 0; i < 300; i++ {
		now = is.ReadBlock(now+300, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	if c.st.MigrationFetched.Total() == 0 || c.st.MigrationPreexisting.Total() == 0 {
		t.Error("migration histograms not populated")
	}
	// Fig 5: pre-existing stash blocks land nearer the root than fetched
	// blocks on average.
	avg := func(h interface{ FractionUpTo(int) float64 }) float64 {
		// fraction of placements in the top half of the tree
		return h.FractionUpTo(c.o.Levels / 2)
	}
	if avg(c.st.MigrationPreexisting) <= avg(c.st.MigrationFetched) {
		t.Logf("pre-existing top-half share %.3f vs fetched %.3f (informational)",
			avg(c.st.MigrationPreexisting), avg(c.st.MigrationFetched))
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, uint64) {
		is, c := newSystem(t, config.IROramScheme())
		r := rng.New(23)
		now := uint64(0)
		for i := 0; i < 200; i++ {
			now = is.ReadBlock(now+137, block.ID(r.Uint64n(c.pm.DataBlocks())))
		}
		return now, c.st.Paths.Total()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestIRAllocFewerBlocksPerPath(t *testing.T) {
	_, base := newSystem(t, config.Baseline())
	_, alloc := newSystem(t, config.IRAllocScheme())
	if alloc.BlocksPerPath() >= base.BlocksPerPath() {
		t.Errorf("IR-Alloc path %d blocks, baseline %d", alloc.BlocksPerPath(), base.BlocksPerPath())
	}
}

func TestContextSwitchFlushesStash(t *testing.T) {
	is, c := newSystem(t, config.Baseline())
	r := rng.New(31)
	now := uint64(0)
	for i := 0; i < 120; i++ {
		now = is.ReadBlock(now+400, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	if c.StashLen() == 0 {
		t.Skip("stash happened to be empty before the switch")
	}
	done := c.ContextSwitch(now)
	if done <= now {
		t.Fatal("context switch took no time")
	}
	if c.StashLen() != 0 {
		t.Errorf("stash still holds %d blocks after the flush", c.StashLen())
	}
	if c.st.ContextSwitches != 1 {
		t.Errorf("ContextSwitches = %d", c.st.ContextSwitches)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The system must keep working after resume.
	is.ReadBlock(done+10, 42)
}

func TestContextSwitchIRStash(t *testing.T) {
	is, c := newSystem(t, config.IRStashScheme())
	r := rng.New(33)
	now := uint64(0)
	for i := 0; i < 120; i++ {
		now = is.ReadBlock(now+400, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	done := c.ContextSwitch(now)
	if c.StashLen() != 0 {
		t.Errorf("stash still holds %d blocks", c.StashLen())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	is.ReadBlock(done+10, 77)
}
