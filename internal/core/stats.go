package core

import (
	"iroram/internal/block"
	"iroram/internal/metrics"
	"iroram/internal/stats"
)

// Stats aggregates everything the paper's figures need from the controller.
type Stats struct {
	// Paths counts path accesses by type (Fig 2, Fig 15).
	Paths stats.PathCounters

	// StashHits counts data requests served by the F-Stash.
	StashHits uint64
	// SStashHits counts data requests served by the IR-Stash address index
	// before any PosMap work (the accesses whose PTp paths IR-Stash saves).
	SStashHits uint64
	// TopHits counts data requests served on-chip from the tree top after
	// PosMap resolution (the baseline dedicated-cache hit of Fig 6).
	TopHits uint64
	// HitLevels histograms the tree level at which requested data blocks
	// were found (tree-top and memory levels; Fig 6).
	HitLevels *stats.LevelHist

	// PosMapPaths counts PTp path accesses (Pos1 + Pos2), Fig 14's metric.
	PosMapPaths uint64
	// PLBHits / PLBMisses count PosMap entry lookups.
	PLBHits, PLBMisses uint64

	// BgEvictions counts background-eviction path accesses; BgEvictionCycles
	// accumulates the time they occupied (Fig 12's shaded share).
	BgEvictions      uint64
	BgEvictionCycles uint64

	// DummyPaths counts pure PT_m paths; DWBConverted counts dummy slots
	// IR-DWB turned into useful work; DWBCompleted counts LLC lines fully
	// written back early (Stage reached 0); DWBAborted counts abandoned
	// candidates.
	DummyPaths   uint64
	DWBConverted uint64
	DWBCompleted uint64
	DWBAborted   uint64
	// ProactiveRemaps counts LLC LRU entries whose PosMap state was
	// prefetched by converted dummies (the Section IV-D future-work
	// extension), making their later LLC-D eviction free.
	ProactiveRemaps uint64

	// Migration records which levels write phases placed blocks at,
	// separated by block origin (Fig 5): fetched this access vs
	// pre-existing in the stash.
	MigrationFetched     *stats.LevelHist
	MigrationPreexisting *stats.LevelHist

	// Issue-gap audit (the obliviousness regression check): with timing
	// protection on, the controller may never be observably idle — every
	// issue must start no later than max(previous issue + T, previous path
	// completion). NonUniformIssues counts violations; PathsIssued the
	// total number of path issues.
	PathsIssued      uint64
	NonUniformIssues uint64

	// ServedRequests counts completed LLC-side requests (reads + writes).
	ServedRequests uint64

	// ContextSwitches counts Section IV-C stash-flush/top-spill events.
	ContextSwitches uint64

	// RecordLeaves enables capture of the leaf of every issued path access
	// into Leaves — the externally visible access trace, used by security
	// regression tests to check that observed paths are uniform and carry
	// no workload information. Off by default (it grows unboundedly).
	RecordLeaves bool
	Leaves       []block.Leaf

	// PathLatency histograms the service latency (issue to data-available,
	// in CPU cycles) of every path access, keyed by path type — the
	// per-access-class latency distributions the observability layer
	// exports. Observations are allocation-free (plain arrays).
	PathLatency [block.NumPathTypes]metrics.Hist
	// QueueDepth histograms the posted-write queue depth at each path
	// issue — the controller-side queue pressure signal.
	QueueDepth metrics.Hist

	// Per-phase cycle accounting across all path accesses: PhaseReadCycles
	// is DRAM read-phase service time (issue to last read block on the
	// bus), PhaseWriteBackCycles is the posted write phase's bus occupancy
	// beyond the read phase, and PhaseRemapCycles is the on-chip remap
	// latency (OnChipLatency per remap). The eviction phase is
	// BgEvictionCycles above. Remaps counts position-map remap operations.
	PhaseReadCycles      uint64
	PhaseWriteBackCycles uint64
	PhaseRemapCycles     uint64
	Remaps               uint64

	// EpochInterval, when non-zero, appends one Epoch snapshot to Epochs
	// every EpochInterval issued paths — the time-series view of a run.
	// Off by default: enabling it trades the zero-allocation guarantee of
	// the access path for periodic (amortized) snapshot appends.
	EpochInterval uint64
	Epochs        []Epoch
}

// Epoch is one periodic time-series sample of the controller's progress,
// captured every Stats.EpochInterval issued paths (see sim.System.
// SetEpochInterval). All values are cumulative since the start of the run.
type Epoch struct {
	// Paths is the total number of issued path accesses at capture time.
	Paths uint64 `json:"paths"`
	// Cycle is the simulated CPU cycle of the issue that closed the epoch.
	Cycle uint64 `json:"cycle"`
	// ByType is the cumulative per-type path-access count, indexed by
	// block.PathType.
	ByType [block.NumPathTypes]uint64 `json:"by_type"`
	// Served is the cumulative count of completed LLC-side requests.
	Served uint64 `json:"served"`
	// StashLen is the F-Stash occupancy at capture time (a point sample,
	// not cumulative).
	StashLen int `json:"stash_len"`
}

func newStats(levels int) *Stats {
	return &Stats{
		HitLevels:            stats.NewLevelHist(levels),
		MigrationFetched:     stats.NewLevelHist(levels),
		MigrationPreexisting: stats.NewLevelHist(levels),
	}
}

// DataHits returns how many data requests were served without a data path
// access (stash + S-Stash + dedicated top cache).
func (s *Stats) DataHits() uint64 { return s.StashHits + s.SStashHits + s.TopHits }

// pathTypeCount is a convenience for figure drivers.
func (s *Stats) pathTypeCount(t block.PathType) uint64 { return s.Paths.Paths[t] }

// PosPathFraction returns the PTp share of all path accesses.
func (s *Stats) PosPathFraction() float64 {
	return s.Paths.Fraction(block.PathPos1) + s.Paths.Fraction(block.PathPos2)
}
