package core

import (
	"iroram/internal/block"
	"iroram/internal/flight"
)

// DWBSource is what IR-DWB needs from the LLC: the Ptr-register candidate
// search and the ability to check and clear a line's dirty-LRU status. The
// simulator implements it over the LLC model; addresses are data block IDs.
type DWBSource interface {
	// FindCandidate returns the next dirty LRU line, honoring the paper's
	// round-robin scan and 1000-cycle back-off.
	FindCandidate(now uint64) (addr uint64, ok bool)
	// StillCandidate reports whether the line is still the dirty LRU entry
	// of its set (the abort condition).
	StillCandidate(addr uint64) bool
	// MarkClean clears the line's dirty bit after the write-back completes.
	MarkClean(addr uint64) bool
}

// Issuer schedules path accesses under the paper's timing-channel defence:
// the controller serializes path accesses (a new one starts only when the
// previous one finished), and whenever it would otherwise sit idle for T
// cycles, a dummy path is issued — so outside the TCB there is never a gap
// longer than max(T, one path service time) from which request presence
// could be inferred, and every access looks identical.
//
// Work eligible for an issue, in priority order: background eviction (stash
// pressure is a correctness concern), the waiting demand step, posted
// writes, IR-DWB conversions, and pure dummies. Under ρ the issue sequence
// additionally follows the fixed main:small pattern.
type Issuer struct {
	c *Controller
	t uint64

	// prevDone is when the last issued path finished; the next one may not
	// start earlier (the controller is serial).
	prevDone uint64
	// lastIssue is when the last path was issued; lastIssue+T is the dummy
	// deadline.
	lastIssue  uint64
	haveIssued bool
	slotIdx    uint64

	writeQ    []Job
	maxWriteQ int

	dwbSrc    DWBSource
	dwbStage  int
	dwbTarget block.ID
}

// NewIssuer wires an issuer to c. dwbSrc may be nil; it is only consulted
// when the scheme enables IR-DWB.
func NewIssuer(c *Controller, dwbSrc DWBSource) *Issuer {
	is := &Issuer{
		c:         c,
		t:         c.o.IntervalT,
		maxWriteQ: c.cfg.CPU.WriteQueueDepth,
	}
	if c.cfg.Scheme.DWB {
		is.dwbSrc = dwbSrc
	}
	return is
}

// Controller returns the paced controller.
func (is *Issuer) Controller() *Controller { return is.c }

// WriteQueueLen returns the number of posted writes waiting.
func (is *Issuer) WriteQueueLen() int { return len(is.writeQ) }

// earliestIssue returns the first cycle at or after now the controller may
// issue a path.
func (is *Issuer) earliestIssue(now uint64) uint64 {
	if is.prevDone > now {
		return is.prevDone
	}
	return now
}

// record audits the obliviousness property this defence provides: no issue
// may start later than both the dummy deadline and the previous path's
// completion (the controller must never have been observably idle).
func (is *Issuer) record(slot uint64) {
	st := is.c.st
	st.PathsIssued++
	st.QueueDepth.Observe(uint64(len(is.writeQ)))
	// One path access per issue slot: if this slot's access armed the
	// flight recorder, sample the on-chip queue depths alongside it and
	// close the access's tracing window.
	if fl := is.c.fl; fl.Armed() {
		fl.Record(flight.Event{Start: slot, Arg: uint64(is.c.StashLen()),
			Aux: uint64(len(is.writeQ)), Kind: flight.KindOccupancy})
		fl.Disarm()
	}
	if is.t > 0 && is.haveIssued {
		limit := is.lastIssue + is.t
		if is.prevDone > limit {
			limit = is.prevDone
		}
		if slot > limit {
			st.NonUniformIssues++
		}
	}
	is.lastIssue = slot
	is.haveIssued = true
	is.slotIdx++
	if st.EpochInterval > 0 && st.PathsIssued%st.EpochInterval == 0 {
		st.Epochs = append(st.Epochs, Epoch{
			Paths:    st.PathsIssued,
			Cycle:    slot,
			ByType:   st.Paths.Paths,
			Served:   st.ServedRequests,
			StashLen: is.c.StashLen(),
		})
	}
}

// finish notes the completion time of the path issued last.
func (is *Issuer) finish(done uint64) {
	if done > is.prevDone {
		is.prevDone = done
	}
}

// drainFreeWrites completes queued writes that need no path access (stash
// content updates, LLC-D reinserts with resident PosMap entries). These
// consume no issue.
func (is *Issuer) drainFreeWrites(now uint64) {
	is.drainDemotions()
	for len(is.writeQ) > 0 {
		served, _ := is.c.ServeOnChip(now, is.writeQ[0])
		if !served {
			return
		}
		is.writeQ = is.writeQ[1:]
	}
}

// AdvanceTo simulates the controller up to cycle now with no demand read
// waiting: pending background work (eviction pressure, posted writes)
// issues back-to-back, and idle stretches are broken by dummies every T
// cycles. Without timing protection only the real work runs.
func (is *Issuer) AdvanceTo(now uint64) {
	is.drainFreeWrites(now)
	prevStash := -1
	for {
		if is.c.StashOverfull() || len(is.writeQ) > 0 {
			if len(is.writeQ) == 0 {
				if is.c.StashLen() == prevStash {
					break // eviction is not making progress; yield
				}
				prevStash = is.c.StashLen()
			} else {
				prevStash = -1
			}
			t := is.earliestIssue(0)
			if t > now {
				return
			}
			is.issueBackground(t)
			is.drainFreeWrites(is.prevDone)
			continue
		}
		prevStash = -1
		if is.t == 0 {
			return
		}
		// Idle: the next dummy is due T after the last issue, but never
		// before the previous path drained.
		d := is.lastIssue + is.t
		if t := is.earliestIssue(0); t > d {
			d = t
		}
		if d > now {
			return
		}
		is.issueBackground(d)
	}
}

// issueBackground performs one background path access at time slot.
func (is *Issuer) issueBackground(slot uint64) {
	if is.c.rho != nil && is.rhoSlotSmall() {
		done := is.c.rhoBackgroundSlot(slot)
		is.record(slot)
		is.finish(done)
		return
	}
	done := is.backgroundWork(slot)
	is.record(slot)
	is.finish(done)
}

// backgroundWork performs one path access worth of background work at time
// slot and returns its completion time.
func (is *Issuer) backgroundWork(slot uint64) uint64 {
	if is.c.StashOverfull() {
		return is.c.backgroundEvict(slot)
	}
	is.drainFreeWrites(slot)
	if len(is.writeQ) > 0 {
		completed, done := is.c.PathStep(slot, is.writeQ[0])
		if completed {
			is.writeQ = is.writeQ[1:]
		}
		return done
	}
	if done, ok := is.tryDWB(slot); ok {
		return done
	}
	return is.c.dummyPath(slot)
}

// tryDWB converts the dummy issue into an early write-back step when a
// candidate is in flight or can be found (Section IV-D).
func (is *Issuer) tryDWB(slot uint64) (done uint64, ok bool) {
	if is.dwbSrc == nil {
		return 0, false
	}
	proactive := is.c.cfg.Scheme.ProactiveRemap
	if is.dwbStage == 0 {
		addr, found := is.dwbSrc.FindCandidate(slot)
		if !found {
			return 0, false
		}
		is.dwbTarget = block.ID(addr)
		is.dwbStage = is.c.dwbStage(is.dwbTarget)
		if proactive && is.dwbStage == 1 {
			// PosMap state already resident: the eviction is already
			// free; nothing to prefetch for this candidate.
			is.dwbStage = 0
			return 0, false
		}
	} else if !is.dwbSrc.StillCandidate(uint64(is.dwbTarget)) {
		// The pointed entry was touched or evicted: abort (Stage=0) and
		// let this issue carry a pure dummy.
		is.dwbStage = 0
		is.c.st.DWBAborted++
		return 0, false
	}
	stage, done, usedPath := is.c.dwbStep(slot, is.dwbTarget, is.dwbStage)
	is.dwbStage = stage
	if proactive && stage == 1 {
		// Future-work mode (Section IV-D): the dummy slots prefetch the
		// candidate's PosMap blocks only — the data block stays in the
		// LLC (it is not even in the tree under LLC-D). Done.
		is.dwbStage = 0
		is.c.st.ProactiveRemaps++
	} else if stage == 0 {
		is.dwbSrc.MarkClean(uint64(is.dwbTarget))
		is.c.st.DWBCompleted++
	}
	if !usedPath {
		// The stage completed on-chip; this issue still needs a path.
		return 0, false
	}
	is.c.st.DWBConverted++
	return done, true
}

// demandSlot returns the time the waiting demand step may issue, first
// running anything that outranks it (background eviction, and under ρ the
// other tree's turns in the fixed pattern).
func (is *Issuer) demandSlot(now uint64, j Job) uint64 {
	is.AdvanceTo(now)
	// Cap consecutive eviction issues so a pathologically full stash (e.g.
	// an over-aggressive IR-Alloc profile on a random trace) degrades to
	// slow progress instead of livelock.
	const maxEvictRun = 16
	evictions := 0
	for {
		slot := is.earliestIssue(now)
		if is.c.StashOverfull() && evictions < maxEvictRun {
			evictions++
			done := is.c.backgroundEvict(slot)
			is.record(slot)
			is.finish(done)
			continue
		}
		if is.c.rho != nil && is.rhoSlotSmall() != (is.c.NextStepKind(j) == StepSmall) {
			// Wrong turn in the fixed main:small issue pattern; it cannot
			// be violated, so this turn carries background work.
			var done uint64
			if is.rhoSlotSmall() {
				done = is.c.rhoBackgroundSlot(slot)
			} else {
				done = is.backgroundWork(slot)
			}
			is.record(slot)
			is.finish(done)
			continue
		}
		return slot
	}
}

// ReadBlock services a demand read miss for data block addr arriving at
// cycle now. It returns the completion cycle. The call simulates everything
// the controller would have done in between — dummy insertion, posted-write
// draining, IR-DWB conversion — exactly as in hardware.
func (is *Issuer) ReadBlock(now uint64, addr block.ID) uint64 {
	// Request spans have their own 1-in-N counter (one request spans many
	// path accesses); sampled ones additionally accumulate the cycles the
	// demand steps spent waiting for pacing slots.
	if !is.c.fl.SampleRequest() {
		return is.readBlock(now, addr, nil)
	}
	var wait uint64
	done := is.readBlock(now, addr, &wait)
	is.c.fl.Record(flight.Event{Start: now, End: done, Arg: uint64(addr),
		Aux: wait, Kind: flight.KindRequest})
	return done
}

// readBlock is ReadBlock's engine; wait, when non-nil, accumulates the
// cycles the demand steps spent queued behind pacing slots.
func (is *Issuer) readBlock(now uint64, addr block.ID, wait *uint64) uint64 {
	j := Job{Addr: addr}
	is.AdvanceTo(now)
	if is.readForWQ(addr) {
		// Store-buffer forward: the block is parked in the posted-write
		// queue (LLC-D reinsert or ρ demotion in flight).
		is.c.st.StashHits++
		is.c.st.ServedRequests++
		return now + is.c.o.OnChipLatency
	}
	t := now
	for {
		if served, done := is.c.ServeOnChip(t, j); served {
			return done
		}
		slot := is.demandSlot(t, j)
		if wait != nil && slot > t {
			*wait += slot - t
		}
		// Work run while waiting may have changed the block's state (a ρ
		// install may have demoted it into the write queue, a PLB fill may
		// have made it servable on-chip), so re-check before spending a
		// path access.
		if is.readForWQ(addr) {
			is.c.st.StashHits++
			is.c.st.ServedRequests++
			return slot + is.c.o.OnChipLatency
		}
		if served, done := is.c.ServeOnChip(slot, j); served {
			return done
		}
		completed, done := is.c.PathStep(slot, j)
		is.record(slot)
		is.finish(done)
		t = done
		if completed {
			return done
		}
	}
}

// PostWrite enqueues a write-back (dirty eviction, or any eviction under
// LLC-D) at cycle now. If the posted-write queue is full the core stalls;
// the returned cycle is when the CPU may proceed (now when no stall).
func (is *Issuer) PostWrite(now uint64, addr block.ID) uint64 {
	is.AdvanceTo(now)
	is.writeQ = append(is.writeQ, Job{Addr: addr, Write: true})
	t := now
	for len(is.writeQ) > is.maxWriteQ {
		is.issueBackground(is.earliestIssue(t))
		t = is.prevDone
		is.drainFreeWrites(t)
	}
	return t
}

// readForWQ reports whether addr is parked in the posted-write queue, in
// which case a read is forwarded from the queue (store-buffer forwarding).
// Pending ρ demotions are folded in first so a just-demoted block is found.
func (is *Issuer) readForWQ(addr block.ID) bool {
	is.drainDemotions()
	for _, j := range is.writeQ {
		if j.Addr == addr {
			return true
		}
	}
	return false
}
