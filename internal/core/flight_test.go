package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/flight"
	"iroram/internal/rng"
)

// flightRig builds a warmed-up Tiny controller+issuer with the given
// recorder attached to both the controller and the DRAM model.
func flightRig(t *testing.T, fl *flight.Recorder) (*Issuer, *rng.Source, uint64, uint64) {
	t.Helper()
	cfg := config.Tiny()
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c.AttachFlight(fl)
	mem.AttachFlight(fl)
	is := NewIssuer(c, nil)
	r := rng.New(2)
	nd := cfg.ORAM.DataBlocks()
	now := uint64(0)
	for i := 0; i < 4000; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
	return is, r, nd, now
}

// TestFlightDisabledZeroAllocs pins the tentpole's zero-cost-when-off
// contract: with no recorder attached (the production default), a
// steady-state demand access still performs no heap allocations. Wired
// into `make alloccheck` via cmd/benchjson's PathAccess gate; this test
// is the in-tree twin.
func TestFlightDisabledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race instrumentation")
	}
	is, r, nd, now := flightRig(t, nil)
	avg := testing.AllocsPerRun(400, func() {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	})
	if avg != 0 {
		t.Errorf("tracing disabled: ReadBlock allocates %.2f times per access, want 0", avg)
	}
}

// TestFlightEnabledZeroAllocs pins the stronger property: even with a
// recorder armed on every access, recording into the preallocated ring
// allocates nothing per access.
func TestFlightEnabledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race instrumentation")
	}
	is, r, nd, now := flightRig(t, flight.New(1024, 1))
	avg := testing.AllocsPerRun(400, func() {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	})
	if avg != 0 {
		t.Errorf("tracing enabled: ReadBlock allocates %.2f times per access, want 0", avg)
	}
}

// TestFlightAccessStructure checks the span protocol: each sampled
// access contributes exactly one whole-access span, one span per phase,
// and one occupancy sample (the issuer's disarm point), and access spans
// carry valid path types.
func TestFlightAccessStructure(t *testing.T) {
	fl := flight.New(1<<20, 4)
	is, r, nd, now := flightRig(t, fl)
	_ = is
	_ = r
	_ = nd
	_ = now
	tr := fl.Snapshot()
	if tr.Dropped != 0 {
		t.Fatalf("ring dropped %d events; enlarge the test capacity", tr.Dropped)
	}
	var counts [8]uint64
	for _, e := range tr.Events {
		counts[e.Kind]++
		switch e.Kind {
		case flight.KindAccess, flight.KindPhaseRead, flight.KindPhaseDecrypt:
			if int(e.Sub) >= block.NumPathTypes {
				t.Fatalf("span kind %v carries invalid path type %d", e.Kind, e.Sub)
			}
			if e.End < e.Start {
				t.Fatalf("span kind %v ends before it starts: %+v", e.Kind, e)
			}
		}
	}
	sampled := fl.SampledAccesses()
	if sampled == 0 {
		t.Fatal("no accesses sampled")
	}
	for _, k := range []flight.Kind{flight.KindAccess, flight.KindPhaseRead,
		flight.KindPhaseDecrypt, flight.KindPhaseWrite, flight.KindOccupancy} {
		if counts[k] != sampled {
			t.Errorf("%v events = %d, want one per sampled access (%d)",
				k, counts[k], sampled)
		}
	}
	if counts[flight.KindDramRun] == 0 {
		t.Error("no DRAM run events recorded for sampled accesses")
	}
	if counts[flight.KindRequest] == 0 {
		t.Error("no request spans recorded")
	}
}

// TestFlightObservesOnly pins the no-perturbation contract: the same
// workload with and without a recorder produces identical controller
// statistics.
func TestFlightObservesOnly(t *testing.T) {
	run := func(fl *flight.Recorder) (uint64, uint64) {
		cfg := config.Tiny().WithScheme(config.IROramScheme())
		mem := dram.New(cfg.DRAM)
		c, err := NewController(cfg, mem, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		c.AttachFlight(fl)
		mem.AttachFlight(fl)
		is := NewIssuer(c, nil)
		r := rng.New(2)
		nd := cfg.ORAM.DataBlocks()
		now := uint64(0)
		for i := 0; i < 3000; i++ {
			now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
		}
		return now, c.st.PathsIssued
	}
	offDone, offPaths := run(nil)
	onDone, onPaths := run(flight.New(512, 3))
	if offDone != onDone || offPaths != onPaths {
		t.Errorf("tracing perturbed the simulation: off (done %d, paths %d), on (done %d, paths %d)",
			offDone, offPaths, onDone, onPaths)
	}
}
