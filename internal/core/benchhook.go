package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
)

// EvictBenchmark is the body of BenchmarkEvict. It lives in the package
// (not a _test file) because the write phase it measures — evictOntoPath,
// the stash classification plus bucket fills — is unexported, and
// cmd/benchjson snapshots the same body programmatically via
// testing.Benchmark; the root bench_test.go wraps it for `make bench`.
//
// One op is a full stash round-trip without DRAM timing: read a random
// path's blocks into the stash, then drain them back with the single-pass
// deepest-first eviction. That isolates the structures PR 4 swaps (the
// open-addressed stash index, the per-level candidate lists) from memory-
// model arithmetic.
func EvictBenchmark(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	// Warm up through the issuer so the stash, tree and scratch buffers
	// reach their steady-state shape.
	is := NewIssuer(c, nil)
	r := rng.New(2)
	nd := cfg.ORAM.DataBlocks()
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := block.Leaf(r.Uint64n(c.o.LeafCount()))
		c.readBuf = c.tr.ReadPath(leaf, c.readBuf[:0])
		if c.top != nil {
			c.readBuf = c.top.ReadPath(leaf, c.readBuf)
		}
		for _, e := range c.readBuf {
			c.fstash.Insert(e)
		}
		c.evictBuf = evictOntoPath(c.fstash, c.tr, c.top, c.o.Z, c.minLevel,
			c.o.Levels, leaf, nil, c.evictList, c.evictBuf, nil, nil)
	}
}
