package core

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/posmap"
	"iroram/internal/tree"
)

// Job is one LLC-side request being serviced: a demand read miss, or a
// write-back (dirty eviction under the normal policy; any eviction under
// LLC-D, where clean blocks must also rejoin the tree).
type Job struct {
	Addr  block.ID
	Write bool
}

// ServeOnChip performs every protocol step the job can take without a path
// access: F-Stash and S-Stash hits, PLB-resident PosMap resolution followed
// by a tree-top hit (the baseline's dedicated-cache hit), and LLC-D
// reinsertions whose PosMap1 block is resident. served=false means the
// job's next step requires a path access (see PathStep).
func (c *Controller) ServeOnChip(now uint64, j Job) (served bool, done uint64) {
	a := j.Addr
	if c.pm.Kind(a) != posmap.Data {
		panic(fmt.Sprintf("core: LLC request for non-data block %v", a))
	}
	done = now + c.o.OnChipLatency

	// 1. F-Stash: both policies serve and keep the block stashed; a write
	// updates content in place.
	if _, ok := c.fstash.Lookup(a); ok {
		c.st.StashHits++
		c.st.ServedRequests++
		return true, done
	}
	// ρ: blocks resident in the small tree's stash are on-chip too.
	if c.rho != nil {
		if _, ok := c.rho.fstash.Lookup(a); ok {
			c.st.StashHits++
			c.st.ServedRequests++
			return true, done
		}
	}
	// 2. IR-Stash address index: a hit costs no PosMap access, no path
	// access, no remap (Section IV-C).
	if c.topIdx != nil {
		if _, ok := c.topIdx.LookupByAddr(a); ok {
			c.st.SStashHits++
			c.st.ServedRequests++
			return true, done
		}
	}
	// 3. ρ: the small tree's position metadata is small enough to live
	// on-chip (the point of a shallower tree), so membership is known
	// before any PosMap work; residents need only a small-tree path.
	if c.rho != nil {
		if _, ok := c.rho.member.Get(a); ok {
			return false, 0
		}
	}
	// 4. PosMap resolution, on-chip part only.
	pm1 := c.pm.Pos1For(a)
	if !c.posResident(pm1, true) {
		return false, 0 // needs PTp path(s)
	}
	leaf := c.pm.Leaf(a)
	if !leaf.Valid() {
		// The block is out of the tree: under LLC-D (or ρ demotion) it is
		// being written back. Reinsert: remap, stash, dirty the PosMap1
		// entry — all on-chip.
		if !j.Write {
			panic(fmt.Sprintf("core: read for unmapped block %v", a))
		}
		c.reinsert(a, pm1)
		c.st.ServedRequests++
		return true, done
	}
	// 5. Tree-top hit (baseline dedicated cache): now that the leaf is
	// known, an on-chip hit is served with no path access and no remap.
	if c.top != nil {
		if lvl, ok := c.top.Find(a, leaf); ok {
			c.st.TopHits++
			c.st.HitLevels.Add(lvl)
			c.st.ServedRequests++
			return true, done
		}
	}
	return false, 0
}

// reinsert returns an out-of-tree block to the stash under a fresh leaf and
// dirties its PosMap1 entry (which the caller has ensured is resident).
func (c *Controller) reinsert(a block.ID, pm1 block.ID) {
	newLeaf := c.remap(a)
	c.fstash.Insert(tree.Entry{Addr: a, Leaf: newLeaf})
	c.plb.MarkDirty(uint64(pm1))
}

// PathStep performs exactly one path access toward completing the job —
// PTp(Pos2), then PTp(Pos1), then the PT_d data path — and reports whether
// the job finished. The issuer calls it once per pacing slot; between
// steps, ServeOnChip is retried because a fetched PosMap block may reveal
// a tree-top hit.
func (c *Controller) PathStep(now uint64, j Job) (completed bool, done uint64) {
	a := j.Addr
	// ρ small-tree data access: membership is on-chip metadata, no PosMap
	// work needed (member blocks carry no main-tree leaf).
	if c.rho != nil {
		if _, ok := c.rho.member.Get(a); ok {
			return true, c.rhoDataAccess(now, a, j.Write)
		}
	}
	pm1 := c.pm.Pos1For(a)
	if !c.posResident(pm1, false) {
		pm2, onChip := c.pm.Parent(pm1)
		if !onChip && !c.posResident(pm2, false) {
			done = c.fetchPosBlock(now, pm2, block.PathPos2, true)
			return false, done
		}
		done = c.fetchPosBlock(now, pm1, block.PathPos1, true)
		return false, done
	}
	c.plb.Access(uint64(pm1), false) // recency for the entry we will read
	leaf := c.pm.Leaf(a)
	if !leaf.Valid() {
		panic(fmt.Sprintf("core: PathStep for unmapped block %v (ServeOnChip should have handled it)", a))
	}
	// Main-tree data access. The access itself reports the level the block
	// was read from (discovered during the gather walk — no separate
	// tree.Find walk); top-segment finds report -1, matching tree.Find's
	// memory-levels-only histogram.
	found, lvl, done := c.treeAccess(now, leaf, a, block.PathData)
	if !found {
		panic(fmt.Sprintf("core: block %v not on its path %d (tree corrupted)", a, leaf))
	}
	if lvl >= 0 {
		c.st.HitLevels.Add(lvl)
	}
	if c.cfg.Scheme.DelayedRemap && !j.Write {
		// LLC-D: discard the mapping; the block now lives only in the LLC
		// and rejoins the tree on eviction. Write-backs (the block was just
		// evicted from the LLC) reinsert like the normal policy below.
		c.pm.Unmap(a)
		c.plb.MarkDirty(uint64(pm1))
	} else if c.rho != nil {
		c.rhoInstall(a)
		c.plb.MarkDirty(uint64(pm1))
	} else {
		newLeaf := c.remap(a)
		c.fstash.Insert(tree.Entry{Addr: a, Leaf: newLeaf})
		c.plb.MarkDirty(uint64(pm1))
	}
	c.st.ServedRequests++
	return true, done
}

// posResident reports whether the PosMap block u is reachable without a
// path access — i.e. whether it is PLB-resident. The paper's baseline is
// explicit that "a PosMap access, if missed in PLB, results in a full path
// access": PLB victims written back into the tree (even ones physically
// sitting in the on-chip tree-top segment) are re-fetched with a path.
// countStats toggles PLB hit/miss accounting so speculative checks (IR-DWB
// stage sizing) stay silent.
func (c *Controller) posResident(u block.ID, countStats bool) bool {
	if c.plb.Contains(uint64(u)) {
		if countStats {
			c.st.PLBHits++
			c.plb.Access(uint64(u), false)
		}
		return true
	}
	if countStats {
		c.st.PLBMisses++
	}
	return false
}

// fetchPosBlock fetches PosMap block u through a full path access, remaps
// it, and installs it in the PLB. A PLB victim is parked in the stash under
// its current (still-secret) leaf; its own parent entry already records that
// leaf, so no extra PosMap update is needed.
func (c *Controller) fetchPosBlock(now uint64, u block.ID, ptype block.PathType,
	countPosPath bool) uint64 {
	leaf := c.pm.Leaf(u)
	// The block may still be parked on-chip (a PLB victim travelling
	// through the stash or the tree top back into memory); the full path
	// access is issued regardless, and the block is extracted from
	// wherever it resides.
	parked := c.fstash.Remove(u)
	if !parked && c.top != nil {
		parked = c.top.Remove(u, leaf)
	}
	found, _, done := c.treeAccess(now, leaf, u, ptype)
	if !found && !parked {
		panic(fmt.Sprintf("core: PosMap block %v not on its path %d", u, leaf))
	}
	c.remap(u)
	if victim := c.plb.Insert(uint64(u), true); victim.Valid {
		v := block.ID(victim.Addr)
		c.fstash.Insert(tree.Entry{Addr: v, Leaf: c.pm.Leaf(v)})
	}
	if countPosPath {
		c.st.PosMapPaths++
	}
	return done
}

// dwbStage computes the Stage register value for an early write-back of
// data block a: 1 if its PosMap1 block is resident, 2 if only PosMap2 is,
// 3 if neither (Section IV-D).
func (c *Controller) dwbStage(a block.ID) int {
	pm1 := c.pm.Pos1For(a)
	if c.posResident(pm1, false) {
		return 1
	}
	pm2, onChip := c.pm.Parent(pm1)
	if onChip || c.posResident(pm2, false) {
		return 2
	}
	return 3
}

// dwbStep performs the path access for one IR-DWB stage and returns the new
// stage value. Stage transitions: 3 -> fetch PosMap2; 2 -> fetch PosMap1;
// 1 -> write the data block (full path access with remap) and 0 means the
// LLC line can be marked clean. usedPath is false when the stage completed
// on-chip (e.g. the block was stashed), leaving the pacing slot free for a
// pure dummy. All paths are accounted as PathDWB: outside the TCB they are
// indistinguishable from the dummies they replace.
func (c *Controller) dwbStep(now uint64, a block.ID, stage int) (newStage int, done uint64, usedPath bool) {
	switch stage {
	case 3:
		pm2, onChip := c.pm.Parent(c.pm.Pos1For(a))
		// Other work since the Stage register was set may have brought the
		// PosMap block on-chip already; the stage then completes for free.
		if onChip || c.posResident(pm2, false) {
			return 2, now, false
		}
		done = c.fetchPosBlock(now, pm2, block.PathDWB, false)
		return 2, done, true
	case 2:
		pm1 := c.pm.Pos1For(a)
		if c.posResident(pm1, false) {
			return 1, now, false
		}
		done = c.fetchPosBlock(now, pm1, block.PathDWB, false)
		return 1, done, true
	case 1:
		leaf := c.pm.Leaf(a)
		if !leaf.Valid() {
			// Held out of the tree (should not happen: IR-DWB is not
			// combined with LLC-D); treat as an on-chip reinsert.
			c.reinsert(a, c.pm.Pos1For(a))
			return 0, now, false
		}
		if _, ok := c.fstash.Lookup(a); ok {
			return 0, now, false // content updated in the stash
		}
		if c.top != nil {
			if _, ok := c.top.Find(a, leaf); ok {
				return 0, now, false // tree-top resident: on-chip update
			}
		}
		found, _, done := c.treeAccess(now, leaf, a, block.PathDWB)
		if !found {
			panic(fmt.Sprintf("core: DWB target %v not on its path", a))
		}
		newLeaf := c.remap(a)
		c.fstash.Insert(tree.Entry{Addr: a, Leaf: newLeaf})
		c.plb.MarkDirty(uint64(c.pm.Pos1For(a)))
		return 0, done, true
	default:
		panic(fmt.Sprintf("core: invalid DWB stage %d", stage))
	}
}
