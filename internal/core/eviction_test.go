package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
	"iroram/internal/stash"
	"iroram/internal/tree"
)

// TestEvictionDifferential replays every write phase of a long randomized
// workload through both eviction implementations and checks that they agree
// on the one property the experiments depend on: how MANY blocks land at
// each level of the path (both are maximal greedy deepest-first evictions,
// so per-level placement counts are uniquely determined by the stash
// contents even though block SELECTION may differ — see eviction.go).
//
// The reference runs on shadow state snapshotted just before the write
// phase: the F-Stash cloned in storage order (iteration order is part of
// both algorithms' contract) and fresh, empty tree/top structures standing
// in for the just-drained path buckets. That keeps the oracle exact for
// TopNone and the dedicated top cache; IR-Stash is excluded because its
// S-Stash refusals depend on global set occupancy that a fresh shadow
// cannot reproduce.
func TestEvictionDifferential(t *testing.T) {
	schemes := []config.Scheme{
		config.Baseline(),
		{Name: "NoTop", Top: config.TopNone},
	}
	for _, sch := range schemes {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			cfg := config.Tiny().WithScheme(sch)
			mem := dram.New(cfg.DRAM)
			c, err := NewController(cfg, mem, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			is := NewIssuer(c, nil)
			r := rng.New(12)
			nd := cfg.ORAM.DataBlocks()

			liveCounts := make([]int, c.o.Levels)
			refCounts := make([]int, c.o.Levels)
			refused := newEpochSet(int(c.pm.Total()))
			takeBuf := make([]tree.Entry, 0, 64)
			now := uint64(0)

			const accesses = 2500
			for i := 0; i < accesses; i++ {
				// Real demand access for churn: remaps keep the stash and
				// the per-level candidate structure non-trivial.
				now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))

				// One manual path access with the write phase run through
				// both implementations (protocol-wise a background
				// eviction: random leaf, no target).
				leaf := block.Leaf(r.Uint64n(c.o.LeafCount()))
				c.readBuf = c.tr.ReadPath(leaf, c.readBuf[:0])
				if c.top != nil {
					c.readBuf = c.top.ReadPath(leaf, c.readBuf)
				}
				for _, e := range c.readBuf {
					c.fstash.Insert(e)
				}

				// Snapshot for the oracle, preserving storage order.
				shadow := stash.NewFStash(c.fstash.Capacity())
				c.fstash.Each(func(e tree.Entry) { shadow.Insert(e) })
				shadowTr := tree.New(c.o, c.minLevel)
				var shadowTop stash.TopStore
				if c.top != nil {
					shadowTop = stash.NewTopCache(c.o.Levels, c.o.TopLevels, c.o.Z)
				}

				clear(liveCounts)
				clear(refCounts)
				c.evictBuf = evictOntoPath(c.fstash, c.tr, c.top, c.o.Z,
					c.minLevel, c.o.Levels, leaf, nil, c.evictList, c.evictBuf,
					func(e tree.Entry, l int, _ bool) {
						liveCounts[l]++
						if !tree.SameSubtree(leaf, e.Leaf, l, c.o.Levels) {
							t.Fatalf("access %d: illegal placement of %v (leaf %d) at level %d of path %d",
								i, e.Addr, e.Leaf, l, leaf)
						}
					}, nil)
				evictOntoPathReference(shadow, shadowTr, shadowTop, c.o.Z,
					c.minLevel, c.o.Levels, leaf, refused, takeBuf,
					func(e tree.Entry, l int, _ bool) { refCounts[l]++ })

				for l := range liveCounts {
					if liveCounts[l] != refCounts[l] {
						t.Fatalf("access %d leaf %d: placement counts diverge at level %d: single-pass %v, reference %v",
							i, leaf, l, liveCounts, refCounts)
					}
					if liveCounts[l] > c.o.Z[l] {
						t.Fatalf("access %d: %d placements at level %d exceed Z=%d",
							i, liveCounts[l], l, c.o.Z[l])
					}
				}
				if got, want := c.fstash.Len(), shadow.Len(); got != want {
					t.Fatalf("access %d: stash residue diverges: single-pass %d, reference %d", i, got, want)
				}
				c.mem.PostWritePath(now, c.layout.PathPhys(leaf, c.physBuf[:0]), 0)

				if i%500 == 0 {
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("access %d: %v", i, err)
					}
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEvictionGatherFlagDifferential exercises the fused pipeline's calling
// convention: the path's just-read blocks arrive as GatherFlag-marked
// gathered entries (never touching the stash index), while the reference
// oracle gets the same blocks pre-Inserted unflagged — the historical
// shape. Beyond the placement-count and stash-residue parity of
// TestEvictionDifferential, it pins the provenance plumbing itself: every
// placement's fetched bit must equal gathered-set membership, no entry may
// reach onPlace still flagged, and no flag may survive into the stash
// residue (a leaked bit would corrupt the next access's leaf arithmetic).
// A third run per access replays the same inputs through the counts-only
// calling convention — the demand pipeline's bulk-tally branch, which has
// no per-entry callback — and checks its per-level placed/fetched tallies
// against the closure-derived ones.
func TestEvictionGatherFlagDifferential(t *testing.T) {
	schemes := []config.Scheme{
		config.Baseline(),
		{Name: "NoTop", Top: config.TopNone},
	}
	for _, sch := range schemes {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			cfg := config.Tiny().WithScheme(sch)
			mem := dram.New(cfg.DRAM)
			c, err := NewController(cfg, mem, rng.New(21))
			if err != nil {
				t.Fatal(err)
			}
			is := NewIssuer(c, nil)
			r := rng.New(22)
			nd := cfg.ORAM.DataBlocks()

			liveCounts := make([]int, c.o.Levels)
			liveFetched := make([]int, c.o.Levels)
			refCounts := make([]int, c.o.Levels)
			refused := newEpochSet(int(c.pm.Total()))
			takeBuf := make([]tree.Entry, 0, 64)
			gatheredSet := make(map[block.ID]bool)
			bulk := newPlaceCounts(c.o.Levels)
			var gathered2, bulkBuf []tree.Entry
			now := uint64(0)

			const accesses = 2000
			for i := 0; i < accesses; i++ {
				now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))

				// Gather the path the fused way: blocks staged (flagged)
				// instead of stash-inserted.
				leaf := block.Leaf(r.Uint64n(c.o.LeafCount()))
				c.gathered = c.gathered[:0]
				clear(gatheredSet)
				gather := func(e tree.Entry, _ int) {
					gatheredSet[e.Addr] = true
					e.Leaf |= tree.GatherFlag
					c.gathered = append(c.gathered, e)
				}
				c.tr.ReadPathEach(leaf, gather)
				if c.top != nil {
					c.top.ReadPathEach(leaf, gather)
				}

				// Oracle state: the resident stash in storage order, then the
				// gathered blocks appended unflagged — the pre-fused shape.
				shadow := stash.NewFStash(c.fstash.Capacity())
				c.fstash.Each(func(e tree.Entry) { shadow.Insert(e) })
				for _, e := range c.gathered {
					e.Leaf &^= tree.GatherFlag
					shadow.Insert(e)
				}
				shadowTr := tree.New(c.o, c.minLevel)
				var shadowTop stash.TopStore
				if c.top != nil {
					shadowTop = stash.NewTopCache(c.o.Levels, c.o.TopLevels, c.o.Z)
				}

				// Replay state for the bulk-tally convention: the same inputs
				// the live call is about to consume (resident stash clone in
				// storage order, flagged gathered copy, freshly-drained path
				// buckets), snapshotted before the live call mutates them.
				shadow2 := stash.NewFStash(c.fstash.Capacity())
				c.fstash.Each(func(e tree.Entry) { shadow2.Insert(e) })
				gathered2 = append(gathered2[:0], c.gathered...)
				shadowTr2 := tree.New(c.o, c.minLevel)
				var shadowTop2 stash.TopStore
				if c.top != nil {
					shadowTop2 = stash.NewTopCache(c.o.Levels, c.o.TopLevels, c.o.Z)
				}

				clear(liveCounts)
				clear(liveFetched)
				clear(refCounts)
				c.evictBuf = evictOntoPath(c.fstash, c.tr, c.top, c.o.Z,
					c.minLevel, c.o.Levels, leaf, c.gathered, c.evictList, c.evictBuf,
					func(e tree.Entry, l int, fetched bool) {
						liveCounts[l]++
						if fetched {
							liveFetched[l]++
						}
						if e.Leaf&tree.GatherFlag != 0 {
							t.Fatalf("access %d: entry %v reached onPlace still flagged", i, e.Addr)
						}
						if want := gatheredSet[e.Addr]; fetched != want {
							t.Fatalf("access %d: %v placed with fetched=%v, gathered set says %v",
								i, e.Addr, fetched, want)
						}
					}, nil)

				// Bulk replay: identical inputs through the counts-only branch
				// (no per-entry callback — the demand pipeline's shape). Block
				// selection is deterministic in the inputs, so the tallies must
				// equal the closure-derived ones exactly.
				bulk.reset()
				bulkBuf = evictOntoPath(shadow2, shadowTr2, shadowTop2, c.o.Z,
					c.minLevel, c.o.Levels, leaf, gathered2, c.evictList, bulkBuf,
					nil, bulk)
				for l := 0; l < c.o.Levels; l++ {
					if bulk.placed[l] != liveCounts[l] || bulk.fetched[l] != liveFetched[l] {
						t.Fatalf("access %d level %d: bulk tally (placed %d, fetched %d), closure (placed %d, fetched %d)",
							i, l, bulk.placed[l], bulk.fetched[l], liveCounts[l], liveFetched[l])
					}
				}
				if got, want := shadow2.Len(), c.fstash.Len(); got != want {
					t.Fatalf("access %d: bulk-replay stash residue %d, live %d", i, got, want)
				}
				evictOntoPathReference(shadow, shadowTr, shadowTop, c.o.Z,
					c.minLevel, c.o.Levels, leaf, refused, takeBuf,
					func(e tree.Entry, l int, _ bool) { refCounts[l]++ })

				for l := range liveCounts {
					if liveCounts[l] != refCounts[l] {
						t.Fatalf("access %d leaf %d: placement counts diverge at level %d: fused %v, reference %v",
							i, leaf, l, liveCounts, refCounts)
					}
				}
				if got, want := c.fstash.Len(), shadow.Len(); got != want {
					t.Fatalf("access %d: stash residue diverges: fused %d, reference %d", i, got, want)
				}
				c.fstash.Each(func(e tree.Entry) {
					if e.Leaf&tree.GatherFlag != 0 {
						t.Fatalf("access %d: flag leaked into stash residue on %v", i, e.Addr)
					}
				})
				c.mem.PostWritePath(now, c.layout.PathPhys(leaf, c.physBuf[:0]), 0)

				if i%500 == 0 {
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("access %d: %v", i, err)
					}
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPathAccessZeroAllocs pins the PR 3 zero-allocation guarantee: after
// warm-up, a steady-state demand access (including its PosMap recursion,
// eviction and DRAM traffic) performs no heap allocations. Guarded here and
// by the make-check gate on BenchmarkPathAccess allocs/op.
func TestPathAccessZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race instrumentation")
	}
	for _, sch := range []config.Scheme{config.Baseline(), config.IROramScheme()} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			cfg := config.Tiny().WithScheme(sch)
			mem := dram.New(cfg.DRAM)
			c, err := NewController(cfg, mem, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			is := NewIssuer(c, nil)
			r := rng.New(2)
			nd := cfg.ORAM.DataBlocks()
			now := uint64(0)
			// Warm up: let scratch buffers, the stash index and the posted
			// write queue reach steady-state capacity.
			for i := 0; i < 4000; i++ {
				now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
			}
			avg := testing.AllocsPerRun(400, func() {
				now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
			})
			if avg != 0 {
				t.Errorf("steady-state ReadBlock allocates %.2f times per access, want 0", avg)
			}
		})
	}
}
