package core

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/stash"
	"iroram/internal/tree"
)

// rhoState implements a faithful simplification of ρ (Nagarajan et al.,
// "Relaxed Hierarchical ORAM"), the state-of-the-art baseline of Fig 10:
//
//   - a second, smaller ORAM tree (Levels - RhoLevelsDelta levels, Z=RhoZ)
//     holds recently-used blocks, so the common case moves far fewer blocks
//     per path than the main tree;
//   - which tree holds a block is recorded alongside its leaf in the (same)
//     position map, so lookup cost rides the normal PLB/PTp machinery — the
//     member map below is simulation bookkeeping of that field, not an
//     extra on-chip structure;
//   - to defeat timing channels with two path lengths, accesses follow a
//     fixed issue pattern (1 main-tree slot per RhoPattern small-tree
//     slots) with per-slot dummies — the mechanism that hurts mcf in the
//     paper;
//   - small-tree residency is bounded; overflow victims are demoted to the
//     main tree lazily through the posted-write machinery (the paper's
//     delayed remapping, which is where LLC-D comes from).
//
// Simplifications vs the full design are documented in DESIGN.md.
type rhoState struct {
	o       config.ORAM
	tr      *tree.Tree
	layout  *tree.Layout
	top     *stash.TopCache
	physOff uint64
	fstash  *stash.FStash
	// member records which blocks live in the small tree and under which
	// leaf — the simulation bookkeeping of the position-map residency bit.
	// It is consulted on every request (NextStepKind), so it uses the same
	// open-addressed table as the stash index; it is never iterated, so the
	// swap cannot perturb ordering. Values are the leaves, stored as the
	// table's uint32 payload.
	member *stash.AddrTable
	order  []block.ID // FIFO for demotion
	limit   int
	demoteQ []block.ID

	// sched memoizes the small tree's per-leaf DRAM run lists (nil when
	// disabled); nPathBlocks is its fixed per-path block count.
	sched       *dram.PathSched
	nPathBlocks int

	// Paths counts small-tree path accesses for the experiment harness.
	SmallPaths uint64
}

func (c *Controller) initRho() error {
	s := c.cfg.Scheme
	levels := c.o.Levels - s.RhoLevelsDelta
	if levels < 3 {
		return fmt.Errorf("core: rho tree would have %d levels", levels)
	}
	small := c.o
	small.Levels = levels
	// The ρ design keeps the small tree's top on-chip too; cap it so at
	// least four levels stay in memory.
	small.TopLevels = c.o.TopLevels
	if small.TopLevels > levels-4 {
		small.TopLevels = levels - 4
	}
	if small.TopLevels < 0 {
		small.TopLevels = 0
	}
	small.Z = config.Uniform(levels, s.RhoZ)
	slots := small.Z.Slots()
	c.rho = &rhoState{
		o:      small,
		tr:     tree.New(small, small.TopLevels),
		layout: tree.NewLayout(small, small.TopLevels, int(c.mem.RowBlocks())),
		fstash: stash.NewFStash(c.o.StashCapacity),
		member: stash.NewAddrTable(int(slots / 2)),
		limit:  int(slots / 2),
	}
	if small.TopLevels > 0 {
		c.rho.top = stash.NewTopCache(levels, small.TopLevels, small.Z)
	}
	// The small tree shares the DRAM with the main tree, laid out after it.
	c.rho.physOff = tree.NewLayout(c.o, c.minLevel, int(c.mem.RowBlocks())).PhysicalSlots()
	c.rho.nPathBlocks = small.Z.BlocksPerPath(small.TopLevels)
	c.rho.sched = newPathSched(c.mem, c.cfg.DRAM.PathSchedSlots,
		small.LeafCount(), c.rho.nPathBlocks, c.rho.physOff)
	return nil
}

func (r *rhoState) occupied() uint64 {
	n := r.tr.Occupied() + uint64(r.fstash.Len())
	if r.top != nil {
		n += uint64(r.top.Len())
	}
	return n
}

func (r *rhoState) randomLeaf(c *Controller) block.Leaf {
	return block.Leaf(c.rng.Uint64n(r.o.LeafCount()))
}

// rhoPathAccess is the small-tree path primitive, mirroring pathAccess:
// the same fused single-walk pipeline (memoized run-list read phase, one
// gather walk into the small stash, eviction walk, posted run-list write
// phase), with rhoPathAccessReference retaining the multi-walk shape.
func (c *Controller) rhoPathAccess(now uint64, leaf block.Leaf, target block.ID,
	ptype block.PathType) (found bool, done uint64) {
	if c.refPipeline {
		return c.rhoPathAccessReference(now, leaf, target, ptype)
	}
	// Small-tree accesses fill issue slots like main-tree ones, so they
	// sample the flight recorder identically (see Controller.AttachFlight).
	c.fl.SampleAccess()
	r := c.rho
	var readDone uint64
	var runs []dram.Run
	if r.sched != nil {
		runs = c.rhoPathRuns(leaf)
		readDone = c.mem.ServiceRuns(now, runs, false)
	} else {
		c.physBuf = r.layout.PathPhys(leaf, c.physBuf[:0])
		readDone = c.mem.ServicePath(now, c.physBuf, r.physOff, false)
	}
	c.st.PhaseReadCycles += readDone - now

	c.gathered = c.gathered[:0]
	c.gTarget, c.gFound = target, false
	r.tr.ReadPathEach(leaf, c.gatherRho)
	var top stash.TopStore // keep a nil *TopCache a nil interface
	if r.top != nil {
		top = r.top
		r.top.ReadPathEach(leaf, c.gatherRho)
	}
	found = c.gFound
	// Write phase: the same single-pass eviction as the main tree, reusing
	// the controller's scratch (the two trees never evict concurrently).
	c.evictBuf = evictOntoPath(r.fstash, r.tr, top, r.o.Z, r.o.TopLevels,
		r.o.Levels, leaf, c.gathered, c.evictList, c.evictBuf, nil, nil)

	// As in the main tree, the write phase is posted to DRAM.
	var writeDone uint64
	if runs != nil {
		writeDone = c.mem.PostWriteRuns(readDone, runs)
	} else {
		writeDone = c.mem.PostWritePath(readDone, c.physBuf, r.physOff)
	}
	c.st.PhaseWriteBackCycles += writeDone - readDone
	c.st.Paths.Add(ptype, r.nPathBlocks, r.nPathBlocks)
	done = readDone + c.o.OnChipLatency
	c.st.PathLatency[ptype].Observe(done - now)
	if c.fl.Armed() {
		c.recordPhases(now, readDone, writeDone, done, leaf, ptype)
	}
	r.SmallPaths++
	return found, done
}

// rhoPathRuns is pathRuns for the small tree's schedule cache.
func (c *Controller) rhoPathRuns(leaf block.Leaf) []dram.Run {
	r := c.rho
	if runs, ok := r.sched.Lookup(uint64(leaf)); ok {
		return runs
	}
	c.physBuf = r.layout.PathPhys(leaf, c.physBuf[:0])
	return r.sched.Install(uint64(leaf), c.physBuf)
}

// rhoDataAccess services a demand access for a small-tree resident block:
// one small-tree path access, then remap within the small tree. A hit in
// the small tree's on-chip top is served without a path access, like the
// main tree's dedicated cache.
func (c *Controller) rhoDataAccess(now uint64, a block.ID, write bool) uint64 {
	r := c.rho
	rawLeaf, ok := r.member.Get(a)
	if !ok {
		panic(fmt.Sprintf("core: rhoDataAccess for non-member %v", a))
	}
	leaf := block.Leaf(rawLeaf)
	if r.top != nil {
		if _, hit := r.top.Find(a, leaf); hit {
			c.st.TopHits++
			c.st.ServedRequests++
			return now + c.o.OnChipLatency
		}
	}
	found, done := c.rhoPathAccess(now, leaf, a, block.PathData)
	if !found {
		if _, stashed := r.fstash.Lookup(a); !stashed {
			panic(fmt.Sprintf("core: rho member %v not on small path %d", a, leaf))
		}
	}
	newLeaf := r.randomLeaf(c)
	r.member.Put(a, uint32(newLeaf))
	r.fstash.Insert(tree.Entry{Addr: a, Leaf: newLeaf})
	c.st.ServedRequests++
	return done
}

// rhoInstall moves a block just fetched from the main tree into the small
// tree, demoting the oldest resident when over the occupancy bound. The
// block was already extracted from the main tree by the fetching path
// access; its main-tree mapping is discarded until demotion.
func (c *Controller) rhoInstall(a block.ID) {
	r := c.rho
	c.pm.Unmap(a)
	leaf := r.randomLeaf(c)
	r.member.Put(a, uint32(leaf))
	r.fstash.Insert(tree.Entry{Addr: a, Leaf: leaf})
	r.order = append(r.order, a)
	for r.member.Len() > r.limit && len(r.order) > 0 {
		victim := r.order[0]
		r.order = r.order[1:]
		rawLeaf, ok := r.member.Get(victim)
		if !ok {
			continue // already demoted
		}
		vleaf := block.Leaf(rawLeaf)
		removed := r.fstash.Remove(victim) || r.tr.Remove(victim, vleaf) ||
			(r.top != nil && r.top.Remove(victim, vleaf))
		if !removed {
			panic(fmt.Sprintf("core: rho member %v not in small structures", victim))
		}
		r.member.Delete(victim)
		r.demoteQ = append(r.demoteQ, victim)
	}
}

// rhoBackgroundSlot fills a small-tree pacing slot: background eviction of
// the small stash if pressured, else a small-tree dummy path.
func (c *Controller) rhoBackgroundSlot(now uint64) uint64 {
	r := c.rho
	if r.fstash.Overfull(c.o.StashEvictThreshold) {
		_, done := c.rhoPathAccess(now, r.randomLeaf(c), block.Invalid, block.PathEvict)
		c.st.BgEvictions++
		c.st.BgEvictionCycles += done - now
		return done
	}
	_, done := c.rhoPathAccess(now, r.randomLeaf(c), block.Invalid, block.PathDummy)
	c.st.DummyPaths++
	return done
}

// StepKind classifies which pacing-slot type a job's next path access
// needs under the ρ issue pattern.
type StepKind uint8

const (
	// StepMain needs a main-tree slot (PosMap fetches, main data paths,
	// demotion reinserts).
	StepMain StepKind = iota
	// StepSmall needs a small-tree slot.
	StepSmall
)

// NextStepKind inspects the job's next path access without performing it.
func (c *Controller) NextStepKind(j Job) StepKind {
	if c.rho == nil {
		return StepMain
	}
	// Small-tree membership is on-chip metadata: residents go straight to
	// a small-tree slot; everything else (PosMap fetches, main data paths,
	// demotion reinserts) needs a main-tree slot.
	if _, ok := c.rho.member.Get(j.Addr); ok {
		return StepSmall
	}
	return StepMain
}

// rhoSlotSmall reports whether the current pacing slot belongs to the small
// tree under the fixed 1:RhoPattern issue pattern.
func (is *Issuer) rhoSlotSmall() bool {
	period := uint64(is.c.cfg.Scheme.RhoPattern) + 1
	return is.slotIdx%period != 0
}

// drainDemotions moves pending ρ demotions into the posted-write queue.
func (is *Issuer) drainDemotions() {
	if is.c.rho == nil {
		return
	}
	for _, a := range is.c.rho.demoteQ {
		is.writeQ = append(is.writeQ, Job{Addr: a, Write: true})
	}
	is.c.rho.demoteQ = is.c.rho.demoteQ[:0]
}
