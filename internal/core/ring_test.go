package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
)

func newRingSystem(t *testing.T, sch config.Scheme) (*Issuer, *Controller) {
	t.Helper()
	cfg := config.Tiny().WithScheme(sch)
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewIssuer(c, nil), c
}

func TestRingBasicOperation(t *testing.T) {
	is, c := newRingSystem(t, config.RingScheme())
	r := rng.New(9)
	now := uint64(0)
	for i := 0; i < 400; i++ {
		a := block.ID(r.Uint64n(c.pm.DataBlocks()))
		now = is.ReadBlock(now+800, a)
	}
	if c.st.ServedRequests != 400 {
		t.Fatalf("served %d", c.st.ServedRequests)
	}
	if c.ring.EvictPaths == 0 {
		t.Fatal("no eviction paths under Ring")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.st.NonUniformIssues != 0 {
		t.Errorf("%d issue-gap violations", c.st.NonUniformIssues)
	}
}

// TestRingReadsMoveFewerBlocks is the protocol's point: the per-access DRAM
// traffic (reads amortized with reshuffles and evictions) is well below the
// Path ORAM baseline's 2*L*Z blocks.
func TestRingReadsMoveFewerBlocks(t *testing.T) {
	run := func(sch config.Scheme) float64 {
		is, c := newRingSystem(t, sch)
		r := rng.New(3)
		now := uint64(0)
		for i := 0; i < 400; i++ {
			now = is.ReadBlock(now+600, block.ID(r.Uint64n(c.pm.DataBlocks())))
		}
		return float64(c.st.Paths.BlocksRead+c.st.Paths.BlocksWrit) /
			float64(c.st.Paths.Total())
	}
	ring := run(config.RingScheme())
	path := run(config.Baseline())
	if ring >= path {
		t.Errorf("Ring moves %.1f blocks per access, Path ORAM %.1f", ring, path)
	}
}

// TestRingEvictionCadence: one eviction path per RingA reads.
func TestRingEvictionCadence(t *testing.T) {
	is, c := newRingSystem(t, config.RingScheme())
	r := rng.New(5)
	now := uint64(0)
	for i := 0; i < 300; i++ {
		now = is.ReadBlock(now+600, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	reads := c.st.Paths.Total() - c.st.Paths.Paths[block.PathEvict]
	wantEvicts := reads / uint64(c.cfg.Scheme.RingA)
	got := c.ring.EvictPaths
	if got < wantEvicts/2 || got > wantEvicts*2 {
		t.Errorf("evict paths %d for %d reads (A=%d), want about %d",
			got, reads, c.cfg.Scheme.RingA, wantEvicts)
	}
}

// TestRingReshufflesHappen: sustained reads must exhaust bucket dummies and
// trigger early reshuffles.
func TestRingReshufflesHappen(t *testing.T) {
	is, c := newRingSystem(t, config.RingScheme())
	r := rng.New(7)
	now := uint64(0)
	for i := 0; i < 600; i++ {
		now = is.ReadBlock(now+500, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	if c.ring.Reshuffles == 0 {
		t.Error("no early reshuffles despite sustained reads")
	}
}

// TestRingStashBounded: eviction paths must keep draining the stash.
func TestRingStashBounded(t *testing.T) {
	is, c := newRingSystem(t, config.RingScheme())
	r := rng.New(11)
	now := uint64(0)
	for i := 0; i < 800; i++ {
		now = is.ReadBlock(now+400, block.ID(r.Uint64n(c.pm.DataBlocks())))
	}
	if c.fstash.Len() > c.o.StashCapacity {
		t.Errorf("stash at %d over capacity %d", c.fstash.Len(), c.o.StashCapacity)
	}
}

func TestRingComposesWithIRAlloc(t *testing.T) {
	// The Section VII orthogonality claim: Ring + the IR-Alloc profile
	// still serves correctly and moves fewer eviction/reshuffle blocks.
	run := func(sch config.Scheme) (uint64, uint64) {
		is, c := newRingSystem(t, sch)
		r := rng.New(13)
		now := uint64(0)
		for i := 0; i < 400; i++ {
			now = is.ReadBlock(now+600, block.ID(r.Uint64n(c.pm.DataBlocks())))
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return c.st.Paths.BlocksRead + c.st.Paths.BlocksWrit, c.st.ServedRequests
	}
	ringBlocks, served := run(config.RingScheme())
	allocBlocks, served2 := run(config.RingIRAlloc())
	if served != 400 || served2 != 400 {
		t.Fatalf("served %d / %d", served, served2)
	}
	if allocBlocks >= ringBlocks {
		t.Errorf("Ring+IR-Alloc moved %d blocks, plain Ring %d", allocBlocks, ringBlocks)
	}
}

func TestReverseLexLeafCoversTree(t *testing.T) {
	_, c := newRingSystem(t, config.RingScheme())
	seen := map[block.Leaf]bool{}
	n := int(c.o.LeafCount())
	for i := 0; i < n; i++ {
		seen[c.reverseLexLeaf(uint64(i))] = true
	}
	if len(seen) != n {
		t.Errorf("reverse-lex order visited %d of %d leaves", len(seen), n)
	}
	// Consecutive evictions must diverge early (opposite tree halves).
	a, b := c.reverseLexLeaf(0), c.reverseLexLeaf(1)
	half := block.Leaf(c.o.LeafCount() / 2)
	if (a < half) == (b < half) {
		t.Errorf("consecutive evictions %d and %d in the same half", a, b)
	}
}
