package core

import (
	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/stash"
	"iroram/internal/tree"
)

// This file implements the write phase of a path access — draining the
// F-Stash into the just-read path, deepest bucket first.
//
// The hot implementation (evictOntoPath) is the single-pass formulation of
// the original Path ORAM paper (Stefanov et al.): one walk over the stash
// classifies every entry by its deepest placeable level on the current path
// (tree.DeepestLevel, a leaf-XOR + leading-zero count), then buckets are
// filled deepest-first from the per-level lists, with entries that did not
// fit spilling toward the root. Cost is O(stash + path). The pre-PR3
// formulation — one full stash scan per tree level via
// stash.FStash.TakeForBucket — is O(levels × stash) and is retained below
// (evictOntoPathReference) as the oracle for the differential tests in
// eviction_test.go.
//
// The two implementations place the same NUMBER of blocks at every level of
// the path (both are maximal greedy deepest-first evictions; see
// TestEvictionDifferential), but may pick DIFFERENT blocks when more
// candidates fit a level than the bucket holds: the reference scan picks by
// stash storage order, the single-pass picks deepest-candidates-first.
// Recorded experiment tables were re-baselined for this tie-break change in
// EXPERIMENTS.md (PR 3); both orders are deterministic, so tables remain
// byte-identical across runs and -jobs values.

// evictOntoPath drains fs onto the path of leaf: memory-resident levels
// [minLevel, levels) are bulk-filled into tr, and — when top is non-nil —
// the on-chip levels [0, minLevel) are filled per-entry through top.Fill,
// honoring its refusals (S-Stash set conflicts, the paper's "skip picking
// this block for this round" rule); refused blocks stay candidates for
// shallower levels, exactly like the reference scan. Entries that fit
// nowhere return to the stash.
//
// lists (at least `levels` slices) and buf are caller-owned scratch reused
// across paths; onPlace, when non-nil, observes every placement. The
// returned slice is buf's (possibly grown) backing for the caller to keep.
func evictOntoPath(fs *stash.FStash, tr *tree.Tree, top stash.TopStore,
	z config.ZProfile, minLevel, levels int, leaf block.Leaf,
	gathered []tree.Entry, lists [][]tree.Entry, buf []tree.Entry,
	onPlace func(e tree.Entry, level int)) []tree.Entry {

	low := minLevel
	if top != nil {
		low = 0
	}
	for l := low; l < levels; l++ {
		lists[l] = lists[l][:0]
	}
	// gathered holds the blocks the fused read walk just pulled off the
	// path, kept out of the stash index because this drain would remove
	// them again immediately; DrainForPath classifies them and the resident
	// entries in the exact order Insert-then-TakeForPath would have. Every
	// configured scheme has low == 0 (a tree-top store or minLevel 0), so
	// the general TakeForPath branch only serves callers that pre-inserted
	// (gathered == nil: the reference pipelines and the eviction tests).
	if low == 0 {
		fs.DrainForPath(leaf, levels, lists, gathered)
	} else {
		for _, e := range gathered {
			fs.Insert(e)
		}
		fs.TakeForPath(leaf, low, levels, lists)
	}

	// buf[head:] is the candidate pool for the current level: entries whose
	// deepest placeable level was deeper but which did not fit there. Each
	// level appends its own deepest-here entries behind the spillover, so
	// pool order is deterministic: deeper-classified entries first.
	buf = buf[:0]
	head := 0
	for l := levels - 1; l >= minLevel; l-- {
		buf = append(buf, lists[l]...)
		n := z[l]
		if avail := len(buf) - head; n > avail {
			n = avail
		}
		take := buf[head : head+n]
		if onPlace != nil {
			for _, e := range take {
				onPlace(e, l)
			}
		}
		tr.FillBucket(l, leaf, take)
		head += n
	}
	if top != nil {
		for l := minLevel - 1; l >= 0; l-- {
			buf = append(buf, lists[l]...)
			placed, w := 0, head
			for r := head; r < len(buf); r++ {
				e := buf[r]
				if placed < z[l] && top.Fill(l, leaf, e) {
					if onPlace != nil {
						onPlace(e, l)
					}
					placed++
					continue
				}
				buf[w] = e
				w++
			}
			buf = buf[:w]
		}
	}
	for _, e := range buf[head:] {
		fs.Insert(e)
	}
	return buf[:0]
}

// evictOntoPathReference is the pre-PR3 write phase, kept unexported as the
// differential-test oracle: for each level, leaf-to-root, rescan the whole
// stash for blocks placeable in that level's bucket (TakeForBucket), then
// fill the on-chip segment one block at a time, re-stashing refused blocks.
// refused and takeBuf are caller-owned scratch (refused is an epoch-stamped
// set reset per level, preserving the historical retry-at-shallower-levels
// semantics with an O(1) clear instead of a map walk).
func evictOntoPathReference(fs *stash.FStash, tr *tree.Tree, top stash.TopStore,
	z config.ZProfile, minLevel, levels int, leaf block.Leaf,
	refused *epochSet, takeBuf []tree.Entry,
	onPlace func(e tree.Entry, level int)) {

	for l := levels - 1; l >= minLevel; l-- {
		take := fs.TakeForBucket(leaf, l, levels, z[l], nil, takeBuf[:0])
		if onPlace != nil {
			for _, e := range take {
				onPlace(e, l)
			}
		}
		tr.FillBucket(l, leaf, take)
	}
	if top == nil {
		return
	}
	for l := minLevel - 1; l >= 0; l-- {
		refused.Reset()
		for placed := 0; placed < z[l]; {
			cand := fs.TakeForBucket(leaf, l, levels, 1,
				func(e tree.Entry) bool { return !refused.Has(e.Addr) }, takeBuf[:0])
			if len(cand) == 0 {
				break
			}
			e := cand[0]
			if top.Fill(l, leaf, e) {
				if onPlace != nil {
					onPlace(e, l)
				}
				placed++
			} else {
				refused.Add(e.Addr)
				fs.Insert(e)
			}
		}
	}
}
