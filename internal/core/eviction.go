package core

import (
	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/stash"
	"iroram/internal/tree"
)

// This file implements the write phase of a path access — draining the
// F-Stash into the just-read path, deepest bucket first.
//
// The hot implementation (evictOntoPath) is the single-pass formulation of
// the original Path ORAM paper (Stefanov et al.): one walk over the stash
// classifies every entry by its deepest placeable level on the current path
// (tree.DeepestLevel, a leaf-XOR + leading-zero count), then buckets are
// filled deepest-first from the per-level lists, with entries that did not
// fit spilling toward the root. Cost is O(stash + path). The pre-PR3
// formulation — one full stash scan per tree level via
// stash.FStash.TakeForBucket — is O(levels × stash) and is retained below
// (evictOntoPathReference) as the oracle for the differential tests in
// eviction_test.go.
//
// The two implementations place the same NUMBER of blocks at every level of
// the path (both are maximal greedy deepest-first evictions; see
// TestEvictionDifferential), but may pick DIFFERENT blocks when more
// candidates fit a level than the bucket holds: the reference scan picks by
// stash storage order, the single-pass picks deepest-candidates-first.
// Recorded experiment tables were re-baselined for this tie-break change in
// EXPERIMENTS.md (PR 3); both orders are deterministic, so tables remain
// byte-identical across runs and -jobs values.

// evictOntoPath drains fs onto the path of leaf: memory-resident levels
// [minLevel, levels) are bulk-filled into tr, and — when top is non-nil —
// the on-chip levels [0, minLevel) are filled per-entry through top.Fill,
// honoring its refusals (S-Stash set conflicts, the paper's "skip picking
// this block for this round" rule); refused blocks stay candidates for
// shallower levels, exactly like the reference scan. Entries that fit
// nowhere return to the stash.
//
// placeCounts receives the aggregate placement tally of one write phase:
// placed[l] blocks landed at level l, fetched[l] of which were gathered by
// the current access (carried tree.GatherFlag). It is the bulk alternative
// to the per-entry onPlace callback for callers — the demand pipeline —
// that only chart the migration split: tallying two ints per FILL beats an
// indirect call per BLOCK on the hottest loop in the simulator. Slices must
// hold `levels` elements; evictOntoPath adds to them without clearing.
type placeCounts struct {
	placed  []int
	fetched []int
}

func newPlaceCounts(levels int) *placeCounts {
	return &placeCounts{placed: make([]int, levels), fetched: make([]int, levels)}
}

func (p *placeCounts) reset() {
	clear(p.placed)
	clear(p.fetched)
}

// lists (at least `levels` slices) and buf are caller-owned scratch reused
// across paths; onPlace, when non-nil, observes every placement along with
// whether the placed block was gathered by the current path access
// (carried by tree.GatherFlag on gathered entries' leaves and stripped
// here before any entry reaches storage). counts, when non-nil, receives
// the aggregate per-level tally instead; passing both is allowed but the
// demand pipeline passes exactly one. The returned slice is buf's
// (possibly grown) backing for the caller to keep.
func evictOntoPath(fs *stash.FStash, tr *tree.Tree, top stash.TopStore,
	z config.ZProfile, minLevel, levels int, leaf block.Leaf,
	gathered []tree.Entry, lists [][]tree.Entry, buf []tree.Entry,
	onPlace func(e tree.Entry, level int, fetched bool),
	counts *placeCounts) []tree.Entry {

	low := minLevel
	if top != nil {
		low = 0
	}
	for l := low; l < levels; l++ {
		lists[l] = lists[l][:0]
	}
	// gathered holds the blocks the fused read walk just pulled off the
	// path, kept out of the stash index because this drain would remove
	// them again immediately; DrainForPath classifies them and the resident
	// entries in the exact order Insert-then-TakeForPath would have. Every
	// configured scheme has low == 0 (a tree-top store or minLevel 0), so
	// the general TakeForPath branch only serves callers that pre-inserted
	// (gathered == nil: the reference pipelines and the eviction tests).
	if low == 0 {
		fs.DrainForPath(leaf, levels, lists, gathered)
	} else {
		for _, e := range gathered {
			e.Leaf &^= tree.GatherFlag
			fs.Insert(e)
		}
		fs.TakeForPath(leaf, low, levels, lists)
	}

	// The candidate pool for the current level is the entries whose deepest
	// placeable level was at or below it but which did not fit deeper. Pool
	// order is deterministic — deeper-classified entries first — and the
	// pool is consumed as a virtual FIFO straight out of the per-level
	// lists (cur/off mark the first unconsumed entry; lists[l] joins the
	// pool when the walk reaches level l), so the memory-resident fill
	// copies nothing. The fill cap of a level is its bucket's full capacity
	// z[l]: every caller runs the write phase immediately after the read
	// phase drained each bucket on the path, so all slots are free — no
	// occupancy query needed, and FillBucket still panics if the
	// precondition is ever violated. A take that straddles a list boundary
	// becomes consecutive FillBucket calls, which claim free slots in
	// exactly the order one call would.
	cur, off := levels-1, 0
	for l := levels - 1; l >= minLevel; l-- {
		for n := z[l]; n > 0; {
			if off == len(lists[cur]) {
				if cur == l {
					break
				}
				cur--
				off = 0
				continue
			}
			take := lists[cur][off:]
			if len(take) > n {
				take = take[:n]
			}
			switch {
			case onPlace != nil:
				for i := range take {
					fetched := take[i].Leaf&tree.GatherFlag != 0
					take[i].Leaf &^= tree.GatherFlag
					onPlace(take[i], l, fetched)
					if counts != nil {
						counts.placed[l]++
						if fetched {
							counts.fetched[l]++
						}
					}
				}
			case counts != nil:
				f := 0
				for i := range take {
					if take[i].Leaf&tree.GatherFlag != 0 {
						f++
					}
					take[i].Leaf &^= tree.GatherFlag
				}
				counts.placed[l] += len(take)
				counts.fetched[l] += f
			default:
				for i := range take {
					take[i].Leaf &^= tree.GatherFlag
				}
			}
			tr.FillBucket(l, leaf, take)
			off += len(take)
			n -= len(take)
		}
	}
	// Materialize the (typically small) leftover pool: spillover plus the
	// on-chip classified entries, in the virtual pool's order.
	buf = buf[:0]
	buf = append(buf, lists[cur][off:]...)
	for ll := cur - 1; ll >= minLevel; ll-- {
		buf = append(buf, lists[ll]...)
	}
	if top != nil {
		for l := minLevel - 1; l >= 0; l-- {
			buf = append(buf, lists[l]...)
			placed, w := 0, 0
			for r := 0; r < len(buf); r++ {
				e := buf[r]
				fetched := e.Leaf&tree.GatherFlag != 0
				e.Leaf &^= tree.GatherFlag
				if placed < z[l] && top.Fill(l, leaf, e) {
					if onPlace != nil {
						onPlace(e, l, fetched)
					}
					if counts != nil {
						counts.placed[l]++
						if fetched {
							counts.fetched[l]++
						}
					}
					placed++
					continue
				}
				buf[w] = buf[r] // refused: keep the flag for shallower levels
				w++
			}
			buf = buf[:w]
		}
	}
	for _, e := range buf {
		e.Leaf &^= tree.GatherFlag
		fs.Insert(e)
	}
	return buf[:0]
}

// evictOntoPathReference is the pre-PR3 write phase, kept unexported as the
// differential-test oracle: for each level, leaf-to-root, rescan the whole
// stash for blocks placeable in that level's bucket (TakeForBucket), then
// fill the on-chip segment one block at a time, re-stashing refused blocks.
// refused and takeBuf are caller-owned scratch (refused is an epoch-stamped
// set reset per level, preserving the historical retry-at-shallower-levels
// semantics with an O(1) clear instead of a map walk).
// Reference entries are never flagged (its callers pre-Insert gathered
// blocks into the stash), so it reports fetched=false and its onPlace
// adapters derive the migration split from a membership set instead.
func evictOntoPathReference(fs *stash.FStash, tr *tree.Tree, top stash.TopStore,
	z config.ZProfile, minLevel, levels int, leaf block.Leaf,
	refused *epochSet, takeBuf []tree.Entry,
	onPlace func(e tree.Entry, level int, fetched bool)) {

	for l := levels - 1; l >= minLevel; l-- {
		take := fs.TakeForBucket(leaf, l, levels, z[l], nil, takeBuf[:0])
		if onPlace != nil {
			for _, e := range take {
				onPlace(e, l, false)
			}
		}
		tr.FillBucket(l, leaf, take)
	}
	if top == nil {
		return
	}
	for l := minLevel - 1; l >= 0; l-- {
		refused.Reset()
		for placed := 0; placed < z[l]; {
			cand := fs.TakeForBucket(leaf, l, levels, 1,
				func(e tree.Entry) bool { return !refused.Has(e.Addr) }, takeBuf[:0])
			if len(cand) == 0 {
				break
			}
			e := cand[0]
			if top.Fill(l, leaf, e) {
				if onPlace != nil {
					onPlace(e, l, false)
				}
				placed++
			} else {
				refused.Add(e.Addr)
				fs.Insert(e)
			}
		}
	}
}
