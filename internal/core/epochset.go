package core

import "iroram/internal/block"

// epochSet is a reusable membership set over the unified block-ID space,
// used for the controller's per-path scratch sets (which blocks did this
// path fetch, which blocks did the tree-top refuse). It replaces the
// map[block.ID]bool scratch maps of the hot path: membership is one array
// read, insertion one array write, and clearing is a generation-counter
// bump — no per-path clear() walk, no hashing, no allocation.
//
// The stamp array is direct-indexed by block ID and sized once for the
// whole unified space (pm.Total() entries, 4 B each — small next to the
// position map itself, which already keeps per-block state at the same
// scale). A slot is a member iff its stamp equals the current generation.
type epochSet struct {
	stamps []uint32
	gen    uint32
}

// newEpochSet returns an empty set over IDs in [0, n).
func newEpochSet(n int) *epochSet {
	return &epochSet{stamps: make([]uint32, n), gen: 1}
}

// Reset empties the set in O(1). On the (once per 2^32 resets) generation
// wrap the stamp array is cleared so stale stamps from the previous cycle
// cannot alias the new generation.
func (s *epochSet) Reset() {
	s.gen++
	if s.gen == 0 {
		clear(s.stamps)
		s.gen = 1
	}
}

// Add marks id as a member of the current generation.
func (s *epochSet) Add(id block.ID) { s.stamps[id] = s.gen }

// Has reports membership of id in the current generation.
func (s *epochSet) Has(id block.ID) bool { return s.stamps[id] == s.gen }
