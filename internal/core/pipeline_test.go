package core

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/rng"
	"iroram/internal/tree"
)

// pipelineOp is one step of the lockstep differential workload.
type pipelineOp struct {
	addr   block.ID
	write  bool
	gap    uint64
	cswtch bool
}

// pipelineWorkload builds a deterministic op mix: demand reads, posted
// write-backs, idle gaps (so dummies and background evictions fire), and
// occasional context switches. Under delayed remap (LLC-D) a fetched block
// is held out of the ORAM until a write evicts it, so reads must not
// repeat a held-out address and writes target held-out blocks — the same
// discipline as TestIssueUniformity. The op stream depends only on the
// scheme, never on controller state, so both pipelines replay it exactly.
func pipelineWorkload(n int, dataBlocks uint64, sch config.Scheme) []pipelineOp {
	r := rng.New(42)
	heldOut := map[block.ID]bool{}
	var heldList []block.ID
	var ops []pipelineOp
	for i := 0; len(ops) < n; i++ {
		op := pipelineOp{
			addr:   block.ID(r.Uint64n(dataBlocks)),
			gap:    r.Uint64n(4000),
			cswtch: i > 0 && i%400 == 0,
		}
		if op.cswtch {
			ops = append(ops, op)
			continue
		}
		if sch.DelayedRemap {
			if r.Bool(0.3) && len(heldList) > 0 {
				v := heldList[r.Intn(len(heldList))]
				if heldOut[v] {
					delete(heldOut, v)
					op.addr, op.write = v, true
					ops = append(ops, op)
					continue
				}
			}
			if heldOut[op.addr] {
				continue // LLC hit in the real system
			}
			heldOut[op.addr] = true
			heldList = append(heldList, op.addr)
		} else {
			op.write = r.Uint64n(5) == 0
		}
		ops = append(ops, op)
	}
	return ops
}

// pipelineSystem builds one controller + issuer for the differential run.
func pipelineSystem(t *testing.T, sch config.Scheme, schedSlots int, ref bool) (*Issuer, *Controller) {
	t.Helper()
	cfg := config.Tiny().WithScheme(sch)
	cfg.DRAM.PathSchedSlots = schedSlots
	mem := dram.New(cfg.DRAM)
	c, err := NewController(cfg, mem, rng.New(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	c.refPipeline = ref
	return NewIssuer(c, nil), c
}

// comparePipelines drives two systems through the same workload in
// lockstep and fails on the first divergence in completion times, then on
// any difference in statistics, DRAM state, stash contents (including
// storage order, which is behavior-visible through TakeForPath), or tree
// occupancy.
func comparePipelines(t *testing.T, label string, isA, isB *Issuer, cA, cB *Controller) {
	t.Helper()
	ops := pipelineWorkload(1200, cA.pm.DataBlocks(), cA.cfg.Scheme)
	nowA, nowB := uint64(0), uint64(0)
	for i, op := range ops {
		if op.cswtch {
			nowA = cA.ContextSwitch(nowA)
			nowB = cB.ContextSwitch(nowB)
		} else if op.write {
			nowA = isA.PostWrite(nowA+op.gap, op.addr)
			nowB = isB.PostWrite(nowB+op.gap, op.addr)
		} else {
			nowA = isA.ReadBlock(nowA+op.gap, op.addr)
			nowB = isB.ReadBlock(nowB+op.gap, op.addr)
		}
		if nowA != nowB {
			t.Fatalf("%s: op %d (%+v): completion diverges: %d vs %d", label, i, op, nowA, nowB)
		}
	}

	if sa, sb := cA.mem.Stats(), cB.mem.Stats(); sa != sb {
		t.Fatalf("%s: DRAM stats diverge:\nA %+v\nB %+v", label, sa, sb)
	}
	if fa, fb := cA.mem.FreeAt(), cB.mem.FreeAt(); fa != fb {
		t.Fatalf("%s: DRAM channel state diverges: %d vs %d", label, fa, fb)
	}

	type scalars struct {
		paths                    [block.NumPathTypes]uint64
		blocksRead, blocksWrit   uint64
		stashHits, sstash, top   uint64
		posPaths, plbHit, plbMis uint64
		bgEv, bgEvCycles, dummy  uint64
		dwbConv, dwbDone, dwbAb  uint64
		served, cswitches        uint64
		readCyc, writeCyc        uint64
	}
	grab := func(c *Controller) scalars {
		return scalars{
			paths:      c.st.Paths.Paths,
			blocksRead: c.st.Paths.BlocksRead, blocksWrit: c.st.Paths.BlocksWrit,
			stashHits: c.st.StashHits, sstash: c.st.SStashHits, top: c.st.TopHits,
			posPaths: c.st.PosMapPaths, plbHit: c.st.PLBHits, plbMis: c.st.PLBMisses,
			bgEv: c.st.BgEvictions, bgEvCycles: c.st.BgEvictionCycles, dummy: c.st.DummyPaths,
			dwbConv: c.st.DWBConverted, dwbDone: c.st.DWBCompleted, dwbAb: c.st.DWBAborted,
			served: c.st.ServedRequests, cswitches: c.st.ContextSwitches,
			readCyc: c.st.PhaseReadCycles, writeCyc: c.st.PhaseWriteBackCycles,
		}
	}
	if ga, gb := grab(cA), grab(cB); ga != gb {
		t.Fatalf("%s: controller stats diverge:\nA %+v\nB %+v", label, ga, gb)
	}
	compareHist := func(name string, a, b []uint64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d vs %d", label, name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s diverges at level %d: %d vs %d", label, name, i, a[i], b[i])
			}
		}
	}
	compareHist("HitLevels", cA.st.HitLevels.Counts, cB.st.HitLevels.Counts)
	compareHist("MigrationFetched", cA.st.MigrationFetched.Counts, cB.st.MigrationFetched.Counts)
	compareHist("MigrationPreexisting", cA.st.MigrationPreexisting.Counts, cB.st.MigrationPreexisting.Counts)

	var entA, entB []tree.Entry
	cA.fstash.Each(func(e tree.Entry) { entA = append(entA, e) })
	cB.fstash.Each(func(e tree.Entry) { entB = append(entB, e) })
	if len(entA) != len(entB) {
		t.Fatalf("%s: stash length %d vs %d", label, len(entA), len(entB))
	}
	for i := range entA {
		if entA[i] != entB[i] {
			t.Fatalf("%s: stash storage order diverges at %d: %+v vs %+v", label, i, entA[i], entB[i])
		}
	}
	for l := 0; l < cA.o.Levels; l++ {
		if oa, ob := cA.tr.OccupiedAt(l), cB.tr.OccupiedAt(l); oa != ob {
			t.Fatalf("%s: tree level %d occupancy %d vs %d", label, l, oa, ob)
		}
	}
	if cA.rho != nil {
		if cA.rho.SmallPaths != cB.rho.SmallPaths {
			t.Fatalf("%s: rho small paths %d vs %d", label, cA.rho.SmallPaths, cB.rho.SmallPaths)
		}
		if oa, ob := cA.rho.occupied(), cB.rho.occupied(); oa != ob {
			t.Fatalf("%s: rho occupancy %d vs %d", label, oa, ob)
		}
	}
	if err := cA.CheckInvariants(); err != nil {
		t.Fatalf("%s: fused invariants: %v", label, err)
	}
	if err := cB.CheckInvariants(); err != nil {
		t.Fatalf("%s: reference invariants: %v", label, err)
	}
}

// TestFusedPipelineMatchesReference pins the fused single-walk pipeline
// (memoized run-list DRAM phases + one gather walk) against the retained
// multi-walk, per-address reference (access_reference.go) across every
// scheme: identical completion times for every request, identical
// statistics, DRAM state, stash storage order and tree occupancy.
func TestFusedPipelineMatchesReference(t *testing.T) {
	schemes := append(config.AllSchemes(),
		config.Scheme{Name: "TopNone", Top: config.TopNone},
		config.RingScheme(),
	)
	for _, sch := range schemes {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			isA, cA := pipelineSystem(t, sch, 0, false)
			isB, cB := pipelineSystem(t, sch, 0, true)
			comparePipelines(t, "fused-vs-reference", isA, isB, cA, cB)
		})
	}
}

// TestFusedPipelineSchedCacheNeutral pins the schedule-cache knob as
// timing-neutral: the fused pipeline with the cache disabled (fresh
// address list + run build every path) must match the memoized default
// exactly, and the default must actually be hitting its cache.
func TestFusedPipelineSchedCacheNeutral(t *testing.T) {
	for _, sch := range []config.Scheme{config.Baseline(), config.RhoScheme()} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			isA, cA := pipelineSystem(t, sch, 0, false)
			isB, cB := pipelineSystem(t, sch, -1, false)
			if cA.sched == nil || cB.sched != nil {
				t.Fatal("PathSchedSlots knob not wired: want cache on A, off B")
			}
			comparePipelines(t, "sched-vs-nosched", isA, isB, cA, cB)
			if cA.sched.Hits == 0 {
				t.Error("schedule cache never hit during the workload")
			}
		})
	}
}
