// Package core implements the paper's primary contribution: the Path ORAM
// controller with Freecursive recursion, the dedicated tree-top cache
// baseline, background eviction, timing-channel protection, and the three
// IR-ORAM techniques (IR-Alloc via per-level Z profiles, IR-Stash via the
// double-indexed S-Stash, IR-DWB via dummy-to-writeback conversion), plus
// the compared designs ρ and LLC-D.
//
// The controller separates two concerns:
//
//   - Controller (this file / access.go): the Path ORAM protocol — position
//     map resolution, path read/remap/write phases, stash and tree-top
//     management. Every protocol action that touches DRAM happens inside a
//     "path access".
//   - Issuer (issuer.go): when path accesses are allowed to happen. With
//     timing protection, exactly one path access leaves the controller
//     every T cycles; the issuer fills slots with demand work, posted
//     writes, background eviction, IR-DWB conversions, or pure dummies —
//     indistinguishable from outside the TCB.
//
// Two contracts bind every function on the access path. Determinism: all
// randomness is drawn from the rng streams handed in at construction, so a
// (config, seed) pair fully determines every counter, histogram and epoch
// in Stats — the basis of the experiment engine's byte-identical-output
// guarantee. Zero allocations: steady-state path accesses must not touch
// the heap (TestPathAccessZeroAllocs, `make alloccheck`); the metrics
// instruments embedded in Stats are updated by direct field writes
// (registration with a metrics.Registry happens once, in RegisterMetrics),
// and the opt-in epoch time series (Stats.EpochInterval) is the sole
// sanctioned exception.
package core

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/cache"
	"iroram/internal/config"
	"iroram/internal/dram"
	"iroram/internal/flight"
	"iroram/internal/posmap"
	"iroram/internal/rng"
	"iroram/internal/stash"
	"iroram/internal/tree"
)

// Controller is the on-chip ORAM controller: control logic, stash(es),
// position map, PLB, and (optionally) the tree-top store.
type Controller struct {
	cfg      config.System
	o        config.ORAM
	pm       *posmap.Map
	tr       *tree.Tree
	layout   *tree.Layout
	fstash   *stash.FStash
	top      stash.TopStore  // nil for TopNone
	topIdx   stash.AddrIndex // non-nil only for IR-Stash
	plb      *cache.Cache
	mem      *dram.Model
	rng      *rng.Source
	st       *Stats
	minLevel int

	rho  *rhoState  // non-nil when the ρ scheme is active
	ring *ringState // non-nil when the Ring ORAM protocol is active

	// sched memoizes the main tree's per-leaf DRAM run lists (nil when
	// disabled via config.DRAM.PathSchedSlots); nPathBlocks is the fixed
	// per-path block count of the main tree, so the hot path never needs
	// the address list just to know its length.
	sched       *dram.PathSched
	nPathBlocks int

	// refPipeline routes pathAccess through the retained multi-walk,
	// per-address reference implementation (access_reference.go). Tests
	// flip it to pin the fused pipeline differentially.
	refPipeline bool

	// Scratch buffers reused across path accesses, so the steady-state hot
	// path allocates nothing (guarded by TestPathAccessZeroAllocs and the
	// make-check benchmark gate).
	physBuf []uint64
	accBuf  []dram.Access // cold paths only: ring reshuffles, context switch
	// fetched serves only the reference pipeline (access_reference.go): it
	// rebuilds per-path membership that the fused pipeline carries for free
	// on the entries themselves via tree.GatherFlag.
	fetched   *pathSet
	readBuf   []tree.Entry   // read-phase entries (tree + top segment)
	evictList [][]tree.Entry // per-level candidates for evictOntoPath
	evictBuf  []tree.Entry   // eviction candidate pool / spillover
	gathered  []tree.Entry   // read-walk scratch: path blocks bound for the drain
	// Migration-split plumbing for evictOntoPath, built once. The fused
	// pipeline tallies placements in bulk (migCounts, flushed into the
	// per-level histograms after the write phase); placeMainRef serves
	// evictOntoPathReference, which never flags entries, and consults the
	// fetched set per entry instead.
	migCounts    *placeCounts
	placeMainRef func(tree.Entry, int, bool)

	// Fused-gather state: gatherMain/gatherRho are built once and walk the
	// tree + top segment of a path, moving blocks straight into the stash
	// while watching for gTarget — the single-walk replacement for the
	// ReadPath-into-buffer-then-scan shape the reference keeps.
	gatherMain func(tree.Entry, int)
	gatherRho  func(tree.Entry, int)
	gTarget    block.ID
	gFound     bool
	gLevel     int

	// fl, when non-nil, receives cycle-stamped span events for sampled
	// path accesses (see AttachFlight). A nil recorder is inert, so the
	// hot path pays one branch when tracing is off. Kept at the struct
	// tail so attaching the tracer does not shift the hot fields above.
	fl *flight.Recorder
}

// AttachFlight wires a flight recorder into the access pipeline: every
// fused path access (main tree and ρ small tree) counts toward the
// recorder's 1-in-N sample and, when armed, records its read, decrypt
// and posted-writeback phase spans plus the whole-access span tagged
// with path type and leaf; the issuer adds per-slot occupancy samples
// and disarms the recorder when it accounts the slot. The reference
// pipeline and the Ring ORAM protocol are not traced. Recording only
// observes — no RNG draws, no timing changes — so every counter,
// histogram and byte of stdout is identical with tracing on or off.
func (c *Controller) AttachFlight(fl *flight.Recorder) { c.fl = fl }

// NewController builds and initializes a controller: the position map is
// randomized, and every block of the unified space is placed into the tree
// (deepest-first along its path), overflowing into the tree-top store and
// finally the stash — the steady-state reached by the paper's
// "initialize-by-accessing-every-block" procedure.
func NewController(cfg config.System, mem *dram.Model, r *rng.Source) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := cfg.ORAM
	minLevel := 0
	if cfg.Scheme.Top != config.TopNone {
		minLevel = o.TopLevels
	}
	c := &Controller{
		cfg:      cfg,
		o:        o,
		pm:       posmap.New(o, r.Fork()),
		tr:       tree.New(o, minLevel),
		layout:   tree.NewLayout(o, minLevel, int(mem.RowBlocks())),
		fstash:   stash.NewFStash(o.StashCapacity),
		plb:      cache.New(o.PLBEntries/o.PLBWays, o.PLBWays),
		mem:      mem,
		rng:      r,
		st:        newStats(o.Levels),
		minLevel:  minLevel,
		evictList: make([][]tree.Entry, o.Levels),
	}
	// Sized to one path: membership never outlives a Reset, and a path
	// gathers at most its full (top + memory) block count.
	c.fetched = newPathSet(o.Z.BlocksPerPath(0))
	c.migCounts = newPlaceCounts(o.Levels)
	c.placeMainRef = func(e tree.Entry, level int, _ bool) { c.recordMigration(e.Addr, level) }
	c.nPathBlocks = o.Z.BlocksPerPath(minLevel)
	c.sched = newPathSched(mem, cfg.DRAM.PathSchedSlots, o.LeafCount(), c.nPathBlocks, 0)
	// The gather closures stage path blocks in c.gathered instead of
	// inserting them into the stash: the eviction drain that runs one walk
	// later would take them right back out, and the index round-trip (a
	// hash insert plus a swap-maintaining removal per block) is the single
	// largest per-path cost the fused pipeline eliminates. DrainForPath
	// folds the staged blocks in with the exact ordering the insert/remove
	// sequence would have produced. Staged entries carry tree.GatherFlag —
	// the this-path provenance bit the write phase strips into onPlace's
	// fetched argument — so no membership set is consulted per placement.
	// The extracted target never reaches the write phase flagged: it is
	// remapped and re-Inserted (or parked in the LLC) by the caller.
	c.gatherMain = func(e tree.Entry, level int) {
		if e.Addr == c.gTarget {
			c.gFound = true
			if level >= c.minLevel {
				c.gLevel = level
			}
			return
		}
		e.Leaf |= tree.GatherFlag
		c.gathered = append(c.gathered, e)
	}
	c.gatherRho = func(e tree.Entry, level int) {
		if e.Addr == c.gTarget {
			c.gFound = true
			return
		}
		e.Leaf |= tree.GatherFlag
		c.gathered = append(c.gathered, e)
	}
	switch cfg.Scheme.Top {
	case config.TopDedicated:
		c.top = stash.NewTopCache(o.Levels, o.TopLevels, o.Z)
	case config.TopIRStash:
		irs := stash.NewIRStash(o.Levels, o.TopLevels, o.Z, o.SStashWays)
		c.top = irs
		c.topIdx = irs
	}
	if cfg.Scheme.Rho {
		if err := c.initRho(); err != nil {
			return nil, err
		}
	}
	if cfg.Scheme.Ring {
		c.initRing()
	}
	c.initPlacement()
	return c, nil
}

// initPlacement distributes every unified block along its assigned path,
// deepest bucket first, spilling to the on-chip top store and then to the
// stash (which background eviction will drain during warm-up).
func (c *Controller) initPlacement() {
	total := block.ID(c.pm.Total())
	for id := block.ID(0); id < total; id++ {
		e := tree.Entry{Addr: id, Leaf: c.pm.Leaf(id)}
		if _, ok := c.tr.Place(e); ok {
			continue
		}
		if c.placeInTop(e) {
			continue
		}
		c.fstash.Insert(e)
	}
}

// placeInTop tries the top-store buckets of e's path, deepest first.
func (c *Controller) placeInTop(e tree.Entry) bool {
	if c.top == nil {
		return false
	}
	for l := c.minLevel - 1; l >= 0; l-- {
		if c.top.Fill(l, e.Leaf, e) {
			return true
		}
	}
	return false
}

// Stats exposes the collected statistics.
func (c *Controller) Stats() *Stats { return c.st }

// StashLen returns the current F-Stash occupancy.
func (c *Controller) StashLen() int { return c.fstash.Len() }

// StashOverfull reports whether background eviction is required.
func (c *Controller) StashOverfull() bool {
	return c.fstash.Overfull(c.o.StashEvictThreshold)
}

// Utilization returns per-level space utilization with the on-chip top
// levels overlaid from the top store — the Fig 3 measurement.
func (c *Controller) Utilization() []float64 {
	u := c.tr.Utilization()
	if c.top != nil {
		for l := 0; l < c.minLevel; l++ {
			if capAt := c.top.CapacityAt(l); capAt > 0 {
				u[l] = float64(c.top.OccupiedAt(l)) / float64(capAt)
			}
		}
	}
	return u
}

// BlocksPerPath returns the per-path DRAM block count of the main tree.
func (c *Controller) BlocksPerPath() int { return c.o.Z.BlocksPerPath(c.minLevel) }

// randomLeaf draws a uniform main-tree leaf.
func (c *Controller) randomLeaf() block.Leaf {
	return block.Leaf(c.rng.Uint64n(c.o.LeafCount()))
}

// defaultSchedSlots caps the auto-sized schedule cache: 8192 slots of
// scaled-geometry run lists are ~1.5 MB — enough to make repeat leaves and
// warm benchmark loops all-hit without scaling storage with the tree.
const defaultSchedSlots = 8192

// newPathSched resolves the PathSchedSlots knob for one tree: 0 sizes the
// cache at min(defaultSchedSlots, leaves), negative disables it.
func newPathSched(mem *dram.Model, knob int, leaves uint64, blocksPerPath int, off uint64) *dram.PathSched {
	if knob < 0 {
		return nil
	}
	slots := uint64(defaultSchedSlots)
	if knob > 0 {
		slots = uint64(knob)
	}
	if slots > leaves {
		slots = leaves
	}
	return mem.NewPathSched(int(slots), blocksPerPath, off)
}

// pathRuns returns the memoized DRAM run list for leaf, building and
// installing it on a cache miss (the only case that still generates the
// path's physical address list).
func (c *Controller) pathRuns(leaf block.Leaf) []dram.Run {
	if runs, ok := c.sched.Lookup(uint64(leaf)); ok {
		return runs
	}
	c.physBuf = c.layout.PathPhys(leaf, c.physBuf[:0])
	return c.sched.Install(uint64(leaf), c.physBuf)
}

// pathAccess is the protocol primitive: read phase (DRAM batch + on-chip
// segment), stash fill, then the greedy deepest-first write phase. target
// (if valid) is extracted instead of being stashed; found reports whether
// it was on the path, and foundLevel is the memory-resident level it was
// read from (-1 when absent or found in the on-chip top segment).
//
// The returned time is when the requested block is available — the read
// phase plus the fixed decrypt/authenticate latency. The write phase is
// posted to the DRAM write queue and drains in the background; the next
// path access naturally queues behind it on the channel buses, so in
// steady state the controller is limited by exactly the per-path block
// traffic that IR-Alloc reduces.
//
// This is the fused single-walk pipeline: the DRAM read phase is charged
// from the memoized per-leaf run list, one walk over the path moves every
// block straight into the stash (recording the target's level in passing,
// where the reference shape pays a separate tree.Find walk), the eviction
// walk refills it, and the write phase posts from the same run list. The
// multi-walk, per-address shape is retained in access_reference.go and
// pinned against this one by TestFusedPipelineMatchesReference.
func (c *Controller) pathAccess(now uint64, leaf block.Leaf, target block.ID,
	ptype block.PathType) (found bool, foundLevel int, done uint64) {
	if c.refPipeline {
		return c.pathAccessReference(now, leaf, target, ptype)
	}
	// Arm (or not) the flight recorder for this access before the read
	// phase so the DRAM hooks see the sampling decision; the issuer
	// disarms when it accounts the finished slot.
	c.fl.SampleAccess()
	// Read phase: the memory segment of the path, serviced in run-length
	// form (no address list, no per-address decomposition on repeat leaves).
	var readDone uint64
	var runs []dram.Run
	if c.sched != nil {
		runs = c.pathRuns(leaf)
		readDone = c.mem.ServiceRuns(now, runs, false)
	} else {
		c.physBuf = c.layout.PathPhys(leaf, c.physBuf[:0])
		readDone = c.mem.ServicePath(now, c.physBuf, 0, false)
	}
	c.st.PhaseReadCycles += readDone - now

	// Walk 1: gather. Every real block on the path moves straight into the
	// stash (or is extracted, if it is the target) as it is removed.
	c.gathered = c.gathered[:0]
	c.gTarget, c.gFound, c.gLevel = target, false, -1
	c.tr.ReadPathEach(leaf, c.gatherMain)
	if c.top != nil {
		c.top.ReadPathEach(leaf, c.gatherMain)
	}
	found, foundLevel = c.gFound, c.gLevel

	// Walk 2: single-pass deepest-first eviction, memory levels bulk
	// filled and the on-chip segment honoring S-Stash conflict refusals
	// ("skip picking this block for this round"). See eviction.go.
	c.migCounts.reset()
	c.evictBuf = evictOntoPath(c.fstash, c.tr, c.top, c.o.Z, c.minLevel,
		c.o.Levels, leaf, c.gathered, c.evictList, c.evictBuf, nil, c.migCounts)
	for l, p := range c.migCounts.placed {
		if p > 0 {
			f := c.migCounts.fetched[l]
			c.st.MigrationFetched.AddN(l, uint64(f))
			c.st.MigrationPreexisting.AddN(l, uint64(p-f))
		}
	}

	// Write phase DRAM traffic: the same physical blocks, written. The
	// batch is posted (its completion time is not waited on); it occupies
	// the channel buses and delays whatever issues next.
	var writeDone uint64
	if runs != nil {
		writeDone = c.mem.PostWriteRuns(readDone, runs)
	} else {
		writeDone = c.mem.PostWritePath(readDone, c.physBuf, 0)
	}
	c.st.PhaseWriteBackCycles += writeDone - readDone

	c.st.Paths.Add(ptype, c.nPathBlocks, c.nPathBlocks)
	done = readDone + c.o.OnChipLatency
	c.st.PathLatency[ptype].Observe(done - now)
	if c.fl.Armed() {
		c.recordPhases(now, readDone, writeDone, done, leaf, ptype)
	}
	if c.st.RecordLeaves {
		c.st.Leaves = append(c.st.Leaves, leaf)
	}
	return found, foundLevel, done
}

// recordPhases emits the four spans of one sampled path access: the DRAM
// read burst, the posted writeback burst (overlapping later work), the
// on-chip decrypt/gather/evict latency, and the whole access.
func (c *Controller) recordPhases(now, readDone, writeDone, done uint64,
	leaf block.Leaf, ptype block.PathType) {
	c.fl.Record(flight.Event{Start: now, End: readDone,
		Kind: flight.KindPhaseRead, Sub: uint8(ptype)})
	c.fl.Record(flight.Event{Start: readDone, End: writeDone,
		Kind: flight.KindPhaseWrite, Sub: uint8(ptype)})
	c.fl.Record(flight.Event{Start: readDone, End: done,
		Kind: flight.KindPhaseDecrypt, Sub: uint8(ptype)})
	c.fl.Record(flight.Event{Start: now, End: done, Arg: uint64(leaf),
		Kind: flight.KindAccess, Sub: uint8(ptype)})
}

func (c *Controller) recordMigration(addr block.ID, level int) {
	if c.fetched.Has(addr) {
		c.st.MigrationFetched.Add(level)
	} else {
		c.st.MigrationPreexisting.Add(level)
	}
}

// treeAccess dispatches the main-tree access primitive: Ring ORAM's
// one-block-per-bucket read when the Ring protocol is active, the Path ORAM
// read+write path otherwise. foundLevel follows the pathAccess contract:
// the memory level the target was read from, or -1.
func (c *Controller) treeAccess(now uint64, leaf block.Leaf, target block.ID,
	ptype block.PathType) (found bool, foundLevel int, done uint64) {
	if c.ring != nil {
		return c.ringAccess(now, leaf, target, ptype)
	}
	return c.pathAccess(now, leaf, target, ptype)
}

// backgroundEvict performs one background-eviction path access (Ren et
// al.): a random path read+write that gives stashed blocks placement
// opportunities. Indistinguishable from any other path access outside the
// TCB. Under Ring ORAM the eviction path plays this role.
func (c *Controller) backgroundEvict(now uint64) uint64 {
	var done uint64
	if c.ring != nil {
		done = c.ringEvictPath(now)
	} else {
		_, _, done = c.pathAccess(now, c.randomLeaf(), block.Invalid, block.PathEvict)
	}
	c.st.BgEvictions++
	c.st.BgEvictionCycles += done - now
	return done
}

// dummyPath performs one PT_m access on a random leaf. Like background
// eviction it opportunistically drains the stash during its write phase
// (Path ORAM) or consumes bucket dummies exactly like a missing read
// (Ring ORAM).
func (c *Controller) dummyPath(now uint64) uint64 {
	_, _, done := c.treeAccess(now, c.randomLeaf(), block.Invalid, block.PathDummy)
	c.st.DummyPaths++
	return done
}

// CheckInvariants walks the whole system and verifies single-residency and
// capacity invariants; tests call it after workloads. It returns the first
// violation found.
func (c *Controller) CheckInvariants() error {
	seen := make(map[block.ID]string, c.pm.Total())
	note := func(id block.ID, where string) error {
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("core: block %v in both %s and %s", id, prev, where)
		}
		seen[id] = where
		return nil
	}
	var err error
	c.fstash.EachUntil(func(e tree.Entry) bool {
		err = note(e.Addr, "fstash")
		return err == nil
	})
	if err != nil {
		return err
	}
	// Tree blocks: verify via per-leaf path reads would be destructive;
	// instead verify counts: every block is somewhere.
	total := c.tr.Occupied()
	if c.top != nil {
		total += uint64(c.top.Len())
	}
	total += uint64(c.fstash.Len())
	total += uint64(c.plbResident())
	if c.rho != nil {
		total += c.rho.occupied()
	}
	expect := c.pm.Total()
	if c.cfg.Scheme.DelayedRemap || c.rho != nil {
		// Blocks held out (in the LLC / pending reinsert) are allowed to
		// be missing; only over-counting is a bug.
		if total > expect {
			return fmt.Errorf("core: %d blocks resident, expected at most %d", total, expect)
		}
		return nil
	}
	if total != expect {
		return fmt.Errorf("core: %d blocks resident, expected %d", total, expect)
	}
	return nil
}

// plbResident counts PosMap blocks currently owned by the PLB.
func (c *Controller) plbResident() int {
	n := 0
	for id := block.ID(c.pm.DataBlocks()); id < block.ID(c.pm.Total()); id++ {
		if c.plb.Contains(uint64(id)) {
			n++
		}
	}
	return n
}
