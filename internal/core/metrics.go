package core

import (
	"iroram/internal/block"
	"iroram/internal/metrics"
)

// pathTypeSlugs are the stable metric-name components for each path type —
// part of the JSONL schema (docs/METRICS.md), so they must never change for
// an existing type.
var pathTypeSlugs = [block.NumPathTypes]string{
	block.PathData:  "ptd",
	block.PathPos1:  "ptp1",
	block.PathPos2:  "ptp2",
	block.PathDummy: "ptm",
	block.PathEvict: "evict",
	block.PathDWB:   "dwb",
}

// RegisterMetrics binds every controller statistic into r under the
// "oram_" namespace. Registration happens once at System construction; the
// hot path keeps updating the Stats fields directly, so this adds no work
// (and no interface dispatch) to path accesses. The registered name set is
// scheme-independent — counters a scheme never touches simply stay zero —
// which keeps the JSONL schema identical across every cell of a sweep.
func (c *Controller) RegisterMetrics(r *metrics.Registry) {
	st := c.st

	for t := 0; t < block.NumPathTypes; t++ {
		slug := pathTypeSlugs[t]
		r.Counter("oram_paths_"+slug, "paths",
			"path accesses of type "+block.PathType(t).String(), &st.Paths.Paths[t])
		r.Histogram("oram_path_latency_"+slug, "cycles",
			"service latency of "+block.PathType(t).String()+" path accesses",
			&st.PathLatency[t])
	}
	r.Counter("oram_blocks_read", "blocks",
		"DRAM blocks read by path accesses", &st.Paths.BlocksRead)
	r.Counter("oram_blocks_written", "blocks",
		"DRAM blocks written by path accesses", &st.Paths.BlocksWrit)

	r.Counter("oram_stash_hits", "requests",
		"data requests served by the F-Stash", &st.StashHits)
	r.Counter("oram_sstash_hits", "requests",
		"data requests served by the IR-Stash address index", &st.SStashHits)
	r.Counter("oram_top_hits", "requests",
		"data requests served on-chip from the tree top", &st.TopHits)
	r.Counter("oram_served_requests", "requests",
		"completed LLC-side requests", &st.ServedRequests)

	r.Counter("oram_posmap_paths", "paths",
		"PTp path accesses (Pos1 + Pos2)", &st.PosMapPaths)
	r.Counter("oram_plb_hits", "lookups", "PLB lookup hits", &st.PLBHits)
	r.Counter("oram_plb_misses", "lookups", "PLB lookup misses", &st.PLBMisses)

	r.Counter("oram_bg_evictions", "paths",
		"background-eviction path accesses", &st.BgEvictions)
	r.Counter("oram_phase_evict_cycles", "cycles",
		"cycles spent in background-eviction paths (the evict phase)",
		&st.BgEvictionCycles)

	r.Counter("oram_dummy_paths", "paths", "pure PTm dummy paths", &st.DummyPaths)
	r.Counter("oram_dwb_converted", "paths",
		"dummy slots converted to IR-DWB write-back steps", &st.DWBConverted)
	r.Counter("oram_dwb_completed", "lines",
		"LLC lines fully written back early by IR-DWB", &st.DWBCompleted)
	r.Counter("oram_dwb_aborted", "candidates",
		"abandoned IR-DWB candidates", &st.DWBAborted)
	r.Counter("oram_proactive_remaps", "lines",
		"LLC LRU entries whose PosMap state was prefetched", &st.ProactiveRemaps)

	r.Counter("oram_paths_issued", "paths",
		"path issues recorded by the pacing issuer", &st.PathsIssued)
	r.Counter("oram_nonuniform_issues", "paths",
		"issue-gap violations (obliviousness audit)", &st.NonUniformIssues)
	r.Counter("oram_context_switches", "events",
		"stash-flush/top-spill context-switch events", &st.ContextSwitches)

	r.Counter("oram_phase_read_cycles", "cycles",
		"DRAM read-phase service cycles across all path accesses",
		&st.PhaseReadCycles)
	r.Counter("oram_phase_writeback_cycles", "cycles",
		"posted write-phase bus-occupancy cycles beyond the read phase",
		&st.PhaseWriteBackCycles)
	r.Counter("oram_phase_remap_cycles", "cycles",
		"on-chip remap cycles (OnChipLatency per remap)", &st.PhaseRemapCycles)
	r.Counter("oram_remaps", "remaps",
		"position-map remap operations", &st.Remaps)

	r.Histogram("oram_write_queue_depth", "entries",
		"posted-write queue depth at each path issue", &st.QueueDepth)

	r.LinearHistogram("oram_hit_level", "levels",
		"tree level at which requested data blocks were found", st.HitLevels)
	r.LinearHistogram("oram_migration_fetched_level", "levels",
		"write-phase placement level of blocks fetched by the same access",
		st.MigrationFetched)
	r.LinearHistogram("oram_migration_preexisting_level", "levels",
		"write-phase placement level of blocks pre-existing in the stash",
		st.MigrationPreexisting)

	r.GaugeFunc("oram_stash_occupancy", "blocks",
		"current F-Stash occupancy", func() float64 { return float64(c.fstash.Len()) })
}

// RegisterMetrics binds the issuer's instruments into r. Like the
// controller's registration it runs once at construction; the write-queue
// gauge samples only when a snapshot is taken.
func (is *Issuer) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("oram_write_queue_len", "entries",
		"posted writes currently queued", func() float64 { return float64(len(is.writeQ)) })
}

// remap wraps the position map's remap operation with phase accounting:
// every remap is an on-chip step charged OnChipLatency.
func (c *Controller) remap(a block.ID) block.Leaf {
	c.st.Remaps++
	c.st.PhaseRemapCycles += c.o.OnChipLatency
	return c.pm.Remap(a)
}
