package core

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/dram"
)

// ringState implements Ring ORAM (Ren et al., "Ring ORAM: Closing the Gap
// Between Small and Large Client Storage Oblivious RAM"), which Section VII
// of the paper cites as orthogonal to IR-ORAM. The protocol splits reads
// from evictions:
//
//   - a read touches ONE block per bucket — the target where present, an
//     unconsumed dummy elsewhere — so a read path moves L blocks instead of
//     L*Z;
//   - each bucket holds RingS dummies; after RingS reads it must be
//     reshuffled (read and rewritten whole) before serving again — the
//     "early reshuffle";
//   - every RingA reads, one full eviction path (read+write of every slot,
//     reverse-lexicographic leaf order) drains the stash and replenishes
//     dummies along that path.
//
// The bucket-size profile still applies, so IR-Alloc composes: smaller
// middle buckets shrink eviction paths and reshuffles exactly as they
// shrink Path ORAM paths (the integration claim this repo demonstrates in
// the "ring" experiment).
type ringState struct {
	s int // dummy budget per bucket
	a int // reads per eviction path

	// dummyLeft tracks unconsumed dummies per memory-resident bucket,
	// heap-indexed like the tree (level l, index i -> 2^l + i).
	dummyLeft []uint8

	sinceEvict int
	evictSeq   uint64

	// Reshuffles and EvictPaths count the background work the protocol
	// amortizes over reads.
	Reshuffles uint64
	EvictPaths uint64
}

func (c *Controller) initRing() {
	c.ring = &ringState{
		s:         c.cfg.Scheme.RingS,
		a:         c.cfg.Scheme.RingA,
		dummyLeft: make([]uint8, uint64(1)<<uint(c.o.Levels)),
	}
	for i := range c.ring.dummyLeft {
		c.ring.dummyLeft[i] = uint8(c.ring.s)
	}
}

func (r *ringState) bucket(levels, level int, leaf block.Leaf) int {
	idx := uint64(leaf) >> (uint(levels-1) - uint(level))
	return int((uint64(1) << uint(level)) + idx)
}

// ringAccess is Ring ORAM's read: one block per memory bucket, early
// reshuffles where a bucket's dummies ran out, and the amortized eviction
// path every RingA reads. It fills the same contract as pathAccess;
// foundLevel is the targetLevel the protocol resolves up front anyway.
func (c *Controller) ringAccess(now uint64, leaf block.Leaf, target block.ID,
	ptype block.PathType) (found bool, foundLevel int, done uint64) {
	r := c.ring
	targetLevel := -1
	if target.Valid() {
		if lvl, ok := c.tr.Find(target, leaf); ok {
			targetLevel = lvl
		}
	}

	c.accBuf = c.accBuf[:0]
	reads, writes := 0, 0
	for l := c.minLevel; l < c.o.Levels; l++ {
		base, z := c.layout.BucketPhys(l, leaf)
		// One block leaves this bucket: the target, or a dummy.
		c.accBuf = append(c.accBuf, dram.Access{Addr: base})
		reads++
		b := r.bucket(c.o.Levels, l, leaf)
		if l == targetLevel {
			// Reading a real block consumes it (it moves to the stash);
			// the dummy budget is untouched.
			continue
		}
		if r.dummyLeft[b] > 0 {
			r.dummyLeft[b]--
		}
		if r.dummyLeft[b] == 0 {
			// Early reshuffle: the bucket is read and rewritten whole
			// (its real blocks stay in place, permuted and re-sealed).
			for j := 0; j < z+r.s; j++ {
				c.accBuf = append(c.accBuf, dram.Access{Addr: base + uint64(j%z)})
				reads++
			}
			writes += z + r.s
			r.dummyLeft[b] = uint8(r.s)
			r.Reshuffles++
		}
	}
	readDone := c.mem.ServiceBatch(now, c.accBuf)
	c.st.PhaseReadCycles += readDone - now
	if targetLevel >= 0 {
		if !c.tr.Remove(target, leaf) {
			panic(fmt.Sprintf("core: ring target %v vanished from level %d", target, targetLevel))
		}
		found = true
	}
	// Reshuffle writes and nothing else; posted like Path ORAM's write
	// phase.
	if writes > 0 {
		c.accBuf = c.accBuf[:0]
		base, _ := c.layout.BucketPhys(c.o.Levels-1, leaf)
		for j := 0; j < writes; j++ {
			c.accBuf = append(c.accBuf, dram.Access{Addr: base + uint64(j)})
		}
		c.mem.PostWrites(readDone, c.accBuf)
	}
	c.st.Paths.Add(ptype, reads, writes)
	if c.st.RecordLeaves {
		c.st.Leaves = append(c.st.Leaves, leaf)
	}
	done = readDone + c.o.OnChipLatency
	c.st.PathLatency[ptype].Observe(done - now)

	// Amortized eviction: every RingA reads, one full path. Evictions are
	// the protocol's background work — they are issued behind this read
	// and charged to the channel buses (delaying whatever comes next), but
	// the requester does not wait for them.
	r.sinceEvict++
	if r.sinceEvict >= r.a {
		r.sinceEvict = 0
		c.ringEvictPath(done)
	}
	return found, targetLevel, done
}

// ringEvictPath is a full Path ORAM-style read+write of the next
// reverse-lexicographic path: it drains the stash into the tree and
// replenishes every touched bucket's dummy budget.
func (c *Controller) ringEvictPath(now uint64) uint64 {
	r := c.ring
	leaf := c.reverseLexLeaf(r.evictSeq)
	r.evictSeq++
	r.EvictPaths++
	// The eviction path moves Z+S blocks per bucket in both directions;
	// account the dummy slots on top of what pathAccess charges (Z each
	// way) so the traffic matches the protocol.
	_, _, done := c.pathAccess(now, leaf, block.Invalid, block.PathEvict)
	extra := (c.o.Levels - c.minLevel) * r.s
	c.st.Paths.BlocksRead += uint64(extra)
	c.st.Paths.BlocksWrit += uint64(extra)
	c.accBuf = c.accBuf[:0]
	base, _ := c.layout.BucketPhys(c.o.Levels-1, leaf)
	for j := 0; j < extra; j++ {
		c.accBuf = append(c.accBuf, dram.Access{Addr: base + uint64(j)})
	}
	done = c.mem.ServiceBatch(done, c.accBuf)
	c.accBuf = c.accBuf[:0]
	for j := 0; j < extra; j++ {
		c.accBuf = append(c.accBuf, dram.Access{Addr: base + uint64(j), Write: true})
	}
	c.mem.PostWrites(done, c.accBuf)
	// Replenish dummies along the path.
	for l := c.minLevel; l < c.o.Levels; l++ {
		r.dummyLeft[r.bucket(c.o.Levels, l, leaf)] = uint8(r.s)
	}
	return done + c.o.OnChipLatency
}

// reverseLexLeaf maps the eviction counter to the reverse-lexicographic
// leaf order Ring ORAM (and Onion/others) use: bit-reverse the counter in
// the leaf-index width, which spreads consecutive evictions across disjoint
// subtrees.
func (c *Controller) reverseLexLeaf(seq uint64) block.Leaf {
	bits := uint(c.o.Levels - 1)
	var rev uint64
	for i := uint(0); i < bits; i++ {
		rev = (rev << 1) | ((seq >> i) & 1)
	}
	return block.Leaf(rev % c.o.LeafCount())
}
