package core

import (
	"iroram/internal/block"
	"iroram/internal/dram"
	"iroram/internal/stash"
)

// This file retains the pre-fusion, multi-walk shape of the path access as
// a reference implementation, the same discipline as
// evictOntoPathReference: the production pipeline (pathAccess) does the
// read-gather, stash insert, target extraction and writeback posting in a
// single walk over the path serviced from memoized run lists; the
// reference rebuilds the physical address list every time, services it
// per-address through the dram oracle (ServiceBatch/PostWrites), resolves
// the target's level with a separate tree.Find walk, and stages the read
// phase through readBuf before scanning it. Both must produce identical
// timing, statistics, stash order and tree state for every access;
// TestFusedPipelineMatchesReference drives whole workloads through each
// and compares. Controller.refPipeline routes pathAccess here.

// pathAccessReference is the multi-walk main-tree path access.
func (c *Controller) pathAccessReference(now uint64, leaf block.Leaf, target block.ID,
	ptype block.PathType) (found bool, foundLevel int, done uint64) {
	foundLevel = -1
	if lvl, ok := c.tr.Find(target, leaf); ok {
		foundLevel = lvl
	}

	// Read phase, per-address: rebuild the []dram.Access batch the way the
	// pre-PR3 controller did and service it through the dram oracle.
	c.physBuf = c.layout.PathPhys(leaf, c.physBuf[:0])
	c.accBuf = c.accBuf[:0]
	for _, a := range c.physBuf {
		c.accBuf = append(c.accBuf, dram.Access{Addr: a})
	}
	readDone := c.mem.ServiceBatch(now, c.accBuf)
	c.st.PhaseReadCycles += readDone - now

	c.fetched.Reset()
	c.readBuf = c.tr.ReadPath(leaf, c.readBuf[:0])
	if c.top != nil {
		c.readBuf = c.top.ReadPath(leaf, c.readBuf)
	}
	for _, e := range c.readBuf {
		c.fetched.Add(e.Addr)
		if e.Addr == target {
			found = true
			continue
		}
		c.fstash.Insert(e)
	}
	if !found {
		foundLevel = -1
	}

	c.evictBuf = evictOntoPath(c.fstash, c.tr, c.top, c.o.Z, c.minLevel,
		c.o.Levels, leaf, nil, c.evictList, c.evictBuf, c.placeMainRef, nil)

	c.accBuf = c.accBuf[:0]
	for _, a := range c.physBuf {
		c.accBuf = append(c.accBuf, dram.Access{Addr: a, Write: true})
	}
	writeDone := c.mem.PostWrites(readDone, c.accBuf)
	c.st.PhaseWriteBackCycles += writeDone - readDone

	c.st.Paths.Add(ptype, len(c.physBuf), len(c.physBuf))
	done = readDone + c.o.OnChipLatency
	c.st.PathLatency[ptype].Observe(done - now)
	if c.st.RecordLeaves {
		c.st.Leaves = append(c.st.Leaves, leaf)
	}
	return found, foundLevel, done
}

// rhoPathAccessReference is the multi-walk small-tree path access.
func (c *Controller) rhoPathAccessReference(now uint64, leaf block.Leaf, target block.ID,
	ptype block.PathType) (found bool, done uint64) {
	r := c.rho
	c.physBuf = r.layout.PathPhys(leaf, c.physBuf[:0])
	c.accBuf = c.accBuf[:0]
	for _, a := range c.physBuf {
		c.accBuf = append(c.accBuf, dram.Access{Addr: a + r.physOff})
	}
	readDone := c.mem.ServiceBatch(now, c.accBuf)
	c.st.PhaseReadCycles += readDone - now

	c.readBuf = r.tr.ReadPath(leaf, c.readBuf[:0])
	var top stash.TopStore // keep a nil *TopCache a nil interface
	if r.top != nil {
		top = r.top
		c.readBuf = r.top.ReadPath(leaf, c.readBuf)
	}
	for _, e := range c.readBuf {
		if e.Addr == target {
			found = true
			continue
		}
		r.fstash.Insert(e)
	}
	c.evictBuf = evictOntoPath(r.fstash, r.tr, top, r.o.Z, r.o.TopLevels,
		r.o.Levels, leaf, nil, c.evictList, c.evictBuf, nil, nil)

	c.accBuf = c.accBuf[:0]
	for _, a := range c.physBuf {
		c.accBuf = append(c.accBuf, dram.Access{Addr: a + r.physOff, Write: true})
	}
	writeDone := c.mem.PostWrites(readDone, c.accBuf)
	c.st.PhaseWriteBackCycles += writeDone - readDone
	c.st.Paths.Add(ptype, len(c.physBuf), len(c.physBuf))
	done = readDone + c.o.OnChipLatency
	c.st.PathLatency[ptype].Observe(done - now)
	r.SmallPaths++
	return found, done
}
