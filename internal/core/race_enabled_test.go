//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; allocation
// tests skip under it because instrumentation changes escape analysis.
const raceEnabled = true
