package core

import "testing"

func TestEpochSetBasics(t *testing.T) {
	s := newEpochSet(64)
	if s.Has(3) {
		t.Fatal("fresh set reports membership")
	}
	s.Add(3)
	s.Add(63)
	if !s.Has(3) || !s.Has(63) || s.Has(4) {
		t.Fatal("membership after Add wrong")
	}
	s.Reset()
	if s.Has(3) || s.Has(63) {
		t.Fatal("Reset did not empty the set")
	}
	s.Add(4)
	if !s.Has(4) || s.Has(3) {
		t.Fatal("membership after Reset+Add wrong")
	}
}

// TestEpochSetGenerationWrap forces the uint32 generation counter through
// its wrap and checks stale stamps from the previous cycle cannot alias
// the restarted generation.
func TestEpochSetGenerationWrap(t *testing.T) {
	s := newEpochSet(8)
	s.Add(1)
	s.gen = ^uint32(0) // next Reset wraps
	s.stamps[2] = 1    // stale stamp that would alias gen==1 after wrap
	s.Reset()
	if s.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", s.gen)
	}
	if s.Has(1) || s.Has(2) {
		t.Fatal("stale stamps visible after generation wrap")
	}
	s.Add(5)
	if !s.Has(5) {
		t.Fatal("Add after wrap not visible")
	}
}
