package experiments

import (
	"fmt"

	"iroram/internal/config"
	"iroram/internal/flight"
)

// SearchStep records one accepted move of the greedy Z search.
type SearchStep struct {
	Level   int
	NewZ    int
	Cycles  uint64
	BgEvict uint64
}

// ZSearch implements the greedy bucket-size search of Section IV-B: starting
// from Z=4 everywhere with Z=3 at the first bottom-band level, it repeatedly
// shrinks the cheapest middle level, accepting a move only while
//
//   - the DRAM space reduction stays within 1%, and
//   - background evictions grow by at most 15% over the uniform baseline,
//
// both evaluated on random memory traces (the worst case for middle-level
// utilization). The search depends only on the ORAM configuration — not on
// applications — so it runs once per deployment.
//
// The greedy loop itself is inherently sequential (each accepted move feeds
// the next iteration), but all candidate evaluations within one iteration
// are independent simulations and fan out across opts.Jobs workers. The
// chosen move is selected from the evaluated batch in ascending level order
// with a strict improvement test, which reproduces the sequential search's
// result exactly.
func ZSearch(opts Options) (config.ZProfile, []SearchStep, error) {
	if opts.Figure == "" {
		opts.Figure = "zsearch"
	}
	o := opts.Base.ORAM
	base := config.Uniform(o.Levels, 4)
	scheme := config.IRAllocScheme()

	type eval struct {
		cycles   uint64
		bg       uint64
		requests uint64
		trace    *flight.Trace
	}
	evaluate := func(prof config.ZProfile) (eval, error) {
		res, err := opts.runProfile(scheme, prof, "random")
		if err != nil {
			return eval{}, err
		}
		return eval{cycles: res.Cycles, bg: res.ORAM.BgEvictions,
			requests: res.Requests, trace: res.Flight}, nil
	}
	// The search reduces each evaluation to (cycles, evictions), so the
	// sidecar carries partial records: one for the uniform baseline and one
	// per accepted move, background evictions as the headline value. Flight
	// traces, when requested, follow the same policy — only the baseline and
	// the accepted moves export, appended here on the calling goroutine.
	emitStep := func(label string, e eval) {
		opts.emitProbe(scheme.Name, "random", label, e.requests, e.cycles, float64(e.bg))
		if opts.Flight != nil && e.trace != nil {
			opts.Flight.Add(FlightCell{Figure: opts.Figure, Scheme: scheme.Name,
				Benchmark: "random", Label: label, Trace: e.trace})
		}
	}

	baseEval, err := evaluate(base)
	if err != nil {
		return nil, nil, err
	}
	emitStep("uniform", baseEval)
	baseCycles, baseBg := baseEval.cycles, baseEval.bg
	bgLimit := baseBg + baseBg*15/100
	if bgLimit < baseBg+4 {
		bgLimit = baseBg + 4 // headroom for near-zero baselines at small scale
	}

	current := append(config.ZProfile(nil), base...)
	// The paper's starting point: Z=3 at the first bottom-band level
	// ("level 19" at L=25, i.e. 6 levels above the leaves).
	if start := o.Levels - 6; start >= o.TopLevels {
		cand := append(config.ZProfile(nil), current...)
		cand[start] = 3
		if e, err := evaluate(cand); err != nil {
			return nil, nil, err
		} else if e.bg <= bgLimit && cand.SpaceReductionVs(base, o.TopLevels) < 0.01 {
			current = cand
			baseCycles = e.cycles
			emitStep(fmt.Sprintf("L%d=Z3", start), e)
		}
	}

	var steps []SearchStep
	for iter := 0; iter < 4*o.Levels; iter++ {
		// Enumerate the candidate moves. Shrink middle levels top-down:
		// upper levels hold the least data, so they are the cheapest to
		// shrink (the paper's "gradually shrink lower levels" greedy order,
		// expressed leaf-relative).
		type candidate struct {
			level int
			prof  config.ZProfile
		}
		var cands []candidate
		for l := o.TopLevels; l < o.Levels-1; l++ {
			if current[l] <= 1 {
				continue
			}
			cand := append(config.ZProfile(nil), current...)
			cand[l]--
			if cand.SpaceReductionVs(base, o.TopLevels) >= 0.01 {
				continue
			}
			cands = append(cands, candidate{level: l, prof: cand})
		}
		evals, err := mapCells(opts, len(cands), func(i int) (eval, error) {
			return evaluate(cands[i].prof)
		})
		if err != nil {
			return nil, nil, err
		}
		bestIdx := -1
		for i, e := range evals {
			if e.bg > bgLimit {
				continue
			}
			if e.cycles < baseCycles && (bestIdx < 0 || e.cycles < evals[bestIdx].cycles) {
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // local maximum in performance improvement
		}
		best := cands[bestIdx]
		current[best.level]--
		baseCycles = evals[bestIdx].cycles
		emitStep(fmt.Sprintf("L%d=Z%d", best.level, current[best.level]), evals[bestIdx])
		steps = append(steps, SearchStep{
			Level: best.level, NewZ: current[best.level],
			Cycles: evals[bestIdx].cycles, BgEvict: evals[bestIdx].bg,
		})
	}
	return current, steps, nil
}

// DescribeProfile renders a profile as compact level ranges, e.g.
// "Z=2@[10,16] Z=3@[17,19] Z=4@[20,24]".
func DescribeProfile(p config.ZProfile, topLevels int) string {
	out := ""
	l := topLevels
	for l < len(p) {
		r := l
		for r+1 < len(p) && p[r+1] == p[l] {
			r++
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("Z=%d@[%d,%d]", p[l], l, r)
		l = r + 1
	}
	return out
}
