package experiments

import (
	"fmt"

	"iroram/internal/config"
)

// SearchStep records one accepted move of the greedy Z search.
type SearchStep struct {
	Level   int
	NewZ    int
	Cycles  uint64
	BgEvict uint64
}

// ZSearch implements the greedy bucket-size search of Section IV-B: starting
// from Z=4 everywhere with Z=3 at the first bottom-band level, it repeatedly
// shrinks the cheapest middle level, accepting a move only while
//
//   - the DRAM space reduction stays within 1%, and
//   - background evictions grow by at most 15% over the uniform baseline,
//
// both evaluated on random memory traces (the worst case for middle-level
// utilization). The search depends only on the ORAM configuration — not on
// applications — so it runs once per deployment.
//
// The greedy loop itself is inherently sequential (each accepted move feeds
// the next iteration), but all candidate evaluations within one iteration
// are independent simulations and fan out across opts.Jobs workers. The
// chosen move is selected from the evaluated batch in ascending level order
// with a strict improvement test, which reproduces the sequential search's
// result exactly.
func ZSearch(opts Options) (config.ZProfile, []SearchStep, error) {
	o := opts.Base.ORAM
	base := config.Uniform(o.Levels, 4)

	evaluate := func(prof config.ZProfile) (cycles, bgEvict uint64, err error) {
		res, err := opts.runProfile(config.IRAllocScheme(), prof, "random")
		if err != nil {
			return 0, 0, err
		}
		return res.Cycles, res.ORAM.BgEvictions, nil
	}

	baseCycles, baseBg, err := evaluate(base)
	if err != nil {
		return nil, nil, err
	}
	bgLimit := baseBg + baseBg*15/100
	if bgLimit < baseBg+4 {
		bgLimit = baseBg + 4 // headroom for near-zero baselines at small scale
	}

	current := append(config.ZProfile(nil), base...)
	// The paper's starting point: Z=3 at the first bottom-band level
	// ("level 19" at L=25, i.e. 6 levels above the leaves).
	if start := o.Levels - 6; start >= o.TopLevels {
		cand := append(config.ZProfile(nil), current...)
		cand[start] = 3
		if cyc, bg, err := evaluate(cand); err != nil {
			return nil, nil, err
		} else if bg <= bgLimit && cand.SpaceReductionVs(base, o.TopLevels) < 0.01 {
			current = cand
			baseCycles = cyc
		}
	}

	type eval struct {
		cycles uint64
		bg     uint64
	}
	var steps []SearchStep
	for iter := 0; iter < 4*o.Levels; iter++ {
		// Enumerate the candidate moves. Shrink middle levels top-down:
		// upper levels hold the least data, so they are the cheapest to
		// shrink (the paper's "gradually shrink lower levels" greedy order,
		// expressed leaf-relative).
		type candidate struct {
			level int
			prof  config.ZProfile
		}
		var cands []candidate
		for l := o.TopLevels; l < o.Levels-1; l++ {
			if current[l] <= 1 {
				continue
			}
			cand := append(config.ZProfile(nil), current...)
			cand[l]--
			if cand.SpaceReductionVs(base, o.TopLevels) >= 0.01 {
				continue
			}
			cands = append(cands, candidate{level: l, prof: cand})
		}
		evals, err := mapCells(opts, len(cands), func(i int) (eval, error) {
			cyc, bg, err := evaluate(cands[i].prof)
			return eval{cycles: cyc, bg: bg}, err
		})
		if err != nil {
			return nil, nil, err
		}
		bestIdx := -1
		for i, e := range evals {
			if e.bg > bgLimit {
				continue
			}
			if e.cycles < baseCycles && (bestIdx < 0 || e.cycles < evals[bestIdx].cycles) {
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // local maximum in performance improvement
		}
		best := cands[bestIdx]
		current[best.level]--
		baseCycles = evals[bestIdx].cycles
		steps = append(steps, SearchStep{
			Level: best.level, NewZ: current[best.level],
			Cycles: evals[bestIdx].cycles, BgEvict: evals[bestIdx].bg,
		})
	}
	return current, steps, nil
}

// DescribeProfile renders a profile as compact level ranges, e.g.
// "Z=2@[10,16] Z=3@[17,19] Z=4@[20,24]".
func DescribeProfile(p config.ZProfile, topLevels int) string {
	out := ""
	l := topLevels
	for l < len(p) {
		r := l
		for r+1 < len(p) && p[r+1] == p[l] {
			r++
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("Z=%d@[%d,%d]", p[l], l, r)
		l = r + 1
	}
	return out
}
