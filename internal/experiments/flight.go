package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"iroram/internal/flight"
	"iroram/internal/sim"
)

// FlightCell pairs one simulated cell's identity with its flight-recorder
// trace snapshot. Cells accumulate in a FlightLog exactly like artifact
// Records accumulate in an ArtifactLog: appended post-batch in cell-index
// order on the calling goroutine, so trace files are byte-identical for
// every Jobs value.
type FlightCell struct {
	Figure, Scheme, Benchmark, Label string
	Trace                            *flight.Trace
}

// processName is the Perfetto process title of the cell.
func (c FlightCell) processName() string {
	name := c.Scheme + "/" + c.Benchmark
	if c.Label != "" {
		name += "/" + c.Label
	}
	return name
}

// attachFlight attaches a private flight recorder to a directly-built
// System when the options request tracing — the twin of what cell.run
// does on the cached runCell path, for drivers that construct their own
// Systems (the utilization figures).
func (o Options) attachFlight(s *sim.System) {
	if o.FlightSample > 0 {
		s.AttachFlight(flight.New(o.FlightCap, o.FlightSample))
	}
}

// FlightLog accumulates flight traces during a sweep. Like ArtifactLog it
// is deliberately unsynchronized — drivers append only after a batch has
// completed, from the sweep's calling goroutine.
type FlightLog struct {
	cells []FlightCell
}

// Add appends one traced cell.
func (l *FlightLog) Add(c FlightCell) { l.cells = append(l.cells, c) }

// Len returns the number of accumulated traces.
func (l *FlightLog) Len() int { return len(l.cells) }

// Cells returns the accumulated traces in emission order. The slice is
// shared; callers must not mutate it.
func (l *FlightLog) Cells() []FlightCell { return l.cells }

// WriteDir writes the log under dir as one <figure>.trace.json Chrome
// trace-event file per distinct Figure value: every traced cell of the
// figure becomes one Perfetto process, in emission order. The directory
// is created if missing; existing trace files are replaced.
func (l *FlightLog) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: flight dir: %w", err)
	}
	order := []string{}
	byFig := map[string][]flight.Process{}
	for _, c := range l.cells {
		if _, ok := byFig[c.Figure]; !ok {
			order = append(order, c.Figure)
		}
		byFig[c.Figure] = append(byFig[c.Figure], flight.Process{
			Name: c.processName(), Trace: c.Trace})
	}
	for _, fig := range order {
		path := filepath.Join(dir, fig+".trace.json")
		if err := flight.WriteFile(path, byFig[fig]); err != nil {
			return fmt.Errorf("experiments: flight trace %s: %w", path, err)
		}
	}
	return nil
}
