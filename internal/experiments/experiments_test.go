package experiments

import (
	"strings"
	"testing"

	"iroram/internal/config"
)

func TestTable2Shapes(t *testing.T) {
	tab, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// lbm must be far more write-intensive than gcc in the simulation, as
	// in Table II.
	lbmW, _ := tab.Get("lbm", "write MPKI (sim)")
	gccW, _ := tab.Get("gcc", "write MPKI (sim)")
	if lbmW <= gccW {
		t.Errorf("lbm write MPKI %.2f <= gcc %.2f", lbmW, gccW)
	}
	mcfR, _ := tab.Get("mcf", "read MPKI (sim)")
	if mcfR < 1 {
		t.Errorf("mcf read MPKI %.2f implausibly low", mcfR)
	}
}

func TestFig2Distribution(t *testing.T) {
	tab, err := Fig2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Fractions per row must sum to about 1 across the five types.
	for _, row := range tab.Rows {
		sum := 0.0
		for _, s := range tab.Series {
			v, _ := tab.Get(row, s.Name)
			sum += v
		}
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("%s: type fractions sum to %.3f", row, sum)
		}
	}
	// PTd dominates PosMap types on average, and Pos1 > Pos2 (Fig 2).
	ptd, _ := tab.Get("avg", "PTd")
	p1, _ := tab.Get("avg", "PTp(Pos1)")
	p2, _ := tab.Get("avg", "PTp(Pos2)")
	if ptd <= p1 || p1 < p2 {
		t.Errorf("ordering violated: PTd=%.3f Pos1=%.3f Pos2=%.3f", ptd, p1, p2)
	}
}

func TestFig3UtilizationBands(t *testing.T) {
	opts := Quick()
	opts.Requests = 4000
	tab, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	levels := opts.Base.ORAM.Levels
	final := tab.Series[len(tab.Series)-1]
	leaf := final.Values[levels-1]
	mid := final.Values[levels-4]
	if leaf <= mid {
		t.Errorf("leaf utilization %.3f not above middle %.3f", leaf, mid)
	}
	if leaf < 0.5 {
		t.Errorf("leaf utilization %.3f below the paper's 70-80%% band shape", leaf)
	}
}

func TestFig5MigrationSkew(t *testing.T) {
	opts := Quick()
	tab, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing blocks skew toward the root relative to fetched blocks:
	// compare cumulative share over the top half.
	half := opts.Base.ORAM.Levels / 2
	pre, fetched := 0.0, 0.0
	for l := 0; l < half; l++ {
		p, _ := tab.Get(tab.Rows[l], "pre-existing")
		f, _ := tab.Get(tab.Rows[l], "fetched")
		pre += p
		fetched += f
	}
	if pre <= fetched {
		t.Errorf("pre-existing top-half share %.3f <= fetched %.3f (Fig 5 shape)", pre, fetched)
	}
}

func TestFig6TreeTopReuse(t *testing.T) {
	opts := Quick()
	tab, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks only at tiny scale: the tree-top share itself is a
	// scaled-geometry measurement (see EXPERIMENTS.md, Fig 6). The
	// cumulative series must be monotone and end at 1.
	prev := -1.0
	for _, row := range tab.Rows {
		c, ok := tab.Get(row, "cumulative")
		if !ok || c < prev-1e-9 {
			t.Fatalf("cumulative series not monotone at %s (%v after %v)", row, c, prev)
		}
		prev = c
	}
	last, _ := tab.Get(tab.Rows[len(tab.Rows)-1], "cumulative")
	if last < 0.99 || last > 1.01 {
		t.Errorf("cumulative share ends at %.3f", last)
	}
}

func TestFig7Arithmetic(t *testing.T) {
	opts := Default() // pure arithmetic: cheap even at full scale
	opts.Base = config.Paper()
	tab, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	for row, want := range map[string]float64{
		"no top cache":               100,
		"top cache (Baseline)":       60,
		"IR-Alloc (IR-ORAM profile)": 43,
	} {
		got, ok := tab.Get(row, "blocks/path")
		if !ok || got != want {
			t.Errorf("%s: %v, want %v", row, got, want)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	opts := Quick()
	tab, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline normalizes to 1; IR-ORAM must beat Baseline and IR-Alloc
	// alone on the mean.
	for _, row := range tab.Rows {
		v, _ := tab.Get(row, "Baseline")
		if v != 1 {
			t.Errorf("%s: Baseline speedup %v != 1", row, v)
		}
	}
	iroram, _ := tab.Get("gmean", "IR-ORAM")
	if iroram <= 1 {
		t.Errorf("IR-ORAM gmean speedup %.3f <= 1", iroram)
	}
	alloc, _ := tab.Get("gmean", "IR-Alloc")
	if alloc <= 1 {
		t.Errorf("IR-Alloc gmean speedup %.3f <= 1", alloc)
	}
}

func TestFig14Reduction(t *testing.T) {
	opts := Quick()
	tab, err := Fig14(opts)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := tab.Get("mean", "normalized PosMap accesses")
	if mean >= 1.05 {
		t.Errorf("IR-Stash PosMap accesses %.3f of Baseline; expected reduction", mean)
	}
}

func TestFig15DummyDrop(t *testing.T) {
	opts := Quick()
	tab, err := Fig15(opts)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := tab.Get("avg", "dummy (Baseline)")
	dwb, _ := tab.Get("avg", "dummy (IR-DWB)")
	conv, _ := tab.Get("avg", "converted (IR-DWB)")
	if conv <= 0 {
		t.Fatal("nothing converted on average")
	}
	if dwb >= base {
		t.Errorf("dummy share %.3f with DWB >= %.3f without", dwb, base)
	}
}

func TestFig16Runs(t *testing.T) {
	opts := Quick()
	opts.Requests = 1200
	tab, err := Fig16(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		sp, _ := tab.Get(row, "speedup")
		if sp <= 0.8 {
			t.Errorf("%s: speedup %.3f", row, sp)
		}
	}
}

func TestZSearchRespectsConstraints(t *testing.T) {
	opts := Quick()
	opts.Requests = 1200
	prof, steps, err := ZSearch(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts.Base.ORAM
	base := config.Uniform(o.Levels, 4)
	if red := prof.SpaceReductionVs(base, o.TopLevels); red >= 0.01 {
		t.Errorf("space reduction %.4f violates the 1%% constraint", red)
	}
	for l := o.TopLevels; l < o.Levels; l++ {
		if prof[l] < 1 || prof[l] > 4 {
			t.Errorf("level %d: Z=%d", l, prof[l])
		}
	}
	if len(steps) > 0 && prof.BlocksPerPath(o.TopLevels) >= base.BlocksPerPath(o.TopLevels) {
		t.Error("accepted steps but path did not shrink")
	}
}

func TestDescribeProfile(t *testing.T) {
	p := config.Alloc1Profile(25, 10)
	got := DescribeProfile(p, 10)
	for _, want := range []string{"Z=2@[10,16]", "Z=3@[17,19]", "Z=4@[20,24]"} {
		if !strings.Contains(got, want) {
			t.Errorf("DescribeProfile = %q, missing %q", got, want)
		}
	}
}

func TestNoTimingProtectionAblation(t *testing.T) {
	opts := Quick()
	opts.Benchmarks = []string{"mcf", "lbm"}
	opts.Requests = 1200
	tab, err := NoTimingProtection(opts)
	if err != nil {
		t.Fatal(err)
	}
	with, _ := tab.Get("gmean", "with protection")
	without, _ := tab.Get("gmean", "without protection")
	if with <= 0 || without <= 0 {
		t.Errorf("speedups %v / %v", with, without)
	}
}
