package experiments

import (
	"iroram/internal/config"
	"iroram/internal/stats"
)

// Ring evaluates the Section VII orthogonality claim: Ring ORAM (Ren et
// al.) as an alternative read protocol, alone and composed with the
// IR-Alloc bucket-size profile. Reported per benchmark: speedup over the
// Path ORAM Baseline and the DRAM blocks moved per access (the bandwidth
// metric both designs fight over).
func Ring(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "gmean")
	t := stats.NewTable("Ring ORAM integration (Section VII)", rows...)

	schemes := []config.Scheme{
		config.Baseline(), config.RingScheme(), config.RingIRAlloc(),
	}
	grid, err := opts.runGrid(schemes, benches)
	if err != nil {
		return nil, err
	}
	base := cyclesOf(grid[0])
	for si, sch := range schemes[1:] {
		speed := make([]float64, len(benches))
		blocks := make([]float64, len(benches))
		for i, res := range grid[si+1] {
			speed[i] = base[i] / float64(res.Cycles)
			if total := res.ORAM.Paths.Total(); total > 0 {
				blocks[i] = float64(res.ORAM.Paths.BlocksRead+res.ORAM.Paths.BlocksWrit) /
					float64(total)
			}
		}
		gm := stats.GeoMean(speed)
		t.AddSeries(sch.Name+" speedup", append(append([]float64{}, speed...), gm))
		t.AddSeries(sch.Name+" blk/acc", append(append([]float64{}, blocks...), stats.Mean(blocks)))
	}
	return t, nil
}
