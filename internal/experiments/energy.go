package experiments

import (
	"iroram/internal/config"
	"iroram/internal/energy"
	"iroram/internal/stats"
)

// Energy reproduces the Section VI-F energy discussion: estimated total
// energy per scheme normalized to Baseline, plus the DRAM share that makes
// on-chip overheads negligible. The paper reports savings proportional to
// the performance improvement (~57% over Baseline for IR-ORAM at full
// scale).
func Energy(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "mean")
	t := stats.NewTable("Section VI-F: estimated energy normalized to Baseline", rows...)
	costs := energy.DefaultCosts()

	schemes := []config.Scheme{
		config.Baseline(), config.IRAllocScheme(), config.IROramScheme(),
	}
	grid, err := opts.runGrid(schemes, benches)
	if err != nil {
		return nil, err
	}
	baseTotals := make([]float64, len(benches))
	baseShares := make([]float64, len(benches))
	for i, res := range grid[0] {
		est := energy.Estimate(res, costs)
		baseTotals[i] = est.Total()
		baseShares[i] = est.DRAMShare()
	}
	t.AddSeries("Baseline DRAM share", append(append([]float64{}, baseShares...),
		stats.Mean(baseShares)))

	for si, sch := range schemes[1:] {
		vals := make([]float64, len(benches))
		for i, res := range grid[si+1] {
			if baseTotals[i] > 0 {
				vals[i] = energy.Estimate(res, costs).Total() / baseTotals[i]
			}
		}
		vals = append(vals, stats.Mean(vals))
		t.AddSeries(sch.Name+" energy", vals)
	}
	return t, nil
}
