package experiments

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/sim"
	"iroram/internal/stats"
	"iroram/internal/trace"
)

// Table2 measures each synthetic benchmark's LLC read-miss and dirty
// write-back MPKI under the Baseline system, next to the Table II targets
// the generators were calibrated against.
func Table2(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	t := stats.NewTable("Table II: benchmark memory intensity (measured vs paper)", benches...)
	targetR := make([]float64, len(benches))
	targetW := make([]float64, len(benches))
	for i, b := range benches {
		spec, err := trace.SpecFor(b)
		if err != nil {
			return nil, err
		}
		targetR[i], targetW[i] = spec.ReadMPKI, spec.WriteMPKI
	}
	results, err := opts.runBenches(config.Baseline(), benches)
	if err != nil {
		return nil, err
	}
	gotR := make([]float64, len(benches))
	gotW := make([]float64, len(benches))
	for i, res := range results {
		gotR[i], gotW[i] = res.ReadMPKI(), res.WriteMPKI()
	}
	t.AddSeries("read MPKI (paper)", targetR)
	t.AddSeries("read MPKI (sim)", gotR)
	t.AddSeries("write MPKI (paper)", targetW)
	t.AddSeries("write MPKI (sim)", gotW)
	return t, nil
}

// Fig2 reproduces the path-access-type distribution under Baseline: PT_d
// around half the accesses, PT_p(Pos1) several times PT_p(Pos2), and a
// visible PT_m share from timing protection.
func Fig2(opts Options) (*stats.Table, error) {
	benches := append(opts.benchmarks(), "avg")
	t := stats.NewTable("Fig 2: distribution of path access types (Baseline)", benches...)
	kinds := []struct {
		name  string
		types []block.PathType
	}{
		{"PTd", []block.PathType{block.PathData}},
		{"PTp(Pos1)", []block.PathType{block.PathPos1}},
		{"PTp(Pos2)", []block.PathType{block.PathPos2}},
		{"PTm", []block.PathType{block.PathDummy}},
		{"BgEvict", []block.PathType{block.PathEvict}},
	}
	cols := make([][]float64, len(kinds))
	for i := range cols {
		cols[i] = make([]float64, len(benches))
	}
	results, err := opts.runBenches(config.Baseline(), benches[:len(benches)-1])
	if err != nil {
		return nil, err
	}
	for bi, res := range results {
		for ki, k := range kinds {
			f := 0.0
			for _, pt := range k.types {
				f += res.ORAM.Paths.Fraction(pt)
			}
			cols[ki][bi] = f
		}
	}
	last := len(benches) - 1
	for ki := range kinds {
		cols[ki][last] = stats.Mean(cols[ki][:last])
		t.AddSeries(kinds[ki].name, cols[ki])
	}
	return t, nil
}

// utilizationTable runs the Fig 3 methodology (benchmark mix followed by a
// random tail) under the given scheme and returns utilization-per-level
// snapshots. Shared by Fig 3 (Baseline) and Fig 13 (IR-Alloc). The single
// run goes through mapCells so it honors cancellation like every driver.
// The run's full sim.Result rides along so the figure emits an artifact
// record (and a flight trace, when tracing) like every grid driver.
func utilizationTable(opts Options, sch config.Scheme, title string) (*stats.Table, error) {
	type utilCell struct {
		res   sim.Result
		snaps []sim.UtilSnapshot
	}
	cells, err := mapCells(opts, 1, func(int) (utilCell, error) {
		cfg := opts.Base.WithScheme(sch)
		cfg.Seed = opts.Seed
		s, err := sim.New(cfg)
		if err != nil {
			return utilCell{}, err
		}
		opts.attachFlight(s)
		gen := trace.UtilizationTrace(cfg.ORAM.DataBlocks(), opts.Requests, opts.Seed)
		res, out := s.RunWithSnapshots(gen, opts.Requests, 4)
		return utilCell{res: res, snaps: out}, nil
	})
	if err != nil {
		return nil, err
	}
	opts.emit(sch.Name, cells[0].res.Name, "", cells[0].res)
	t := stats.NewTable(title, levelRows(opts.Base.ORAM.Levels)...)
	for _, sn := range cells[0].snaps {
		t.AddSeries(sn.Label, sn.Util)
	}
	return t, nil
}

// Fig3 reproduces the per-level space-utilization snapshots for Baseline:
// fluctuating top levels, ~20-30% middle levels, 70-80% bottom levels.
func Fig3(opts Options) (*stats.Table, error) {
	return utilizationTable(opts, config.Baseline(),
		"Fig 3: space utilization per tree level (Baseline, mix + random tail)")
}

// Fig4 compares final utilization across workload classes (gcc, lbm,
// random), showing the per-benchmark trend of the paper.
func Fig4(opts Options) (*stats.Table, error) {
	benches := []string{"gcc", "lbm", "random"}
	t := stats.NewTable("Fig 4: space utilization per benchmark",
		levelRows(opts.Base.ORAM.Levels)...)
	type utilCell struct {
		res  sim.Result
		util []float64
	}
	cells, err := mapCells(opts, len(benches), func(i int) (utilCell, error) {
		cfg := opts.Base.WithScheme(config.Baseline())
		cfg.Seed = opts.Seed
		s, err := sim.New(cfg)
		if err != nil {
			return utilCell{}, err
		}
		opts.attachFlight(s)
		gen, err := genFor(benches[i], cfg.ORAM.DataBlocks(), cfg.Seed)
		if err != nil {
			return utilCell{}, err
		}
		res := s.Run(gen, opts.Requests)
		return utilCell{res: res, util: s.Controller().Utilization()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		opts.emit(config.Baseline().Name, b, "", cells[i].res)
		t.AddSeries(b, cells[i].util)
	}
	return t, nil
}

// Fig5 reproduces the block-migration study: at which levels write phases
// place blocks, split by whether the block was fetched by the same path
// access or pre-existed in the stash. Pre-existing blocks skew toward the
// root (small path overlap), fetched blocks toward the leaves.
func Fig5(opts Options) (*stats.Table, error) {
	rs, err := opts.runBenches(config.Baseline(), []string{"mix"})
	if err != nil {
		return nil, err
	}
	res := rs[0]
	levels := opts.Base.ORAM.Levels
	t := stats.NewTable("Fig 5: write-phase placement level by block origin", levelRows(levels)...)
	toShares := func(h *stats.LevelHist) []float64 {
		total := float64(h.Total())
		out := make([]float64, levels)
		for l, c := range h.Counts {
			if total > 0 {
				out[l] = float64(c) / total
			}
		}
		return out
	}
	t.AddSeries("pre-existing", toShares(res.ORAM.MigrationPreexisting))
	t.AddSeries("fetched", toShares(res.ORAM.MigrationFetched))
	return t, nil
}

// Fig6 reproduces the tree-top reuse study: the share of requested data
// blocks found at each level; the paper reports ~23% of hits within the
// top 10 levels despite their negligible capacity.
func Fig6(opts Options) (*stats.Table, error) {
	rs, err := opts.runBenches(config.Baseline(), []string{"mix"})
	if err != nil {
		return nil, err
	}
	res := rs[0]
	levels := opts.Base.ORAM.Levels
	t := stats.NewTable("Fig 6: level at which requested blocks are found", levelRows(levels)...)
	total := float64(res.ORAM.HitLevels.Total())
	share := make([]float64, levels)
	cum := make([]float64, levels)
	running := 0.0
	for l := 0; l < levels; l++ {
		if total > 0 {
			share[l] = float64(res.ORAM.HitLevels.Counts[l]) / total
		}
		running += share[l]
		cum[l] = running
	}
	t.AddSeries("share", share)
	t.AddSeries("cumulative", cum)
	return t, nil
}

// Fig7 is the per-path block-count arithmetic: no tree-top cache vs the
// 10-level dedicated cache vs the integrated IR-Alloc profile (100 / 60 /
// 43 at the paper's L=25).
func Fig7(opts Options) (*stats.Table, error) {
	o := opts.Base.ORAM
	t := stats.NewTable(
		fmt.Sprintf("Fig 7: data blocks moved per path access (L=%d, top %d levels on-chip)",
			o.Levels, o.TopLevels),
		"no top cache", "top cache (Baseline)", "IR-Alloc (IR-ORAM profile)")
	uni := config.Uniform(o.Levels, 4)
	t.AddSeries("blocks/path", []float64{
		float64(uni.BlocksPerPath(0)),
		float64(uni.BlocksPerPath(o.TopLevels)),
		float64(config.IROramProfile(o.Levels, o.TopLevels).BlocksPerPath(o.TopLevels)),
	})
	return t, nil
}

// Fig10 is the headline performance comparison: speedup over Baseline for
// Rho, IR-Alloc, IR-Stash, IR-DWB and integrated IR-ORAM, per benchmark
// plus the mix bar and the mean. The whole (scheme × benchmark) grid runs
// as one parallel batch; the Baseline row doubles as the normalization
// reference (it used to be simulated twice).
func Fig10(opts Options) (*stats.Table, error) {
	benches := append(opts.benchmarks(), "mix")
	rows := append(append([]string{}, benches...), "gmean")
	t := stats.NewTable("Fig 10: speedup over Baseline", rows...)

	schemes := []config.Scheme{
		config.Baseline(), config.RhoScheme(), config.IRAllocScheme(),
		config.IRStashScheme(), config.IRDWBScheme(), config.IROramScheme(),
	}
	grid, err := opts.runGrid(schemes, benches)
	if err != nil {
		return nil, err
	}
	baseCycles := cyclesOf(grid[0])
	for si, sch := range schemes {
		sp := speedups(baseCycles, cyclesOf(grid[si]))
		sp = append(sp, stats.GeoMean(sp))
		t.AddSeries(sch.Name, sp)
	}
	return t, nil
}

// Fig11 evaluates IR-Stash+IR-Alloc on top of an LLC-D baseline, plus the
// LLC-D-vs-Baseline column that shows the mcf regression.
func Fig11(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "gmean")
	t := stats.NewTable("Fig 11: IR-Stash+IR-Alloc over an LLC-D baseline", rows...)
	grid, err := opts.runGrid([]config.Scheme{
		config.Baseline(), config.LLCDScheme(), config.IRStashAllocOnLLCD(),
	}, benches)
	if err != nil {
		return nil, err
	}
	base, llcd, combo := cyclesOf(grid[0]), cyclesOf(grid[1]), cyclesOf(grid[2])
	vsBase := speedups(base, llcd)
	vsLLCD := speedups(llcd, combo)
	vsBase = append(vsBase, stats.GeoMean(vsBase))
	vsLLCD = append(vsLLCD, stats.GeoMean(vsLLCD))
	t.AddSeries("LLC-D vs Baseline", vsBase)
	t.AddSeries("IR-Stash+IR-Alloc vs LLC-D", vsLLCD)
	return t, nil
}

// Fig12 sweeps the four IR-Alloc configurations of Section VI-B, reporting
// execution time normalized to Baseline and the share of time spent in
// background eviction (the shaded portion of the paper's bars).
func Fig12(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "mean")
	t := stats.NewTable("Fig 12: IR-Alloc configurations (normalized time; bg-eviction share)", rows...)
	o := opts.Base.ORAM
	profiles := []struct {
		name string
		prof config.ZProfile
	}{
		{"IR-Alloc1", config.Alloc1Profile(o.Levels, o.TopLevels)},
		{"IR-Alloc2", config.Alloc2Profile(o.Levels, o.TopLevels)},
		{"IR-Alloc3", config.Alloc3Profile(o.Levels, o.TopLevels)},
		{"IR-Alloc4", config.Alloc4Profile(o.Levels, o.TopLevels)},
	}
	baseRes, err := opts.runBenches(config.Baseline(), benches)
	if err != nil {
		return nil, err
	}
	base := cyclesOf(baseRes)
	// One batch for the whole (profile × benchmark) sweep.
	nb := len(benches)
	flat, err := mapCells(opts, len(profiles)*nb, func(i int) (sim.Result, error) {
		return opts.runProfile(config.IRAllocScheme(), profiles[i/nb].prof, benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range profiles {
		norm := make([]float64, nb)
		bgShare := make([]float64, nb)
		for i := 0; i < nb; i++ {
			res := flat[pi*nb+i]
			opts.emit(config.IRAllocScheme().Name, benches[i], p.name, res)
			norm[i] = float64(res.Cycles) / base[i]
			if res.Cycles > 0 {
				bgShare[i] = float64(res.ORAM.BgEvictionCycles) / float64(res.Cycles)
			}
		}
		norm = append(norm, stats.Mean(norm))
		bgShare = append(bgShare, stats.Mean(bgShare))
		t.AddSeries(p.name, norm)
		t.AddSeries(p.name+" bg", bgShare)
	}
	return t, nil
}

// Fig13 repeats the utilization study under IR-Alloc: middle levels run
// hotter than Fig 3 but stay below saturation for benchmark traces.
func Fig13(opts Options) (*stats.Table, error) {
	return utilizationTable(opts, config.IROramScheme(),
		"Fig 13: space utilization per tree level under IR-Alloc")
}

// Fig14 reports IR-Stash's PosMap path accesses normalized to Baseline
// (the paper measures 49% on average).
func Fig14(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "mean")
	t := stats.NewTable("Fig 14: PosMap accesses of IR-Stash normalized to Baseline", rows...)
	grid, err := opts.runGrid([]config.Scheme{
		config.Baseline(), config.IRStashScheme(),
	}, benches)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(benches))
	for i := range benches {
		r0, r1 := grid[0][i], grid[1][i]
		if r0.ORAM.PosMapPaths > 0 {
			vals[i] = float64(r1.ORAM.PosMapPaths) / float64(r0.ORAM.PosMapPaths)
		} else {
			vals[i] = 1
		}
	}
	vals = append(vals, stats.Mean(vals))
	t.AddSeries("normalized PosMap accesses", vals)
	return t, nil
}

// Fig15 reports the access-type distribution with IR-DWB: the dummy share
// drops (11% -> 6% in the paper) and converted write-back slots appear.
func Fig15(opts Options) (*stats.Table, error) {
	benches := append(opts.benchmarks(), "avg")
	t := stats.NewTable("Fig 15: access type distribution under IR-DWB", benches...)
	grid, err := opts.runGrid([]config.Scheme{
		config.Baseline(), config.IRDWBScheme(),
	}, benches[:len(benches)-1])
	if err != nil {
		return nil, err
	}
	dummyBase := make([]float64, len(benches))
	dummyDWB := make([]float64, len(benches))
	converted := make([]float64, len(benches))
	for i := range benches[:len(benches)-1] {
		dummyBase[i] = grid[0][i].ORAM.Paths.Fraction(block.PathDummy)
		dummyDWB[i] = grid[1][i].ORAM.Paths.Fraction(block.PathDummy)
		converted[i] = grid[1][i].ORAM.Paths.Fraction(block.PathDWB)
	}
	last := len(benches) - 1
	dummyBase[last] = stats.Mean(dummyBase[:last])
	dummyDWB[last] = stats.Mean(dummyDWB[:last])
	converted[last] = stats.Mean(converted[:last])
	t.AddSeries("dummy (Baseline)", dummyBase)
	t.AddSeries("dummy (IR-DWB)", dummyDWB)
	t.AddSeries("converted (IR-DWB)", converted)
	return t, nil
}

// Fig16 is the IR-Alloc scalability study: speedup over Baseline on random
// traces as the protected memory grows (levels-1, levels, levels+1), with
// the across-seed standard deviation the paper reports as negligible. All
// (geometry × seed × scheme) cells run as one parallel batch.
func Fig16(opts Options, seeds int) (*stats.Table, error) {
	if seeds <= 0 {
		seeds = 3
	}
	baseLevels := opts.Base.ORAM.Levels
	deltas := []int{-1, 0, 1}
	rows := []string{}
	for _, d := range deltas {
		rows = append(rows, fmt.Sprintf("L=%d", baseLevels+d))
	}
	t := stats.NewTable("Fig 16: IR-Alloc scalability on random traces", rows...)

	type cell struct {
		levels int
		seed   uint64
		alloc  bool
	}
	var cells []cell
	for _, d := range deltas {
		for s := 0; s < seeds; s++ {
			seed := opts.Seed + uint64(s)*7919
			cells = append(cells, cell{levels: baseLevels + d, seed: seed, alloc: false})
			cells = append(cells, cell{levels: baseLevels + d, seed: seed, alloc: true})
		}
	}
	results, err := mapCells(opts, len(cells), func(i int) (sim.Result, error) {
		c := cells[i]
		o := opts
		o.Seed = c.seed
		o.Base.ORAM.Levels = c.levels
		o.Base.ORAM.Z = config.Uniform(c.levels, 4)
		o.Base.ORAM.UserBlocks = 0
		if !c.alloc {
			return o.runOne(config.Baseline(), "random")
		}
		// The paper re-runs its Z-finding algorithm per geometry; the
		// integrated (Z>=2) profile is the one that passes the random-trace
		// background-eviction constraint at every L here, so it stands in
		// for the per-geometry search result.
		return o.runProfile(config.IRAllocScheme(),
			config.IROramProfile(c.levels, o.Base.ORAM.TopLevels), "random")
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := opts
		o.Seed = c.seed
		name := config.Baseline().Name
		if c.alloc {
			name = config.IRAllocScheme().Name
		}
		o.emit(name, "random", fmt.Sprintf("L=%d", c.levels), results[i])
	}
	mean := make([]float64, 0, len(deltas))
	dev := make([]float64, 0, len(deltas))
	for di := range deltas {
		var sps []float64
		for s := 0; s < seeds; s++ {
			i := (di*seeds + s) * 2
			r0, r1 := results[i], results[i+1]
			sps = append(sps, float64(r0.Cycles)/float64(r1.Cycles))
		}
		mean = append(mean, stats.Mean(sps))
		dev = append(dev, stats.StdDev(sps))
	}
	t.AddSeries("speedup", mean)
	t.AddSeries("stddev", dev)
	return t, nil
}

// NoTimingProtection is the Section VI-A ablation: IR-Alloc's speedup with
// the timing channel defence disabled (T=0) next to the protected runs. The
// four (interval × scheme) sweeps run as one parallel batch.
func NoTimingProtection(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "gmean")
	t := stats.NewTable("Ablation: IR-Alloc speedup with and without timing protection", rows...)
	tp := opts.Base.ORAM.IntervalT
	variants := []struct {
		interval uint64
		sch      config.Scheme
	}{
		{tp, config.Baseline()},
		{tp, config.IRAllocScheme()},
		{0, config.Baseline()},
		{0, config.IRAllocScheme()},
	}
	nb := len(benches)
	flat, err := mapCells(opts, len(variants)*nb, func(i int) (sim.Result, error) {
		v := variants[i/nb]
		o := opts
		o.Base.ORAM.IntervalT = v.interval
		return o.runOne(v.sch, benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		for i, b := range benches {
			opts.emit(v.sch.Name, b, fmt.Sprintf("T=%d", v.interval), flat[vi*nb+i])
		}
	}
	row := func(vi int) []float64 { return cyclesOf(flat[vi*nb : (vi+1)*nb]) }
	withTP := speedups(row(0), row(1))
	without := speedups(row(2), row(3))
	withTP = append(withTP, stats.GeoMean(withTP))
	without = append(without, stats.GeoMean(without))
	t.AddSeries("with protection", withTP)
	t.AddSeries("without protection", without)
	return t, nil
}
