package experiments

import (
	"fmt"

	"iroram/internal/config"
	"iroram/internal/flight"
	"iroram/internal/sim"
	"iroram/internal/stats"
	"iroram/internal/trace"
)

// CoRun measures ORAM-sharing interference, the server scenario that
// motivates the paper (Section I cites Wang et al.'s co-running study and
// the covert-channel risk of per-application T values): two programs share
// one ORAM controller, polluting each other's PLB, stash and tree top.
//
// For each pair the table reports the interference factor
//
//	T(co-run of A+B) / (T(A solo) + T(B solo))
//
// where each member contributes half of opts.Requests: 1.0 means the shared
// controller time-slices perfectly; above 1.0 is destructive interference.
// The comparison is run under Baseline and IR-ORAM — reduced memory
// intensity leaves more slack for the co-runner. Every (scheme, pair) cell
// runs in parallel; the three runs inside a cell (two solos, one co-run)
// stay sequential on that worker.
func CoRun(opts Options, pairs [][2]string) (*stats.Table, error) {
	if len(pairs) == 0 {
		pairs = [][2]string{{"gcc", "mcf"}, {"mcf", "lbm"}, {"dee", "bla"}}
	}
	rows := make([]string, len(pairs))
	for i, p := range pairs {
		rows[i] = fmt.Sprintf("%s+%s", p[0], p[1])
	}
	t := stats.NewTable("Co-run: ORAM sharing interference factor", rows...)

	schemes := []config.Scheme{config.Baseline(), config.IROramScheme()}
	np := len(pairs)
	flat, err := mapCells(opts, len(schemes)*np, func(i int) (coRunProbe, error) {
		p := pairs[i%np]
		return opts.interference(schemes[i/np], p[0], p[1])
	})
	if err != nil {
		return nil, err
	}
	for si, sch := range schemes {
		vals := make([]float64, np)
		for pi, p := range pairs {
			probe := flat[si*np+pi]
			vals[pi] = probe.factor
			// The probe reduces three runs to one scalar, so the sidecar
			// carries a partial record: the co-run's cycle count plus the
			// interference factor as the headline value. The flight trace,
			// when requested, covers the co-run (not the solos).
			opts.emitProbe(sch.Name, p[0]+"+"+p[1], "",
				probe.requests, probe.cycles, probe.factor)
			if opts.Flight != nil && probe.trace != nil {
				opts.Flight.Add(FlightCell{Figure: opts.Figure, Scheme: sch.Name,
					Benchmark: p[0] + "+" + p[1], Trace: probe.trace})
			}
		}
		t.AddSeries(sch.Name, vals)
	}
	return t, nil
}

// coRunProbe is one (scheme, pair) interference measurement: the factor
// plus the co-run's raw cycle and request counts for the partial record,
// and its flight trace when tracing is on.
type coRunProbe struct {
	factor           float64
	cycles, requests uint64
	trace            *flight.Trace
}

func (o Options) interference(sch config.Scheme, a, b string) (coRunProbe, error) {
	half := o.Requests / 2
	solo := func(bench string) (uint64, error) {
		cfg := o.Base.WithScheme(sch)
		cfg.Seed = o.Seed
		s, err := sim.New(cfg)
		if err != nil {
			return 0, err
		}
		gen, err := genFor(bench, cfg.ORAM.DataBlocks(), cfg.Seed)
		if err != nil {
			return 0, err
		}
		return s.Run(gen, half).Cycles, nil
	}
	ta, err := solo(a)
	if err != nil {
		return coRunProbe{}, err
	}
	tb, err := solo(b)
	if err != nil {
		return coRunProbe{}, err
	}
	cfg := o.Base.WithScheme(sch)
	cfg.Seed = o.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return coRunProbe{}, err
	}
	o.attachFlight(s)
	ga, err := genFor(a, cfg.ORAM.DataBlocks(), cfg.Seed)
	if err != nil {
		return coRunProbe{}, err
	}
	gb, err := genFor(b, cfg.ORAM.DataBlocks(), cfg.Seed)
	if err != nil {
		return coRunProbe{}, err
	}
	mixed := s.Run(trace.NewMix(a+"+"+b, ga, gb), 2*half)
	return coRunProbe{
		factor:   float64(mixed.Cycles) / float64(ta+tb),
		cycles:   mixed.Cycles,
		requests: mixed.Requests,
		trace:    mixed.Flight,
	}, nil
}

// FutureWork evaluates the Section IV-D extension the paper defers: IR-ORAM
// over an LLC-D baseline with dummy paths converted to proactive PosMap
// prefetches for LLC LRU entries. Speedups are over the plain LLC-D
// baseline, next to the Fig 11 combination for reference.
func FutureWork(opts Options) (*stats.Table, error) {
	benches := opts.benchmarks()
	rows := append(append([]string{}, benches...), "gmean")
	t := stats.NewTable("Future work (Section IV-D): proactive remapping over LLC-D", rows...)

	grid, err := opts.runGrid([]config.Scheme{
		config.LLCDScheme(), config.IRStashAllocOnLLCD(), config.IROramOnLLCD(),
	}, benches)
	if err != nil {
		return nil, err
	}
	llcd := cyclesOf(grid[0])
	for si, sch := range []config.Scheme{config.IRStashAllocOnLLCD(), config.IROramOnLLCD()} {
		vals := make([]float64, len(benches))
		for i := range benches {
			vals[i] = llcd[i] / float64(grid[si+1][i].Cycles)
		}
		vals = append(vals, stats.GeoMean(vals))
		t.AddSeries(sch.Name, vals)
	}
	return t, nil
}
