package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"iroram/internal/cellcache"
	"iroram/internal/config"
)

// TestCachedResultImmutable pins the contract the cross-figure cache relies
// on (see the cellcache package doc): a sim.Result handed to consumers —
// table math, artifact records, repeat requesters — is never mutated, so
// serving the one stored value to every requester is safe. If this test
// ever fails, cache hits must start deep-copying.
func TestCachedResultImmutable(t *testing.T) {
	opts := Quick()
	opts.Requests = 400
	opts.Benchmarks = []string{"gcc", "mcf"}
	opts.Cache = cellcache.New()
	opts.EpochInterval = 100 // populate the Epochs slice so it is covered too

	res1, err := opts.runOne(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	before, err := json.Marshal(res1)
	if err != nil {
		t.Fatal(err)
	}

	// Exercise the real consumers against the stored value: a full driver
	// re-requests the Baseline/gcc cell (a hit returning the same Result),
	// does its table arithmetic, and builds artifact records from it.
	driver := opts
	driver.Artifacts = &ArtifactLog{}
	driver.Figure = "table2"
	if _, err := Table2(driver); err != nil {
		t.Fatal(err)
	}
	if hits, _ := opts.Cache.Stats(); hits == 0 {
		t.Fatal("driver did not hit the cached cell; the test exercises nothing")
	}

	res2, err := opts.runOne(config.Baseline(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics != res1.Metrics {
		t.Error("cache hit returned a different Snapshot pointer than the stored result")
	}
	after, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("stored sim.Result changed while consumers used it — hits must deep-copy")
	}
}
