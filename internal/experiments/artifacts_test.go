package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"iroram/internal/block"
	"iroram/internal/core"
	"iroram/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden artifact files")

// goldenRecord is a hand-built record exercising every Record field,
// including a metrics snapshot and an epoch entry, with fixed values so the
// encoded bytes pin the JSONL schema.
func goldenRecord() Record {
	var served uint64 = 298
	var latency metrics.Hist
	for _, v := range []uint64{130, 150, 196} {
		latency.Observe(v)
	}
	levels := metrics.NewLinearHist(4)
	levels.Add(2)
	levels.Add(3)
	levels.Add(3)

	reg := metrics.NewRegistry()
	reg.Counter("oram_served_requests", "requests", "completed requests", &served)
	reg.Histogram("oram_path_latency_ptd", "cycles", "PTd latency", &latency)
	reg.LinearHistogram("oram_hit_level", "levels", "hit level", levels)
	reg.GaugeFunc("oram_stash_occupancy", "blocks", "stash occupancy",
		func() float64 { return 1 })

	return Record{
		Schema:       SchemaVersion,
		Figure:       "fig10",
		Scheme:       "IR-ORAM",
		Benchmark:    "mcf",
		Label:        "L=14",
		Seed:         1,
		Requests:     300,
		Cycles:       128838,
		Instructions: 70500,
		IPC:          0.5472,
		ReadMPKI:     4.1986,
		WriteMPKI:    0,
		Metrics:      reg.Snapshot(),
		Epochs: []core.Epoch{{
			Paths:    200,
			Cycle:    26256,
			ByType:   [block.NumPathTypes]uint64{68, 68, 64},
			Served:   68,
			StashLen: 1,
		}},
	}
}

// TestRecordGolden byte-compares the JSONL encoding of a fully-populated
// record against the committed golden file, then round-trips the golden
// bytes through Record to prove the schema decodes losslessly. Regenerate
// with `go test ./internal/experiments -run Golden -update` after an
// intentional schema change (and bump SchemaVersion per docs/METRICS.md).
func TestRecordGolden(t *testing.T) {
	log := &ArtifactLog{}
	log.Add(goldenRecord())
	var buf bytes.Buffer
	if err := log.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "record_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded record drifted from golden schema\n got: %s\nwant: %s",
			buf.Bytes(), want)
	}

	// Round trip: golden bytes -> Record -> identical bytes.
	var rec Record
	if err := json.Unmarshal(want, &rec); err != nil {
		t.Fatalf("golden record does not decode: %v", err)
	}
	if rec.Schema != SchemaVersion {
		t.Errorf("golden schema = %d, want %d", rec.Schema, SchemaVersion)
	}
	round := &ArtifactLog{}
	round.Add(rec)
	var buf2 bytes.Buffer
	if err := round.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), want) {
		t.Errorf("round trip not lossless\n got: %s\nwant: %s", buf2.Bytes(), want)
	}
}

// TestArtifactsJobsInvariance runs the same sweep sequentially and with
// four workers and requires byte-identical artifacts — the JSONL leg of
// the engine's determinism contract.
func TestArtifactsJobsInvariance(t *testing.T) {
	encode := func(jobs int) []byte {
		opts := Quick()
		opts.Requests = 1000
		opts.Jobs = jobs
		opts.Figure = "fig10"
		opts.EpochInterval = 500
		opts.Artifacts = &ArtifactLog{}
		if _, err := Fig10(opts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := opts.Artifacts.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if opts.Artifacts.Len() == 0 {
			t.Fatal("sweep emitted no artifact records")
		}
		return buf.Bytes()
	}
	seq := encode(1)
	par := encode(4)
	if !bytes.Equal(seq, par) {
		t.Error("artifact bytes differ between -jobs 1 and -jobs 4")
	}

	// Every line must decode and carry the full schema.
	lines := bytes.Split(bytes.TrimSuffix(seq, []byte("\n")), []byte("\n"))
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record %d does not decode: %v", i, err)
		}
		if rec.Schema != SchemaVersion || rec.Figure != "fig10" ||
			rec.Scheme == "" || rec.Benchmark == "" {
			t.Errorf("record %d missing identity fields: %s", i, line)
		}
		if rec.Metrics == nil || rec.Metrics.Counters["sim_cycles"] != rec.Cycles {
			t.Errorf("record %d metrics snapshot missing or inconsistent", i)
		}
		if len(rec.Epochs) == 0 {
			t.Errorf("record %d has no epochs despite EpochInterval", i)
		}
	}
}

// TestWriteDirGroupsByFigure checks the one-sidecar-per-figure layout.
func TestWriteDirGroupsByFigure(t *testing.T) {
	log := &ArtifactLog{}
	a := goldenRecord()
	b := goldenRecord()
	b.Figure = "table2"
	log.Add(a)
	log.Add(b)
	log.Add(a)

	dir := t.TempDir()
	if err := log.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	for fig, wantLines := range map[string]int{"fig10": 2, "table2": 1} {
		data, err := os.ReadFile(filepath.Join(dir, fig+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
		if len(lines) != wantLines {
			t.Errorf("%s.jsonl has %d lines, want %d", fig, len(lines), wantLines)
		}
		for _, line := range lines {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Errorf("%s.jsonl line does not decode: %v", fig, err)
			} else if rec.Figure != fig {
				t.Errorf("%s.jsonl contains record for %q", fig, rec.Figure)
			}
		}
	}
}
