package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"iroram/internal/runner"
	"iroram/internal/stats"
)

// drivers lists every figure driver at Quick scale, so the determinism
// sweep covers all fan-out shapes (grids, profile sweeps, multi-seed cells,
// single-cell drivers).
var drivers = map[string]func(Options) (*stats.Table, error){
	"table2": Table2,
	"fig2":   Fig2,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  func(o Options) (*stats.Table, error) { return Fig16(o, 2) },
	"notp":   NoTimingProtection,
	"corun":  func(o Options) (*stats.Table, error) { return CoRun(o, [][2]string{{"gcc", "mcf"}}) },
	"ring":   Ring,
	"energy": Energy,
}

// TestParallelDeterminism asserts the tentpole guarantee: a figure run
// produces byte-identical table output no matter the worker count.
func TestParallelDeterminism(t *testing.T) {
	for name, fn := range drivers {
		t.Run(name, func(t *testing.T) {
			opts := Quick()
			opts.Requests = 800
			render := func(jobs int) string {
				o := opts
				o.Jobs = jobs
				tab, err := fn(o)
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				return tab.String()
			}
			seq := render(1)
			if par := render(4); par != seq {
				t.Errorf("output differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s--- jobs=4\n%s", seq, par)
			}
		})
	}
}

// TestZSearchParallelDeterminism asserts the greedy search picks the same
// profile and the same accepted steps at every worker count.
func TestZSearchParallelDeterminism(t *testing.T) {
	opts := Quick()
	opts.Requests = 800
	run := func(jobs int) (string, []SearchStep) {
		o := opts
		o.Jobs = jobs
		prof, steps, err := ZSearch(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return DescribeProfile(prof, o.Base.ORAM.TopLevels), steps
	}
	seqProf, seqSteps := run(1)
	parProf, parSteps := run(4)
	if seqProf != parProf {
		t.Errorf("profile differs: jobs=1 %s vs jobs=4 %s", seqProf, parProf)
	}
	if len(seqSteps) != len(parSteps) {
		t.Fatalf("step counts differ: %d vs %d", len(seqSteps), len(parSteps))
	}
	for i := range seqSteps {
		if seqSteps[i] != parSteps[i] {
			t.Errorf("step %d differs: %+v vs %+v", i, seqSteps[i], parSteps[i])
		}
	}
}

// TestSweepCancellation asserts a sweep stops promptly once its context is
// cancelled: no new cell starts, and the driver reports context.Canceled.
func TestSweepCancellation(t *testing.T) {
	opts := Quick()
	opts.Requests = 800
	opts.Jobs = 2

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		o := opts
		o.Context = ctx
		start := time.Now()
		if _, err := Fig10(o); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("pre-cancelled sweep still took %v", elapsed)
		}
	})

	t.Run("mid-flight", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var mu sync.Mutex
		cellsSeen := 0
		o := opts
		o.Context = ctx
		o.Progress = func(p runner.Progress) {
			mu.Lock()
			defer mu.Unlock()
			cellsSeen++
			if cellsSeen == 1 {
				cancel() // cancel after the first completed cell
			}
		}
		if _, err := Fig10(o); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		mu.Lock()
		defer mu.Unlock()
		// 2 workers and a cancel after the first completion: only the cells
		// already in flight may land afterwards.
		if cellsSeen > 4 {
			t.Errorf("%d cells completed after cancellation", cellsSeen)
		}
	})
}

// TestProgressReporting asserts the drivers surface per-batch progress with
// a sane Done/Total sequence.
func TestProgressReporting(t *testing.T) {
	opts := Quick()
	opts.Requests = 600
	opts.Jobs = 1
	var mu sync.Mutex
	total := 0
	batches := map[int]int{}
	opts.Progress = func(p runner.Progress) {
		mu.Lock()
		defer mu.Unlock()
		total++
		if p.Done < 1 || p.Done > p.Total {
			t.Errorf("implausible progress %d/%d", p.Done, p.Total)
		}
		batches[p.Total]++
	}
	if _, err := Fig10(opts); err != nil {
		t.Fatal(err)
	}
	// Fig 10 at Quick scale: 6 schemes × (3 benchmarks + mix) = 24 cells.
	if want := 24; total != want {
		t.Errorf("saw %d progress reports, want %d", total, want)
	}
	if got := batches[24]; got != 24 {
		t.Errorf("batch of 24 cells reported %d times, want 24", got)
	}
}
