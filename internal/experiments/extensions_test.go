package experiments

import (
	"testing"

	"iroram/internal/config"
)

func TestCoRunInterference(t *testing.T) {
	opts := Quick()
	opts.Requests = 2400
	tab, err := CoRun(opts, [][2]string{{"gcc", "mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"Baseline", "IR-ORAM"} {
		f, ok := tab.Get("gcc+mcf", series)
		if !ok {
			t.Fatalf("missing series %s", series)
		}
		// Sharing one controller cannot be much faster than perfect
		// time-slicing, and pathological blowups indicate a bug.
		if f < 0.5 || f > 4 {
			t.Errorf("%s interference factor %.3f implausible", series, f)
		}
	}
}

func TestFutureWorkProactiveRemap(t *testing.T) {
	opts := Quick()
	opts.Requests = 2500
	opts.Benchmarks = []string{"mcf", "bla"} // read-heavy: LLC-D's weak spot
	tab, err := FutureWork(opts)
	if err != nil {
		t.Fatal(err)
	}
	combo, _ := tab.Get("gmean", "IR-Stash+IR-Alloc/LLC-D")
	proactive, _ := tab.Get("gmean", "IR-ORAM/LLC-D")
	if combo <= 0 || proactive <= 0 {
		t.Fatalf("speedups %.3f / %.3f", combo, proactive)
	}
}

func TestProactiveRemapPrefetches(t *testing.T) {
	opts := Quick()
	opts.Requests = 3000
	res, err := opts.runOne(config.IROramOnLLCD(), "bla")
	if err != nil {
		t.Fatal(err)
	}
	if res.ORAM.ProactiveRemaps == 0 {
		t.Error("proactive remapping never prefetched a PosMap entry")
	}
	if res.ORAM.NonUniformIssues != 0 {
		t.Errorf("%d issue-gap violations under proactive remapping",
			res.ORAM.NonUniformIssues)
	}
}

func TestSStashAssocAblation(t *testing.T) {
	opts := Quick()
	opts.Requests = 1500
	opts.Benchmarks = []string{"gcc"}
	tab, err := SStashAssocAblation(opts, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	one, _ := tab.Get("1-way", "gmean speedup")
	four, _ := tab.Get("4-way", "gmean speedup")
	if one <= 0 || four <= 0 {
		t.Fatalf("speedups %v / %v", one, four)
	}
}

func TestIntervalAblation(t *testing.T) {
	opts := Quick()
	opts.Requests = 1200
	opts.Benchmarks = []string{"gcc"}
	tab, err := IntervalAblation(opts, []uint64{500, 1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Smaller T => strictly more dummies for an idle-heavy program.
	d500, _ := tab.Get("T=500", "dummy share")
	d4000, _ := tab.Get("T=4000", "dummy share")
	if d500 <= d4000 {
		t.Errorf("dummy share %.3f at T=500 <= %.3f at T=4000", d500, d4000)
	}
}

func TestMLPAblation(t *testing.T) {
	opts := Quick()
	opts.Requests = 1500
	opts.Benchmarks = []string{"mcf"}
	tab, err := MLPAblation(opts, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	one, _ := tab.Get("MLP=1", "time vs blocking core")
	four, _ := tab.Get("MLP=4", "time vs blocking core")
	if one != 1 {
		t.Errorf("MLP=1 reference should be 1, got %v", one)
	}
	if four > one {
		t.Errorf("more MLP slowed the run down: %v vs %v", four, one)
	}
}

func TestPLBAblation(t *testing.T) {
	opts := Quick()
	opts.Requests = 1500
	opts.Benchmarks = []string{"mcf"}
	tab, err := PLBAblation(opts, []int{16, 128})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := tab.Get("PLB=16", "PTp share")
	big, _ := tab.Get("PLB=128", "PTp share")
	if small < big {
		t.Errorf("PTp share %.3f with a small PLB < %.3f with a big one", small, big)
	}
}

func TestEnergyExperiment(t *testing.T) {
	opts := Quick()
	opts.Requests = 1500
	opts.Benchmarks = []string{"dee"}
	tab, err := Energy(opts)
	if err != nil {
		t.Fatal(err)
	}
	share, _ := tab.Get("mean", "Baseline DRAM share")
	if share < 0.7 {
		t.Errorf("DRAM share %.3f below the paper's regime", share)
	}
	ir, _ := tab.Get("mean", "IR-ORAM energy")
	if ir >= 1 {
		t.Errorf("IR-ORAM energy %.3f not below Baseline", ir)
	}
}
