package experiments

import (
	"fmt"

	"iroram/internal/config"
	"iroram/internal/sim"
	"iroram/internal/stats"
)

// The ablation studies behind design choices the paper states without
// plotting: S-Stash associativity ("we tested different set associativities
// and choose 4-way"), the timing-protection interval T (Section III-A's
// trade-off discussion), and the core's memory-level parallelism (the
// difference between a blocking core and the paper's OoO setup). Each sweep
// fans its (setting × benchmark) cells as one parallel batch.

// SStashAssocAblation sweeps the S-Stash associativity under IR-Stash and
// reports speedup over Baseline plus the set-conflict refusals per 1000
// paths. Low associativity refuses more tree-top fills (blocks bounce back
// to the F-Stash), eroding IR-Stash's benefit — the reason the paper picked
// 4-way.
func SStashAssocAblation(opts Options, ways []int) (*stats.Table, error) {
	if len(ways) == 0 {
		ways = []int{1, 2, 4, 8}
	}
	benches := opts.benchmarks()
	rows := make([]string, len(ways))
	for i, w := range ways {
		rows[i] = fmt.Sprintf("%d-way", w)
	}
	t := stats.NewTable("Ablation: S-Stash associativity (IR-Stash)", rows...)

	baseRes, err := opts.runBenches(config.Baseline(), benches)
	if err != nil {
		return nil, err
	}
	base := cyclesOf(baseRes)
	nb := len(benches)
	flat, err := mapCells(opts, len(ways)*nb, func(i int) (sim.Result, error) {
		o := opts
		o.Base.ORAM.SStashWays = ways[i/nb]
		return o.runOne(config.IRStashScheme(), benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	opts.emitFlat(config.IRStashScheme().Name, benches, rows, flat)
	speedups := make([]float64, len(ways))
	for wi := range ways {
		var sps []float64
		for i := 0; i < nb; i++ {
			sps = append(sps, base[i]/float64(flat[wi*nb+i].Cycles))
		}
		speedups[wi] = stats.GeoMean(sps)
	}
	t.AddSeries("gmean speedup", speedups)
	return t, nil
}

// IntervalAblation sweeps the timing-protection interval T under Baseline:
// smaller T means more dummy paths (bandwidth waste); larger T delays
// demand requests arriving between issues. The paper fixes T=1000 for all
// benchmarks to avoid the covert channel of per-application T.
func IntervalAblation(opts Options, intervals []uint64) (*stats.Table, error) {
	if len(intervals) == 0 {
		intervals = []uint64{250, 500, 1000, 2000, 4000}
	}
	benches := opts.benchmarks()
	rows := make([]string, len(intervals))
	for i, tv := range intervals {
		rows[i] = fmt.Sprintf("T=%d", tv)
	}
	t := stats.NewTable("Ablation: timing-protection interval (Baseline)", rows...)
	nb := len(benches)
	flat, err := mapCells(opts, len(intervals)*nb, func(i int) (sim.Result, error) {
		o := opts
		o.Base.ORAM.IntervalT = intervals[i/nb]
		return o.runOne(config.Baseline(), benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	opts.emitFlat(config.Baseline().Name, benches, rows, flat)
	cycles := make([]float64, len(intervals))
	dummyShare := make([]float64, len(intervals))
	for ti := range intervals {
		var cyc, dshare []float64
		for i := 0; i < nb; i++ {
			res := flat[ti*nb+i]
			cyc = append(cyc, float64(res.Cycles))
			if total := res.ORAM.Paths.Total(); total > 0 {
				dshare = append(dshare, float64(res.ORAM.DummyPaths)/float64(total))
			}
		}
		cycles[ti] = stats.Mean(cyc)
		dummyShare[ti] = stats.Mean(dshare)
	}
	// Normalize cycles to the T=1000-ish middle entry for readability.
	ref := cycles[len(cycles)/2]
	norm := make([]float64, len(cycles))
	for i, c := range cycles {
		if ref > 0 {
			norm[i] = c / ref
		}
	}
	t.AddSeries("normalized time", norm)
	t.AddSeries("dummy share", dummyShare)
	return t, nil
}

// MLPAblation sweeps the core's outstanding-miss budget under Baseline,
// quantifying how much of Path ORAM's cost an OoO core can hide — the
// modeling decision DESIGN.md documents.
func MLPAblation(opts Options, mlps []int) (*stats.Table, error) {
	if len(mlps) == 0 {
		mlps = []int{1, 2, 4, 8}
	}
	benches := opts.benchmarks()
	rows := make([]string, len(mlps))
	for i, m := range mlps {
		rows[i] = fmt.Sprintf("MLP=%d", m)
	}
	t := stats.NewTable("Ablation: core memory-level parallelism (Baseline)", rows...)
	nb := len(benches)
	flat, err := mapCells(opts, len(mlps)*nb, func(i int) (sim.Result, error) {
		o := opts
		o.Base.CPU.MLP = mlps[i/nb]
		return o.runOne(config.Baseline(), benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	opts.emitFlat(config.Baseline().Name, benches, rows, flat)
	vals := make([]float64, len(mlps))
	var ref float64
	for mi, m := range mlps {
		vals[mi] = stats.Mean(cyclesOf(flat[mi*nb : (mi+1)*nb]))
		if m == 1 {
			ref = vals[mi]
		}
	}
	if ref == 0 {
		ref = vals[0]
	}
	for i := range vals {
		vals[i] /= ref
	}
	t.AddSeries("time vs blocking core", vals)
	return t, nil
}

// PLBAblation sweeps the PLB capacity under Baseline: the PosMap-path share
// is the PLB's miss traffic, the quantity IR-Stash then attacks.
func PLBAblation(opts Options, entries []int) (*stats.Table, error) {
	if len(entries) == 0 {
		entries = []int{16, 32, 64, 128}
	}
	benches := opts.benchmarks()
	rows := make([]string, len(entries))
	for i, e := range entries {
		rows[i] = fmt.Sprintf("PLB=%d", e)
	}
	t := stats.NewTable("Ablation: PLB capacity (Baseline)", rows...)
	nb := len(benches)
	flat, err := mapCells(opts, len(entries)*nb, func(i int) (sim.Result, error) {
		e := entries[i/nb]
		o := opts
		o.Base.ORAM.PLBEntries = e
		o.Base.ORAM.PLBWays = 4
		if e < 4 {
			o.Base.ORAM.PLBWays = e
		}
		return o.runOne(config.Baseline(), benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	opts.emitFlat(config.Baseline().Name, benches, rows, flat)
	pos := make([]float64, len(entries))
	norm := make([]float64, len(entries))
	var ref float64
	for ei := range entries {
		var posShare, cyc []float64
		for i := 0; i < nb; i++ {
			res := flat[ei*nb+i]
			posShare = append(posShare, res.ORAM.PosPathFraction())
			cyc = append(cyc, float64(res.Cycles))
		}
		pos[ei] = stats.Mean(posShare)
		norm[ei] = stats.Mean(cyc)
		if ei == 0 {
			ref = norm[ei]
		}
	}
	for i := range norm {
		if ref > 0 {
			norm[i] /= ref
		}
	}
	t.AddSeries("PTp share", pos)
	t.AddSeries("normalized time", norm)
	return t, nil
}
