package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"iroram/internal/core"
	"iroram/internal/metrics"
	"iroram/internal/sim"
)

// SchemaVersion is the JSONL artifact schema version, bumped whenever a
// Record field or a registered metric name changes meaning (additive
// changes — new metric names — do not bump it; see docs/METRICS.md for the
// compatibility policy). Version 2: the `metrics` field became optional —
// probe drivers (Fig 3/4/13 utilization, the co-run interference probe,
// the Z-profile search) emit partial records without a registry snapshot,
// where version 1 guaranteed every record carried one.
const SchemaVersion = 2

// Record is one JSONL artifact line: the full metric dump of one simulated
// (figure, scheme, benchmark) cell. Field names and registered metric names
// are a stable schema (docs/METRICS.md); readers must tolerate unknown
// fields so additive changes stay compatible.
type Record struct {
	// Schema is SchemaVersion at emission time.
	Schema int `json:"schema"`
	// Figure names the experiment driver that ran the cell ("fig10",
	// "table2", "irsim", ...).
	Figure string `json:"figure"`
	// Scheme and Benchmark identify the cell within the figure's grid.
	Scheme    string `json:"scheme"`
	Benchmark string `json:"benchmark"`
	// Label distinguishes cells beyond (scheme, benchmark) in sweeps that
	// vary another axis: the Fig 12 profile name, Fig 16's geometry/seed,
	// the ablation variant. Empty for plain grid cells.
	Label string `json:"label,omitempty"`

	// Seed is the cell's simulation seed; Requests the trace records
	// actually consumed.
	Seed     uint64 `json:"seed"`
	Requests uint64 `json:"requests"`

	// Headline run outcomes, duplicated out of Metrics for cheap scanning.
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`
	ReadMPKI     float64 `json:"read_mpki"`
	WriteMPKI    float64 `json:"write_mpki"`

	// Value carries a probe driver's headline scalar when the cell's
	// outcome is not a full run summary: the co-run interference factor,
	// the Z-search candidate's background-eviction count. Zero (and
	// omitted) for full records.
	Value float64 `json:"value,omitempty"`

	// Metrics is the cell's full registry snapshot (every oram_*, sim_*,
	// llc_*, dram_*, flight_* instrument of docs/METRICS.md). Absent on
	// partial records from probe drivers (schema >= 2).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// Epochs is the periodic time series, present only when the run was
	// started with a non-zero epoch interval.
	Epochs []core.Epoch `json:"epochs,omitempty"`
}

// NewRecord assembles a Record from one run result. label may be empty.
func NewRecord(figure, scheme, bench, label string, seed uint64, r sim.Result) Record {
	return Record{
		Schema:       SchemaVersion,
		Figure:       figure,
		Scheme:       scheme,
		Benchmark:    bench,
		Label:        label,
		Seed:         seed,
		Requests:     r.Requests,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		IPC:          r.IPC(),
		ReadMPKI:     r.ReadMPKI(),
		WriteMPKI:    r.WriteMPKI(),
		Metrics:      r.Metrics,
		Epochs:       r.ORAM.Epochs,
	}
}

// NewProbeRecord assembles a partial Record for a probe cell — one whose
// driver reduces the run to a single scalar instead of keeping the full
// sim.Result (the co-run interference factor, a Z-search candidate's
// eviction count). Partial records carry identity, seed, request and
// cycle counts plus the probe's headline value, but no metrics snapshot.
func NewProbeRecord(figure, scheme, bench, label string, seed, requests,
	cycles uint64, value float64) Record {
	return Record{
		Schema:    SchemaVersion,
		Figure:    figure,
		Scheme:    scheme,
		Benchmark: bench,
		Label:     label,
		Seed:      seed,
		Requests:  requests,
		Cycles:    cycles,
		Value:     value,
	}
}

// ArtifactLog accumulates Records during a sweep and writes them out as
// JSONL. It is deliberately unsynchronized: the drivers append only after
// runner.Map has returned, in cell-index order on the calling goroutine,
// which is what makes the emitted bytes identical for every worker count
// (the same determinism contract as the printed tables).
type ArtifactLog struct {
	records []Record
}

// Add appends one record.
func (l *ArtifactLog) Add(rec Record) { l.records = append(l.records, rec) }

// Len returns the number of accumulated records.
func (l *ArtifactLog) Len() int { return len(l.records) }

// Records returns the accumulated records in emission order. The slice is
// shared; callers must not mutate it.
func (l *ArtifactLog) Records() []Record { return l.records }

// Encode writes every record to w as JSONL (one canonical JSON object per
// line, in emission order). encoding/json sorts map keys, so the bytes are
// a pure function of the records.
func (l *ArtifactLog) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range l.records {
		if err := enc.Encode(&l.records[i]); err != nil {
			return fmt.Errorf("experiments: encoding artifact record %d: %w", i, err)
		}
	}
	return nil
}

// WriteDir writes the log under dir as one <figure>.jsonl sidecar per
// distinct Figure value, records in emission order within each file. The
// directory is created if missing; existing sidecar files are replaced.
func (l *ArtifactLog) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: artifact dir: %w", err)
	}
	// Group by figure, preserving first-appearance order.
	order := []string{}
	byFig := map[string][]Record{}
	for _, rec := range l.records {
		if _, ok := byFig[rec.Figure]; !ok {
			order = append(order, rec.Figure)
		}
		byFig[rec.Figure] = append(byFig[rec.Figure], rec)
	}
	for _, fig := range order {
		path := filepath.Join(dir, fig+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: artifact file: %w", err)
		}
		sub := ArtifactLog{records: byFig[fig]}
		if err := sub.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("experiments: artifact file: %w", err)
		}
	}
	return nil
}

// emit appends one cell record to the options' artifact log and, when the
// cell was traced, its flight trace to the flight log. Callers must invoke
// it only after the cell batch has completed, in cell-index order, from
// the sweep's calling goroutine — never from worker goroutines — so
// artifact and trace bytes stay independent of Jobs.
func (o Options) emit(scheme, bench, label string, r sim.Result) {
	if o.Artifacts != nil {
		o.Artifacts.Add(NewRecord(o.Figure, scheme, bench, label, o.Seed, r))
	}
	if o.Flight != nil && r.Flight != nil {
		o.Flight.Add(FlightCell{Figure: o.Figure, Scheme: scheme,
			Benchmark: bench, Label: label, Trace: r.Flight})
	}
}

// emitProbe appends one partial record for a probe cell (see
// NewProbeRecord). Same ordering contract as emit.
func (o Options) emitProbe(scheme, bench, label string, requests, cycles uint64, value float64) {
	if o.Artifacts == nil {
		return
	}
	o.Artifacts.Add(NewProbeRecord(o.Figure, scheme, bench, label,
		o.Seed, requests, cycles, value))
}

// emitFlat appends records for a (variant × benchmark) flat batch laid out
// variant-major (the ablation sweeps' shape), one label per variant. Same
// ordering contract as emit.
func (o Options) emitFlat(scheme string, benches, labels []string, flat []sim.Result) {
	if o.Artifacts == nil && o.Flight == nil {
		return
	}
	nb := len(benches)
	for vi, lab := range labels {
		for i := 0; i < nb; i++ {
			o.emit(scheme, benches[i], lab, flat[vi*nb+i])
		}
	}
}
