// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the motivation studies (Section III). Each
// driver is a pure function of an Options value and returns a stats.Table
// whose rows/series mirror what the paper plots; cmd/experiments prints
// them and EXPERIMENTS.md records paper-vs-measured values.
//
// # Parallel execution
//
// Every driver decomposes into independent (scheme, benchmark) simulation
// cells. Each cell builds a private sim.System and trace.Generator from the
// cell's configuration and seed — a System is single-goroutine, so
// parallelism is always one System per worker — and the drivers fan cells
// across Options.Jobs workers via internal/runner. Results are collected by
// cell index, never by completion order, and every cell's randomness is a
// pure function of (Options.Seed, cell identity), so the tables are
// bit-identical for every worker count: Jobs == 1 reproduces the historical
// sequential loops exactly.
package experiments

import (
	"context"
	"fmt"

	"iroram/internal/config"
	"iroram/internal/runner"
	"iroram/internal/sim"
	"iroram/internal/trace"
)

// Options scales an experiment run.
type Options struct {
	// Base is the system geometry; scheme and Z profile are overridden per
	// run by the figure drivers.
	Base config.System
	// Requests is the number of trace records consumed per run.
	Requests int
	// Seed drives traces and ORAM randomness. Each simulation cell derives
	// its randomness purely from (Seed, cell identity), so results do not
	// depend on worker count or scheduling.
	Seed uint64
	// Benchmarks defaults to the 13 Table II programs.
	Benchmarks []string

	// Jobs bounds the number of concurrently simulated cells; zero or
	// negative means runtime.GOMAXPROCS(0), and 1 reproduces the historical
	// sequential behavior exactly.
	Jobs int
	// Context, when non-nil, cancels an in-flight sweep at the next cell
	// boundary (a started cell runs to completion; no new cell starts).
	Context context.Context
	// Progress, when non-nil, observes per-batch cell completion. Drivers
	// that fan several batches report each batch separately.
	Progress func(runner.Progress)

	// Artifacts, when non-nil, collects one JSONL Record per simulated
	// cell (see artifacts.go). Records are appended after each batch
	// completes, in cell-index order on the calling goroutine, so the
	// artifact bytes are identical for every Jobs value. Drivers whose
	// cells do not produce a full sim.Result (the utilization snapshots of
	// Fig 3/4/13, the co-run latency probe, zsearch) emit nothing.
	Artifacts *ArtifactLog
	// Figure labels the records emitted into Artifacts; the facade's
	// Experiment dispatcher sets it to the experiment name.
	Figure string

	// EpochInterval, when non-zero, enables periodic epoch snapshots every
	// EpochInterval issued paths in each cell's System (time series in the
	// artifact records). Off by default — it costs amortized allocations
	// on the access path.
	EpochInterval uint64
}

// Default returns the scaled full-fidelity options used by cmd/experiments.
func Default() Options {
	return Options{Base: config.Scaled(), Requests: 30000, Seed: 1}
}

// Quick returns reduced options for tests and benchmarks: tiny geometry,
// short traces, three representative benchmarks (low-intensity gcc,
// read-chasing mcf, write-streaming lbm).
func Quick() Options {
	return Options{
		Base:       config.Tiny(),
		Requests:   2000,
		Seed:       1,
		Benchmarks: []string{"gcc", "mcf", "lbm"},
	}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return trace.BenchmarkNames()
}

// pool assembles the runner configuration for one batch of cells.
func (o Options) pool() runner.Pool {
	return runner.Pool{Jobs: o.Jobs, Context: o.Context, OnProgress: o.Progress}
}

// mapCells fans fn over n independent cells on the options' worker pool;
// results come back ordered by cell index (see runner.Map). It is the one
// fan-out primitive every figure driver uses. fn must be safe to call from
// multiple goroutines, which holds for anything built on runOne/runProfile
// because each cell constructs a private System.
func mapCells[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(o.pool(), n, fn)
}

// runGrid evaluates the full (scheme × benchmark) grid as one parallel batch
// and returns results indexed [scheme][benchmark].
func (o Options) runGrid(schemes []config.Scheme, benches []string) ([][]sim.Result, error) {
	nb := len(benches)
	flat, err := mapCells(o, len(schemes)*nb, func(i int) (sim.Result, error) {
		return o.runOne(schemes[i/nb], benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	out := make([][]sim.Result, len(schemes))
	for si := range schemes {
		out[si] = flat[si*nb : (si+1)*nb]
		for bi, b := range benches {
			o.emit(schemes[si].Name, b, "", out[si][bi])
		}
	}
	return out, nil
}

// runBenches evaluates one scheme across benches as one parallel batch.
func (o Options) runBenches(sch config.Scheme, benches []string) ([]sim.Result, error) {
	rs, err := mapCells(o, len(benches), func(i int) (sim.Result, error) {
		return o.runOne(sch, benches[i])
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		o.emit(sch.Name, b, "", rs[i])
	}
	return rs, nil
}

// cyclesOf projects a result row onto its cycle counts.
func cyclesOf(rs []sim.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.Cycles)
	}
	return out
}

// genFor builds the workload generator named by bench ("mix", "random", or
// a Table II benchmark) over the configured protected space.
func (o Options) genFor(bench string, universe uint64) (trace.Generator, error) {
	switch bench {
	case "mix":
		return trace.PaperMix(universe, o.Seed), nil
	case "random":
		return trace.Random(universe, 0.5, o.Seed), nil
	default:
		return trace.Benchmark(bench, universe, o.Seed)
	}
}

// runOne executes one (scheme, benchmark) cell and returns its result. It
// builds a fresh System and Generator, so concurrent calls never share
// state.
func (o Options) runOne(sch config.Scheme, bench string) (sim.Result, error) {
	cfg := o.Base.WithScheme(sch)
	cfg.Seed = o.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", sch.Name, bench, err)
	}
	gen, err := o.genFor(bench, cfg.ORAM.DataBlocks())
	if err != nil {
		return sim.Result{}, err
	}
	s.SetEpochInterval(o.EpochInterval)
	return s.Run(gen, o.Requests), nil
}

// runProfile is runOne with an explicit Z profile override (Fig 12/16).
func (o Options) runProfile(sch config.Scheme, prof config.ZProfile, bench string) (sim.Result, error) {
	cfg := o.Base.WithScheme(sch)
	cfg.ORAM.Z = prof
	cfg.Seed = o.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", sch.Name, bench, err)
	}
	gen, err := o.genFor(bench, cfg.ORAM.DataBlocks())
	if err != nil {
		return sim.Result{}, err
	}
	s.SetEpochInterval(o.EpochInterval)
	return s.Run(gen, o.Requests), nil
}

// speedups converts per-row cycle counts into "vs baseline" speedups.
func speedups(base, scheme []float64) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		if scheme[i] > 0 {
			out[i] = base[i] / scheme[i]
		}
	}
	return out
}

func levelRows(levels int) []string {
	rows := make([]string, levels)
	for l := range rows {
		rows[l] = fmt.Sprintf("L%02d", l)
	}
	return rows
}
