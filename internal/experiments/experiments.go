// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the motivation studies (Section III). Each
// driver is a pure function of an Options value and returns a stats.Table
// whose rows/series mirror what the paper plots; cmd/experiments prints
// them and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"iroram/internal/config"
	"iroram/internal/sim"
	"iroram/internal/trace"
)

// Options scales an experiment run.
type Options struct {
	// Base is the system geometry; scheme and Z profile are overridden per
	// run by the figure drivers.
	Base config.System
	// Requests is the number of trace records consumed per run.
	Requests int
	// Seed drives traces and ORAM randomness.
	Seed uint64
	// Benchmarks defaults to the 13 Table II programs.
	Benchmarks []string
}

// Default returns the scaled full-fidelity options used by cmd/experiments.
func Default() Options {
	return Options{Base: config.Scaled(), Requests: 30000, Seed: 1}
}

// Quick returns reduced options for tests and benchmarks: tiny geometry,
// short traces, three representative benchmarks (low-intensity gcc,
// read-chasing mcf, write-streaming lbm).
func Quick() Options {
	return Options{
		Base:       config.Tiny(),
		Requests:   2000,
		Seed:       1,
		Benchmarks: []string{"gcc", "mcf", "lbm"},
	}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return trace.BenchmarkNames()
}

// genFor builds the workload generator named by bench ("mix", "random", or
// a Table II benchmark) over the configured protected space.
func (o Options) genFor(bench string, universe uint64) (trace.Generator, error) {
	switch bench {
	case "mix":
		return trace.PaperMix(universe, o.Seed), nil
	case "random":
		return trace.Random(universe, 0.5, o.Seed), nil
	default:
		return trace.Benchmark(bench, universe, o.Seed)
	}
}

// runOne executes one (scheme, benchmark) cell and returns its result.
func (o Options) runOne(sch config.Scheme, bench string) (sim.Result, error) {
	cfg := o.Base.WithScheme(sch)
	cfg.Seed = o.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", sch.Name, bench, err)
	}
	gen, err := o.genFor(bench, cfg.ORAM.DataBlocks())
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(gen, o.Requests), nil
}

// runProfile is runOne with an explicit Z profile override (Fig 12/16).
func (o Options) runProfile(sch config.Scheme, prof config.ZProfile, bench string) (sim.Result, error) {
	cfg := o.Base.WithScheme(sch)
	cfg.ORAM.Z = prof
	cfg.Seed = o.Seed
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", sch.Name, bench, err)
	}
	gen, err := o.genFor(bench, cfg.ORAM.DataBlocks())
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(gen, o.Requests), nil
}

// speedups converts per-row cycle counts into "vs baseline" speedups.
func speedups(base, scheme []float64) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		if scheme[i] > 0 {
			out[i] = base[i] / scheme[i]
		}
	}
	return out
}

func levelRows(levels int) []string {
	rows := make([]string, levels)
	for l := range rows {
		rows[l] = fmt.Sprintf("L%02d", l)
	}
	return rows
}
