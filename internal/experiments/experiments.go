// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the motivation studies (Section III). Each
// driver is a pure function of an Options value and returns a stats.Table
// whose rows/series mirror what the paper plots; cmd/experiments prints
// them and EXPERIMENTS.md records paper-vs-measured values.
//
// # Parallel execution
//
// Every driver decomposes into independent (scheme, benchmark) simulation
// cells. Each cell builds a private sim.System and trace.Generator from the
// cell's configuration and seed — a System is single-goroutine, so
// parallelism is always one System per worker — and the drivers fan cells
// across Options.Jobs workers via internal/runner. Results are collected by
// cell index, never by completion order, and every cell's randomness is a
// pure function of (Options.Seed, cell identity), so the tables are
// bit-identical for every worker count: Jobs == 1 reproduces the historical
// sequential loops exactly.
//
// # Cross-figure memoization
//
// Because a cell's sim.Result is a pure function of its fully-resolved
// configuration, Options.Cache can memoize cells across drivers (the
// Baseline row alone is re-requested by Table 2, Fig 2, Fig 12 and the
// ablations): the first requester simulates, duplicates are served the
// stored result (see internal/cellcache for the single-flight and
// immutability contracts). Memoization changes only which requester pays
// the simulation cost — every emit/artifact/progress observation still
// fires per request, so tables and JSONL artifacts are byte-identical with
// the cache on or off, for every Jobs value. When drivers additionally run
// concurrently (the facade's overlapped -fig all sweep), Options.Limit
// bounds total in-flight cells across all of them.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"iroram/internal/cellcache"
	"iroram/internal/config"
	"iroram/internal/flight"
	"iroram/internal/runner"
	"iroram/internal/sim"
	"iroram/internal/trace"
)

// Options scales an experiment run.
type Options struct {
	// Base is the system geometry; scheme and Z profile are overridden per
	// run by the figure drivers.
	Base config.System
	// Requests is the number of trace records consumed per run.
	Requests int
	// Seed drives traces and ORAM randomness. Each simulation cell derives
	// its randomness purely from (Seed, cell identity), so results do not
	// depend on worker count or scheduling.
	Seed uint64
	// Benchmarks defaults to the 13 Table II programs.
	Benchmarks []string

	// Jobs bounds the number of concurrently simulated cells; zero or
	// negative means runtime.GOMAXPROCS(0), and 1 reproduces the historical
	// sequential behavior exactly.
	Jobs int
	// Context, when non-nil, cancels an in-flight sweep at the next cell
	// boundary (a started cell runs to completion; no new cell starts).
	Context context.Context
	// Progress, when non-nil, observes per-batch cell completion. Drivers
	// that fan several batches report each batch separately.
	Progress func(runner.Progress)

	// Artifacts, when non-nil, collects one JSONL Record per simulated
	// cell (see artifacts.go). Records are appended after each batch
	// completes, in cell-index order on the calling goroutine, so the
	// artifact bytes are identical for every Jobs value. Drivers whose
	// cells do not produce a full sim.Result — the utilization snapshots
	// of Fig 3/4/13, the co-run latency probe, the Z-profile search —
	// emit partial records (no metrics snapshot, see NewProbeRecord) so
	// every figure has a sidecar.
	Artifacts *ArtifactLog
	// Figure labels the records emitted into Artifacts; the facade's
	// Experiment dispatcher sets it to the experiment name.
	Figure string

	// Flight, when non-nil, collects one flight-recorder trace per
	// simulated cell (same post-batch, cell-index-order append contract
	// as Artifacts). FlightSample must also be non-zero for cells to be
	// traced: each cell's System gets a private recorder sampling 1 in
	// FlightSample path accesses into a ring of FlightCap events
	// (flight.DefaultCapacity when zero). Tracing observes only — tables
	// and artifact records are byte-identical with it on or off.
	Flight       *FlightLog
	FlightSample uint64
	FlightCap    int

	// EpochInterval, when non-zero, enables periodic epoch snapshots every
	// EpochInterval issued paths in each cell's System (time series in the
	// artifact records). Off by default — it costs amortized allocations
	// on the access path.
	EpochInterval uint64

	// Cache, when non-nil, memoizes cell results across drivers (see
	// internal/cellcache): identical cells simulate once and every later
	// requester gets the stored sim.Result. Tables, artifacts and progress
	// are computed per request regardless, so output bytes are identical
	// with the cache on or off. Nil disables memoization entirely.
	Cache *cellcache.Cache
	// Limit, when non-nil, bounds cell execution across every Options value
	// sharing it — the machine-wide budget when several figure drivers run
	// concurrently (see runner.Limit). Nil leaves Jobs as the only bound.
	Limit *runner.Limit
	// Counters, when non-nil, accumulates cache accounting across every
	// batch run under these options. Shared safely by concurrent drivers.
	Counters *CellCounters
}

// CellCounters tallies cell requests and cache hits across batches. One
// value may be shared by concurrently running drivers: the counters are
// atomic and the key log locks.
type CellCounters struct {
	// Cells counts every cell requested, cached or not.
	Cells atomic.Int64
	// Hits counts the cells served from the cross-figure cache. Which
	// requester of a duplicated cell records the hit depends on scheduling
	// (the loser of the single-flight race hits); totals across every
	// counter sharing a cache are scheduling-independent, but a per-figure
	// split wants Keys replayed instead — see Sweep.
	Hits atomic.Int64

	mu   sync.Mutex
	keys []string
}

// RecordKey logs the cache key of one requested cell. The multiset of keys
// is a pure function of the batch's option set; the order is whatever the
// worker schedule produced and carries no meaning.
func (c *CellCounters) RecordKey(key string) {
	c.mu.Lock()
	c.keys = append(c.keys, key)
	c.mu.Unlock()
}

// Keys returns the logged cell keys. The caller must not retain the slice
// past the counters' next RecordKey.
func (c *CellCounters) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keys
}

// Default returns the scaled full-fidelity options used by cmd/experiments.
func Default() Options {
	return Options{Base: config.Scaled(), Requests: 30000, Seed: 1}
}

// Quick returns reduced options for tests and benchmarks: tiny geometry,
// short traces, three representative benchmarks (low-intensity gcc,
// read-chasing mcf, write-streaming lbm).
func Quick() Options {
	return Options{
		Base:       config.Tiny(),
		Requests:   2000,
		Seed:       1,
		Benchmarks: []string{"gcc", "mcf", "lbm"},
	}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return trace.BenchmarkNames()
}

// pool assembles the runner configuration for one batch of cells.
func (o Options) pool() runner.Pool {
	return runner.Pool{Jobs: o.Jobs, Context: o.Context, OnProgress: o.Progress, Limit: o.Limit}
}

// mapCells fans fn over n independent cells on the options' worker pool;
// results come back ordered by cell index (see runner.Map). It is the one
// fan-out primitive every figure driver uses. fn must be safe to call from
// multiple goroutines, which holds for anything built on runOne/runProfile
// because each cell constructs a private System. fn must not fan out through
// mapCells again when Options.Limit is set — a nested sweep would acquire a
// second token while already holding one and can deadlock the shared budget.
// No current driver nests.
func mapCells[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(o.pool(), n, fn)
}

// runGrid evaluates the full (scheme × benchmark) grid as one parallel batch
// and returns results indexed [scheme][benchmark].
func (o Options) runGrid(schemes []config.Scheme, benches []string) ([][]sim.Result, error) {
	nb := len(benches)
	flat, err := mapCells(o, len(schemes)*nb, func(i int) (sim.Result, error) {
		return o.runOne(schemes[i/nb], benches[i%nb])
	})
	if err != nil {
		return nil, err
	}
	out := make([][]sim.Result, len(schemes))
	for si := range schemes {
		out[si] = flat[si*nb : (si+1)*nb]
		for bi, b := range benches {
			o.emit(schemes[si].Name, b, "", out[si][bi])
		}
	}
	return out, nil
}

// runBenches evaluates one scheme across benches as one parallel batch.
func (o Options) runBenches(sch config.Scheme, benches []string) ([]sim.Result, error) {
	rs, err := mapCells(o, len(benches), func(i int) (sim.Result, error) {
		return o.runOne(sch, benches[i])
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		o.emit(sch.Name, b, "", rs[i])
	}
	return rs, nil
}

// cyclesOf projects a result row onto its cycle counts.
func cyclesOf(rs []sim.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.Cycles)
	}
	return out
}

// genFor builds the workload generator named by bench ("mix", "random", or
// a Table II benchmark) over the protected space, seeded explicitly so a
// cell's trace is a pure function of its resolved configuration.
func genFor(bench string, universe, seed uint64) (trace.Generator, error) {
	switch bench {
	case "mix":
		return trace.PaperMix(universe, seed), nil
	case "random":
		return trace.Random(universe, 0.5, seed), nil
	default:
		return trace.Benchmark(bench, universe, seed)
	}
}

// cell is one fully-resolved simulation unit: the post-override system
// configuration (scheme and Z profile applied, seed pinned) plus the
// benchmark driving it. Together with Requests and EpochInterval it
// determines a sim.Result bit-exactly, which is what makes cells cacheable
// across figure drivers.
type cell struct {
	cfg   config.System
	bench string
}

// cellFor resolves one (scheme, benchmark) cell against the options' base
// geometry — the single constructor behind runOne and runProfile.
func (o Options) cellFor(sch config.Scheme, bench string) cell {
	cfg := o.Base.WithScheme(sch)
	cfg.Seed = o.Seed
	return cell{cfg: cfg, bench: bench}
}

// run simulates the cell directly: a fresh System and Generator per call,
// so concurrent calls never share state. flightSample non-zero attaches a
// private flight recorder (ring capacity flightCap, DefaultCapacity when
// zero) whose trace snapshot rides back on Result.Flight.
func (c cell) run(requests int, epochInterval, flightSample uint64, flightCap int) (sim.Result, error) {
	s, err := sim.New(c.cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", c.cfg.Scheme.Name, c.bench, err)
	}
	gen, err := genFor(c.bench, c.cfg.ORAM.DataBlocks(), c.cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	s.SetEpochInterval(epochInterval)
	if flightSample > 0 {
		s.AttachFlight(flight.New(flightCap, flightSample))
	}
	return s.Run(gen, requests), nil
}

// runCell executes one cell, routing through the cross-figure cache when one
// is configured. Counters tally the request either way: cached cells still
// count toward progress and telemetry totals.
func (o Options) runCell(c cell) (sim.Result, error) {
	if o.Counters != nil {
		o.Counters.Cells.Add(1)
	}
	if o.Cache == nil {
		return c.run(o.Requests, o.EpochInterval, o.FlightSample, o.FlightCap)
	}
	key := cellcache.Key(c.cfg, c.bench, o.Requests, o.EpochInterval)
	if o.Counters != nil {
		o.Counters.RecordKey(key)
	}
	res, hit, err := o.Cache.Do(key, func() (sim.Result, error) {
		return c.run(o.Requests, o.EpochInterval, o.FlightSample, o.FlightCap)
	})
	if hit && o.Counters != nil {
		o.Counters.Hits.Add(1)
	}
	return res, err
}

// runOne executes one (scheme, benchmark) cell and returns its result.
func (o Options) runOne(sch config.Scheme, bench string) (sim.Result, error) {
	return o.runCell(o.cellFor(sch, bench))
}

// runProfile is runOne with an explicit Z profile override (Fig 12/16).
func (o Options) runProfile(sch config.Scheme, prof config.ZProfile, bench string) (sim.Result, error) {
	c := o.cellFor(sch, bench)
	c.cfg.ORAM.Z = prof
	return o.runCell(c)
}

// speedups converts per-row cycle counts into "vs baseline" speedups.
func speedups(base, scheme []float64) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		if scheme[i] > 0 {
			out[i] = base[i] / scheme[i]
		}
	}
	return out
}

func levelRows(levels int) []string {
	rows := make([]string, levels)
	for l := range rows {
		rows[l] = fmt.Sprintf("L%02d", l)
	}
	return rows
}
