package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want about 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle lost elements: sum %d != %d", got, sum)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(11)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d/100 times", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64n(1 << 24)
	}
}
