// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Determinism matters for a reproduction: given a seed, every experiment in
// this repository produces byte-identical statistics. The generator is
// xoshiro256** seeded through splitmix64, the combination recommended by the
// xoshiro authors. It is NOT cryptographically secure; the ORAM leaf remaps
// in a real deployment must use a CSPRNG, and the obliviousstore example
// shows how to plug one in.
package rng

// Source is a deterministic xoshiro256** generator.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64 so that nearby seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// A xoshiro state of all zeros is invalid; splitmix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless bounded generation with rejection.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= uint64(-int64(n))%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint32 returns a uniform 32-bit value.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child stream. Children of the same parent at
// different points of the parent stream are uncorrelated.
func (r *Source) Fork() *Source { return New(r.Uint64()) }
