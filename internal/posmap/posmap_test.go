package posmap

import (
	"testing"
	"testing/quick"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
)

func newTiny() *Map {
	return New(config.Tiny().ORAM, rng.New(1))
}

func TestSpaceSizing(t *testing.T) {
	m := newTiny()
	nd := m.DataBlocks()
	if m.Pos1Blocks() != (nd+15)/16 {
		t.Errorf("Np1 = %d, want ceil(%d/16)", m.Pos1Blocks(), nd)
	}
	if m.Pos2Blocks() != (m.Pos1Blocks()+15)/16 {
		t.Errorf("Np2 = %d", m.Pos2Blocks())
	}
	if m.Total() != nd+m.Pos1Blocks()+m.Pos2Blocks() {
		t.Error("Total mismatch")
	}
}

func TestKindRanges(t *testing.T) {
	m := newTiny()
	if m.Kind(0) != Data || m.Kind(block.ID(m.DataBlocks()-1)) != Data {
		t.Error("data range misclassified")
	}
	if m.Kind(block.ID(m.DataBlocks())) != Pos1 {
		t.Error("first pos1 misclassified")
	}
	if m.Kind(block.ID(m.DataBlocks()+m.Pos1Blocks())) != Pos2 {
		t.Error("first pos2 misclassified")
	}
	if m.Kind(block.ID(m.Total()-1)) != Pos2 {
		t.Error("last pos2 misclassified")
	}
}

func TestKindPanicsOutOfRange(t *testing.T) {
	m := newTiny()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Kind(block.ID(m.Total()))
}

func TestPathTypes(t *testing.T) {
	if Data.PathType() != block.PathData ||
		Pos1.PathType() != block.PathPos1 ||
		Pos2.PathType() != block.PathPos2 {
		t.Error("Kind -> PathType mapping wrong")
	}
}

func TestParentChain(t *testing.T) {
	m := newTiny()
	a := block.ID(17)
	p1, onChip := m.Parent(a)
	if onChip || m.Kind(p1) != Pos1 {
		t.Fatalf("parent of data = %v (onChip=%v)", p1, onChip)
	}
	if p1 != block.ID(m.DataBlocks()+17/16) {
		t.Errorf("Pos1 parent %d misplaced", p1)
	}
	p2, onChip := m.Parent(p1)
	if onChip || m.Kind(p2) != Pos2 {
		t.Fatalf("parent of pos1 = %v (onChip=%v)", p2, onChip)
	}
	if _, onChip := m.Parent(p2); !onChip {
		t.Error("pos2 entries must live on-chip (PosMap3)")
	}
}

// TestSiblingsShareParent: blocks covered by the same PosMap1 block resolve
// to the same parent — the basis of PLB spatial locality for streaming
// workloads.
func TestSiblingsShareParent(t *testing.T) {
	m := newTiny()
	base := block.ID(32)
	p, _ := m.Parent(base)
	for i := block.ID(1); i < 16; i++ {
		q, _ := m.Parent(base + i)
		if q != p {
			t.Fatalf("block %d parent %v != %v", base+i, q, p)
		}
	}
	q, _ := m.Parent(base + 16)
	if q == p {
		t.Error("17th block should roll to the next PosMap1 block")
	}
}

func TestLeavesInRange(t *testing.T) {
	m := newTiny()
	leaves := config.Tiny().ORAM.LeafCount()
	for id := block.ID(0); id < block.ID(m.Total()); id += 97 {
		if l := m.Leaf(id); uint64(l) >= leaves {
			t.Fatalf("leaf %d out of range", l)
		}
	}
}

func TestRemapChangesAndBounds(t *testing.T) {
	m := newTiny()
	leaves := config.Tiny().ORAM.LeafCount()
	changed := 0
	for i := 0; i < 100; i++ {
		old := m.Leaf(5)
		l := m.Remap(5)
		if uint64(l) >= leaves {
			t.Fatalf("remapped leaf %d out of range", l)
		}
		if l != old {
			changed++
		}
		if m.Leaf(5) != l {
			t.Fatal("Leaf does not reflect Remap")
		}
	}
	if changed < 50 {
		t.Errorf("remap changed the leaf only %d/100 times", changed)
	}
}

func TestRemapUniform(t *testing.T) {
	m := newTiny()
	leaves := config.Tiny().ORAM.LeafCount()
	// Bin leaves into 16 groups so each bin has enough mass for a
	// meaningful uniformity check.
	const bins = 16
	counts := make([]int, bins)
	const draws = 1 << 16
	binSize := leaves / bins
	for i := 0; i < draws; i++ {
		counts[uint64(m.Remap(0))/binSize]++
	}
	want := float64(draws) / bins
	for b, c := range counts {
		if float64(c) < want*0.9 || float64(c) > want*1.1 {
			t.Errorf("bin %d drawn %d times, want about %.0f", b, c, want)
		}
	}
}

func TestUnmap(t *testing.T) {
	m := newTiny()
	m.Unmap(9)
	if m.Leaf(9).Valid() {
		t.Error("unmapped block still has a leaf")
	}
	m.Remap(9)
	if !m.Leaf(9).Valid() {
		t.Error("remap should restore a valid leaf")
	}
}

func TestPos1ForMatchesParent(t *testing.T) {
	m := newTiny()
	check := func(seed uint64) bool {
		a := block.ID(seed % m.DataBlocks())
		p, onChip := m.Parent(a)
		return !onChip && m.Pos1For(a) == p
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPos1ForPanicsOnPosBlock(t *testing.T) {
	m := newTiny()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Pos1For(block.ID(m.DataBlocks()))
}

func TestDeterministicAcrossConstruction(t *testing.T) {
	a := New(config.Tiny().ORAM, rng.New(7))
	b := New(config.Tiny().ORAM, rng.New(7))
	for id := block.ID(0); id < 1000; id++ {
		if a.Leaf(id) != b.Leaf(id) {
			t.Fatalf("leaf of %d differs", id)
		}
	}
}
