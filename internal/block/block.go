// Package block defines the basic identifiers shared by every layer of the
// simulator: block IDs in the Freecursive-unified address space, tree leaf
// IDs, and the access/path type taxonomy from the IR-ORAM paper.
package block

import "fmt"

// ID identifies a 64 B block in the unified (Freecursive) address space:
// data blocks first, then PosMap1 blocks, then PosMap2 blocks. The special
// value Invalid marks an empty (dummy) bucket slot.
type ID uint64

// Invalid is the sentinel for "no block" (a dummy slot).
const Invalid ID = ^ID(0)

// Valid reports whether the ID names a real block.
func (id ID) Valid() bool { return id != Invalid }

func (id ID) String() string {
	if id == Invalid {
		return "blk<dummy>"
	}
	return fmt.Sprintf("blk%d", uint64(id))
}

// Leaf identifies a leaf of the ORAM tree, in [0, 2^(L-1)). The path of leaf
// l consists of the buckets from the root down to leaf l. NoLeaf marks an
// unmapped block (used by the LLC-D delayed-remap policy while a block lives
// only in the LLC).
type Leaf uint32

// NoLeaf is the sentinel for "currently unmapped".
const NoLeaf Leaf = ^Leaf(0)

// Valid reports whether the leaf names a real tree path.
func (l Leaf) Valid() bool { return l != NoLeaf }

// PathType classifies a path access as in Section III-A of the paper.
type PathType uint8

const (
	// PathData is a PT_d path: fetching or writing a requested data block.
	PathData PathType = iota
	// PathPos1 is a PT_p path for a PosMap1 block (data addr -> leaf map).
	PathPos1
	// PathPos2 is a PT_p path for a PosMap2 block (PosMap1 addr -> leaf map).
	PathPos2
	// PathDummy is a PT_m path: inserted only to defeat timing channels.
	PathDummy
	// PathEvict is a background-eviction path (Ren et al.): a random path
	// read+write that drains the stash. Outside the TCB it is
	// indistinguishable from every other type.
	PathEvict
	// PathDWB is a dummy slot converted by IR-DWB into an early write-back
	// step (one of the up-to-three accesses needed to flush a dirty LLC
	// line). Outside the TCB it is indistinguishable from a dummy.
	PathDWB
	numPathTypes
)

// NumPathTypes is the number of PathType values, for sizing counter arrays.
const NumPathTypes = int(numPathTypes)

var pathTypeNames = [...]string{
	PathData:  "PTd",
	PathPos1:  "PTp(Pos1)",
	PathPos2:  "PTp(Pos2)",
	PathDummy: "PTm",
	PathEvict: "BgEvict",
	PathDWB:   "DWB",
}

func (t PathType) String() string {
	if int(t) < len(pathTypeNames) {
		return pathTypeNames[t]
	}
	return fmt.Sprintf("PathType(%d)", uint8(t))
}

// Op is the kind of a user memory request.
type Op uint8

const (
	// Read is a load miss from the LLC.
	Read Op = iota
	// Write is a store / dirty write-back toward memory.
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}
