package block

import (
	"strings"
	"testing"
)

func TestInvalidID(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid must not be valid")
	}
	if !ID(0).Valid() || !ID(1<<30).Valid() {
		t.Error("ordinary IDs must be valid")
	}
}

func TestIDString(t *testing.T) {
	if got := ID(42).String(); got != "blk42" {
		t.Errorf("String = %q", got)
	}
	if got := Invalid.String(); !strings.Contains(got, "dummy") {
		t.Errorf("Invalid String = %q", got)
	}
}

func TestNoLeaf(t *testing.T) {
	if NoLeaf.Valid() {
		t.Error("NoLeaf must not be valid")
	}
	if !Leaf(0).Valid() {
		t.Error("leaf 0 must be valid")
	}
}

func TestPathTypeNames(t *testing.T) {
	want := map[PathType]string{
		PathData:  "PTd",
		PathPos1:  "PTp(Pos1)",
		PathPos2:  "PTp(Pos2)",
		PathDummy: "PTm",
		PathEvict: "BgEvict",
		PathDWB:   "DWB",
	}
	for pt, name := range want {
		if pt.String() != name {
			t.Errorf("%d: %q, want %q", pt, pt.String(), name)
		}
	}
	if !strings.Contains(PathType(99).String(), "99") {
		t.Error("unknown PathType should include the raw value")
	}
	if NumPathTypes != len(want) {
		t.Errorf("NumPathTypes = %d, want %d", NumPathTypes, len(want))
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op names wrong")
	}
}
