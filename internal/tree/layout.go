package tree

import (
	"fmt"

	"iroram/internal/block"
	"iroram/internal/config"
)

// Layout maps buckets to physical block addresses using the subtree layout
// of Ren et al. (adopted by the paper's baseline): the memory-resident
// levels are partitioned into chunks, and each chunk's subtrees are laid out
// contiguously and row-aligned, so one path access activates roughly one
// DRAM row per chunk instead of one per level.
type Layout struct {
	levels   int
	minLevel int
	z        []int
	leafBits uint
	chunks   []chunk
}

type chunk struct {
	start    int // first tree level of the chunk
	depth    int // levels covered
	base     uint64
	padded   uint64   // physical slots per subtree (row aligned)
	levelOff []uint64 // slot offset of each local level within a subtree
}

// NewLayout computes the physical layout for the memory-resident levels of
// the tree described by o, given the DRAM row size in blocks.
func NewLayout(o config.ORAM, minLevel, rowBlocks int) *Layout {
	if rowBlocks <= 0 {
		panic(fmt.Sprintf("tree: rowBlocks %d must be positive", rowBlocks))
	}
	ly := &Layout{
		levels:   o.Levels,
		minLevel: minLevel,
		z:        append([]int(nil), o.Z...),
		leafBits: uint(o.Levels - 1),
	}
	var base uint64
	for s := minLevel; s < o.Levels; {
		c := chunk{start: s, base: base, levelOff: []uint64{0}}
		slots := uint64(0)
		for l := s; l < o.Levels; l++ {
			add := (uint64(1) << uint(l-s)) * uint64(o.Z[l])
			if c.depth > 0 && slots+add > uint64(rowBlocks) {
				break
			}
			slots += add
			c.depth++
			c.levelOff = append(c.levelOff, slots)
		}
		// Pad each subtree to the next power of two (capped by the row
		// size): rows are power-of-two sized, so aligned subtrees never
		// straddle a row boundary, and small subtrees can share a row
		// without inflating the physical footprint.
		c.padded = ceilPow2(slots)
		if c.padded > uint64(rowBlocks) {
			c.padded = slots + uint64(rowBlocks) - slots%uint64(rowBlocks)
		}
		ly.chunks = append(ly.chunks, c)
		base += (uint64(1) << uint(s)) * c.padded
		s += c.depth
	}
	return ly
}

func ceilPow2(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// Chunks returns the number of level chunks, i.e. the expected number of
// row activations per path and per channel-spread.
func (ly *Layout) Chunks() int { return len(ly.chunks) }

// PhysicalSlots returns the physical address space size in blocks,
// padding included.
func (ly *Layout) PhysicalSlots() uint64 {
	if len(ly.chunks) == 0 {
		return 0
	}
	last := ly.chunks[len(ly.chunks)-1]
	return last.base + (uint64(1)<<uint(last.start))*last.padded
}

// BucketPhys returns the physical base address and slot count of the bucket
// the path of leaf crosses at level.
func (ly *Layout) BucketPhys(level int, leaf block.Leaf) (base uint64, z int) {
	c := ly.chunkOf(level)
	idx := uint64(leaf) >> (ly.leafBits - uint(level))
	local := level - c.start
	root := idx >> uint(local)
	q := idx - root<<uint(local)
	base = c.base + root*c.padded + c.levelOff[local] + q*uint64(ly.z[level])
	return base, ly.z[level]
}

func (ly *Layout) chunkOf(level int) *chunk {
	for i := range ly.chunks {
		c := &ly.chunks[i]
		if level >= c.start && level < c.start+c.depth {
			return c
		}
	}
	panic(fmt.Sprintf("tree: level %d not in layout [%d,%d)", level, ly.minLevel, ly.levels))
}

// PathPhys appends the physical addresses of every slot on the path of leaf
// (memory-resident levels, root-to-leaf order) to dst and returns it. One
// path access reads or writes exactly these blocks, so len == the Z-profile
// BlocksPerPath — the quantity IR-Alloc reduces.
func (ly *Layout) PathPhys(leaf block.Leaf, dst []uint64) []uint64 {
	for l := ly.minLevel; l < ly.levels; l++ {
		base, z := ly.BucketPhys(l, leaf)
		for j := 0; j < z; j++ {
			dst = append(dst, base+uint64(j))
		}
	}
	return dst
}
