// Package tree implements the ORAM tree: bucket storage with per-level
// bucket sizes (the substrate of IR-Alloc), path indexing, occupancy
// accounting for the utilization studies (Fig 3/4/13), and the subtree
// physical layout of Ren et al. that gives path accesses DRAM row-buffer
// locality.
//
// The tree stores only the memory-resident levels [MinLevel, Levels); the
// on-chip top levels live in internal/stash (dedicated TopCache or S-Stash).
package tree

import (
	"fmt"
	"math/bits"

	"iroram/internal/block"
	"iroram/internal/config"
)

// Entry is a real block held in a bucket slot: its unified address and its
// currently assigned leaf (Path ORAM stores both in the block header).
type Entry struct {
	Addr block.ID
	Leaf block.Leaf
}

const invalid32 = ^uint32(0)

// Tree is the bucket storage of the memory-resident levels.
type Tree struct {
	levels    int
	minLevel  int
	z         []int
	leafBits  uint // levels-1, shift for path indexing
	levelBase []uint64
	slotAddr  []uint32
	slotLeaf  []uint32
	occupied  []uint64 // per level, indexed [0, levels); top levels stay 0
}

// New allocates an empty tree holding levels [minLevel, o.Levels). It panics
// if the unified block space could overflow the 32-bit slot encoding; every
// supported geometry (L <= 34) is far below that.
func New(o config.ORAM, minLevel int) *Tree {
	if minLevel < 0 || minLevel >= o.Levels {
		panic(fmt.Sprintf("tree: minLevel %d out of [0,%d)", minLevel, o.Levels))
	}
	t := &Tree{
		levels:    o.Levels,
		minLevel:  minLevel,
		z:         append([]int(nil), o.Z...),
		leafBits:  uint(o.Levels - 1),
		levelBase: make([]uint64, o.Levels+1),
		occupied:  make([]uint64, o.Levels),
	}
	var slots uint64
	for l := 0; l < o.Levels; l++ {
		t.levelBase[l] = slots
		if l >= minLevel {
			slots += (uint64(1) << uint(l)) * uint64(o.Z[l])
		}
	}
	t.levelBase[o.Levels] = slots
	t.slotAddr = make([]uint32, slots)
	t.slotLeaf = make([]uint32, slots)
	for i := range t.slotAddr {
		t.slotAddr[i] = invalid32
	}
	return t
}

// Levels returns L.
func (t *Tree) Levels() int { return t.levels }

// MinLevel returns the shallowest memory-resident level.
func (t *Tree) MinLevel() int { return t.minLevel }

// Z returns the bucket size of a level.
func (t *Tree) Z(level int) int { return t.z[level] }

// BucketIndex returns the index within level of the bucket that the path of
// leaf crosses at that level.
func (t *Tree) BucketIndex(level int, leaf block.Leaf) uint64 {
	return uint64(leaf) >> (t.leafBits - uint(level))
}

// SameSubtree reports whether the paths of two leaves cross the same bucket
// at level (equivalently: whether a block mapped to b may be placed at that
// level of a's path).
func SameSubtree(a, b block.Leaf, level, levels int) bool {
	shift := uint(levels-1) - uint(level)
	return uint64(a)>>shift == uint64(b)>>shift
}

// DeepestLevel returns the deepest level at which a block mapped to b may be
// placed on the path of a: the level of the two paths' lowest common bucket.
// It is the largest level for which SameSubtree(a, b, level, levels) holds,
// computed in O(1) from the position of the highest differing leaf bit
// (leaf-XOR + leading-zero count) instead of probing levels one by one —
// the primitive behind the single-pass stash eviction.
func DeepestLevel(a, b block.Leaf, levels int) int {
	x := uint64(a) ^ uint64(b)
	// bits.Len64(x) == 64 - bits.LeadingZeros64(x) is the index (1-based) of
	// the highest differing bit; the paths share exactly levels-1-Len64(x)
	// edges below the root, i.e. they diverge at that depth.
	return levels - 1 - (64 - bits.LeadingZeros64(x))
}

// bucketSlots returns the slot range of bucket (level, idx).
func (t *Tree) bucketSlots(level int, idx uint64) (lo, hi uint64) {
	z := uint64(t.z[level])
	lo = t.levelBase[level] + idx*z
	return lo, lo + z
}

// ReadPath removes every real block on the path of leaf (memory-resident
// levels only), leaving those buckets empty — the read phase of a path
// access. The blocks are appended to dst (pass nil, or a reused buffer to
// keep the hot path allocation-free) and returned root-to-leaf.
func (t *Tree) ReadPath(leaf block.Leaf, dst []Entry) []Entry {
	out := dst
	for l := t.minLevel; l < t.levels; l++ {
		lo, hi := t.bucketSlots(l, t.BucketIndex(l, leaf))
		for s := lo; s < hi; s++ {
			if t.slotAddr[s] != invalid32 {
				out = append(out, Entry{
					Addr: block.ID(t.slotAddr[s]),
					Leaf: block.Leaf(t.slotLeaf[s]),
				})
				t.slotAddr[s] = invalid32
				t.occupied[l]--
			}
		}
	}
	return out
}

// ReadPathEach is ReadPath without the intermediate buffer: it removes every
// real block on the path of leaf (memory-resident levels only) and hands
// each to visit along with its level, in exactly ReadPath's root-to-leaf
// emission order. It is the read-gather half of the controller's fused
// single-walk pipeline; visit must not touch the tree.
func (t *Tree) ReadPathEach(leaf block.Leaf, visit func(Entry, int)) {
	for l := t.minLevel; l < t.levels; l++ {
		lo, hi := t.bucketSlots(l, t.BucketIndex(l, leaf))
		addrs := t.slotAddr[lo:hi]
		leaves := t.slotLeaf[lo:hi:hi]
		var removed uint64
		for s, a := range addrs {
			if a != invalid32 {
				e := Entry{Addr: block.ID(a), Leaf: block.Leaf(leaves[s])}
				addrs[s] = invalid32
				removed++
				visit(e, l)
			}
		}
		t.occupied[l] -= removed
	}
}

// FillBucket writes entries into the (empty) bucket the path of leaf crosses
// at level — the write phase for one level. It panics if the bucket has
// fewer free slots than entries or if an entry does not belong on this
// bucket's subtree, both of which indicate controller bugs.
func (t *Tree) FillBucket(level int, leaf block.Leaf, entries []Entry) {
	if len(entries) == 0 {
		return
	}
	if len(entries) > t.z[level] {
		panic(fmt.Sprintf("tree: %d entries for Z=%d bucket", len(entries), t.z[level]))
	}
	lo, hi := t.bucketSlots(level, t.BucketIndex(level, leaf))
	// Fills only add blocks, so free slots are consumed left to right; one
	// cursor across entries replaces a from-the-start rescan per entry.
	s := lo
	for _, e := range entries {
		if !SameSubtree(leaf, e.Leaf, level, t.levels) {
			panic(fmt.Sprintf("tree: block %v (leaf %d) misplaced at level %d of path %d",
				e.Addr, e.Leaf, level, leaf))
		}
		for s < hi && t.slotAddr[s] != invalid32 {
			s++
		}
		if s == hi {
			panic(fmt.Sprintf("tree: bucket overflow at level %d", level))
		}
		t.slotAddr[s] = uint32(e.Addr)
		t.slotLeaf[s] = uint32(e.Leaf)
		s++
	}
	t.occupied[level] += uint64(len(entries))
}

// Find scans the path of leaf for addr without modifying the tree and
// returns the level holding it.
func (t *Tree) Find(addr block.ID, leaf block.Leaf) (level int, ok bool) {
	for l := t.minLevel; l < t.levels; l++ {
		lo, hi := t.bucketSlots(l, t.BucketIndex(l, leaf))
		for s := lo; s < hi; s++ {
			if t.slotAddr[s] != invalid32 && block.ID(t.slotAddr[s]) == addr {
				return l, true
			}
		}
	}
	return 0, false
}

// Remove deletes addr from the path of leaf; it reports whether the block
// was found.
func (t *Tree) Remove(addr block.ID, leaf block.Leaf) bool {
	for l := t.minLevel; l < t.levels; l++ {
		lo, hi := t.bucketSlots(l, t.BucketIndex(l, leaf))
		for s := lo; s < hi; s++ {
			if t.slotAddr[s] != invalid32 && block.ID(t.slotAddr[s]) == addr {
				t.slotAddr[s] = invalid32
				t.occupied[l]--
				return true
			}
		}
	}
	return false
}

// Place inserts e at the deepest level of its leaf's path with a free slot,
// used for initial placement. It reports the level used; ok is false when
// every memory-resident bucket on the path is full.
func (t *Tree) Place(e Entry) (level int, ok bool) {
	for l := t.levels - 1; l >= t.minLevel; l-- {
		lo, hi := t.bucketSlots(l, t.BucketIndex(l, e.Leaf))
		for s := lo; s < hi; s++ {
			if t.slotAddr[s] == invalid32 {
				t.slotAddr[s] = uint32(e.Addr)
				t.slotLeaf[s] = uint32(e.Leaf)
				t.occupied[l]++
				return l, true
			}
		}
	}
	return 0, false
}

// Occupied returns the total number of real blocks in the tree.
func (t *Tree) Occupied() uint64 {
	var n uint64
	for _, o := range t.occupied {
		n += o
	}
	return n
}

// OccupiedAt returns the number of real blocks at one level.
func (t *Tree) OccupiedAt(level int) uint64 { return t.occupied[level] }

// Utilization returns the per-level space utilization (real blocks over
// allocated slots), Fig 3's y-axis. On-chip levels report zero here; the
// controller overlays their occupancy from the stash structures.
func (t *Tree) Utilization() []float64 {
	u := make([]float64, t.levels)
	for l := t.minLevel; l < t.levels; l++ {
		slots := (uint64(1) << uint(l)) * uint64(t.z[l])
		if slots > 0 {
			u[l] = float64(t.occupied[l]) / float64(slots)
		}
	}
	return u
}
