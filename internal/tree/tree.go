// Package tree implements the ORAM tree: bucket storage with per-level
// bucket sizes (the substrate of IR-Alloc), path indexing, occupancy
// accounting for the utilization studies (Fig 3/4/13), and the subtree
// physical layout of Ren et al. that gives path accesses DRAM row-buffer
// locality.
//
// The tree stores only the memory-resident levels [MinLevel, Levels); the
// on-chip top levels live in internal/stash (dedicated TopCache or S-Stash).
//
// # Occupancy invariant
//
// Alongside the slot arrays the tree keeps one uint64 occupancy word per
// bucket (every supported geometry has Z <= 64): bit b of bucket (level,
// idx)'s word is set exactly when slot levelBase[level]+idx*Z+b holds a
// real block. The word is authoritative — every mutation updates it in
// lockstep with the slot writes, slot contents are meaningful only where
// their bit is set (removal clears the bit without touching the slot
// arrays), and no validity sentinel is ever consulted: per-slot validity
// checks are folded into the occupancy word. Path walks iterate set bits
// (bits.TrailingZeros64) in ascending slot order, fills claim the lowest
// clear bit of ^occ&zmask — both identical in visit/placement order to the
// historical per-slot scans (pinned by the differential tests in
// occupancy_test.go) — and empty buckets skip in O(1) on one word load.
package tree

import (
	"fmt"
	"math/bits"

	"iroram/internal/block"
	"iroram/internal/config"
)

// Entry is a real block held in a bucket slot: its unified address and its
// currently assigned leaf (Path ORAM stores both in the block header).
type Entry struct {
	Addr block.ID
	Leaf block.Leaf
}

// GatherFlag is a transient provenance marker the controller's read walk
// may set on Entry.Leaf while an entry is in flight between the gather and
// the write phase ("this block was fetched by the current path access" —
// the Fig 5 migration split). Real leaves are below 2^31 on every valid
// geometry (config caps Levels at 32), so the top bit of the 32-bit leaf
// is free. The flag exists only inside the eviction drain's scratch: the
// write phase strips it before an entry reaches any storage structure
// (tree, tree-top store, or stash), and classification masks it before
// leaf arithmetic.
const GatherFlag block.Leaf = 1 << 31

// Tree is the bucket storage of the memory-resident levels.
type Tree struct {
	levels    int
	minLevel  int
	z         []int
	leafBits  uint // levels-1, shift for path indexing
	levelBase []uint64
	slotAddr  []uint32
	slotLeaf  []uint32
	occupied  []uint64 // per level, indexed [0, levels); top levels stay 0

	// occ holds one occupancy word per bucket of the memory-resident
	// levels; the word of bucket (level, idx) is occ[occBase[level]+idx].
	// zmask[level] has the low Z[level] bits set, so ^occ&zmask is the
	// bucket's free-slot mask. See the package doc for the invariant.
	occ     []uint64
	occBase []uint64
	zmask   []uint64
}

// New allocates an empty tree holding levels [minLevel, o.Levels). It panics
// if the unified block space could overflow the 32-bit slot encoding (every
// supported geometry, L <= 34, is far below that) or if any bucket size
// exceeds the 64 slots an occupancy word can track.
func New(o config.ORAM, minLevel int) *Tree {
	if minLevel < 0 || minLevel >= o.Levels {
		panic(fmt.Sprintf("tree: minLevel %d out of [0,%d)", minLevel, o.Levels))
	}
	t := &Tree{
		levels:    o.Levels,
		minLevel:  minLevel,
		z:         append([]int(nil), o.Z...),
		leafBits:  uint(o.Levels - 1),
		levelBase: make([]uint64, o.Levels+1),
		occupied:  make([]uint64, o.Levels),
		occBase:   make([]uint64, o.Levels),
		zmask:     make([]uint64, o.Levels),
	}
	var slots, buckets uint64
	for l := 0; l < o.Levels; l++ {
		if o.Z[l] > 64 {
			panic(fmt.Sprintf("tree: Z=%d at level %d exceeds the 64-slot occupancy word", o.Z[l], l))
		}
		t.zmask[l] = ^uint64(0) >> (64 - uint(o.Z[l]))
		t.levelBase[l] = slots
		t.occBase[l] = buckets
		if l >= minLevel {
			slots += (uint64(1) << uint(l)) * uint64(o.Z[l])
			buckets += uint64(1) << uint(l)
		}
	}
	t.levelBase[o.Levels] = slots
	t.slotAddr = make([]uint32, slots)
	t.slotLeaf = make([]uint32, slots)
	t.occ = make([]uint64, buckets)
	return t
}

// Levels returns L.
func (t *Tree) Levels() int { return t.levels }

// MinLevel returns the shallowest memory-resident level.
func (t *Tree) MinLevel() int { return t.minLevel }

// Z returns the bucket size of a level.
func (t *Tree) Z(level int) int { return t.z[level] }

// BucketIndex returns the index within level of the bucket that the path of
// leaf crosses at that level.
func (t *Tree) BucketIndex(level int, leaf block.Leaf) uint64 {
	return uint64(leaf) >> (t.leafBits - uint(level))
}

// SameSubtree reports whether the paths of two leaves cross the same bucket
// at level (equivalently: whether a block mapped to b may be placed at that
// level of a's path).
func SameSubtree(a, b block.Leaf, level, levels int) bool {
	shift := uint(levels-1) - uint(level)
	return uint64(a)>>shift == uint64(b)>>shift
}

// DeepestLevel returns the deepest level at which a block mapped to b may be
// placed on the path of a: the level of the two paths' lowest common bucket.
// It is the largest level for which SameSubtree(a, b, level, levels) holds,
// computed in O(1) from the position of the highest differing leaf bit
// (leaf-XOR + leading-zero count) instead of probing levels one by one —
// the primitive behind the single-pass stash eviction.
func DeepestLevel(a, b block.Leaf, levels int) int {
	x := uint64(a) ^ uint64(b)
	// bits.Len64(x) == 64 - bits.LeadingZeros64(x) is the index (1-based) of
	// the highest differing bit; the paths share exactly levels-1-Len64(x)
	// edges below the root, i.e. they diverge at that depth.
	return levels - 1 - (64 - bits.LeadingZeros64(x))
}

// bucketSlots returns the slot range of bucket (level, idx).
func (t *Tree) bucketSlots(level int, idx uint64) (lo, hi uint64) {
	z := uint64(t.z[level])
	lo = t.levelBase[level] + idx*z
	return lo, lo + z
}

// ReadPath removes every real block on the path of leaf (memory-resident
// levels only), leaving those buckets empty — the read phase of a path
// access. The blocks are appended to dst (pass nil, or a reused buffer to
// keep the hot path allocation-free) and returned root-to-leaf.
func (t *Tree) ReadPath(leaf block.Leaf, dst []Entry) []Entry {
	out := dst
	for l := t.minLevel; l < t.levels; l++ {
		idx := t.BucketIndex(l, leaf)
		w := t.occBase[l] + idx
		o := t.occ[w]
		if o == 0 {
			continue
		}
		t.occ[w] = 0
		t.occupied[l] -= uint64(bits.OnesCount64(o))
		lo := t.levelBase[l] + idx*uint64(t.z[l])
		for o != 0 {
			s := lo + uint64(bits.TrailingZeros64(o))
			o &= o - 1
			out = append(out, Entry{
				Addr: block.ID(t.slotAddr[s]),
				Leaf: block.Leaf(t.slotLeaf[s]),
			})
		}
	}
	return out
}

// ReadPathEach is ReadPath without the intermediate buffer: it removes every
// real block on the path of leaf (memory-resident levels only) and hands
// each to visit along with its level, in exactly ReadPath's root-to-leaf
// emission order. It is the read-gather half of the controller's fused
// single-walk pipeline; visit must not touch the tree.
func (t *Tree) ReadPathEach(leaf block.Leaf, visit func(Entry, int)) {
	for l := t.minLevel; l < t.levels; l++ {
		idx := t.BucketIndex(l, leaf)
		w := t.occBase[l] + idx
		o := t.occ[w]
		if o == 0 {
			continue
		}
		t.occ[w] = 0
		t.occupied[l] -= uint64(bits.OnesCount64(o))
		lo := t.levelBase[l] + idx*uint64(t.z[l])
		for o != 0 {
			s := lo + uint64(bits.TrailingZeros64(o))
			o &= o - 1
			visit(Entry{Addr: block.ID(t.slotAddr[s]), Leaf: block.Leaf(t.slotLeaf[s])}, l)
		}
	}
}

// FillBucket writes entries into the bucket the path of leaf crosses at
// level — the write phase for one level — claiming free slots in ascending
// order from the bucket's free mask. It panics if the bucket has fewer free
// slots than entries or if an entry does not belong on this bucket's
// subtree, both of which indicate controller bugs.
func (t *Tree) FillBucket(level int, leaf block.Leaf, entries []Entry) {
	if len(entries) == 0 {
		return
	}
	if len(entries) > t.z[level] {
		panic(fmt.Sprintf("tree: %d entries for Z=%d bucket", len(entries), t.z[level]))
	}
	idx := t.BucketIndex(level, leaf)
	w := t.occBase[level] + idx
	o := t.occ[w]
	lo := t.levelBase[level] + idx*uint64(t.z[level])
	if o == 0 {
		// Just-drained bucket (the write phase's common case): the free
		// mask is the full slot range, so ascending-order claiming is a
		// straight sequential write of slots [0, len(entries)).
		for i, e := range entries {
			if !SameSubtree(leaf, e.Leaf, level, t.levels) {
				panic(fmt.Sprintf("tree: block %v (leaf %d) misplaced at level %d of path %d",
					e.Addr, e.Leaf, level, leaf))
			}
			s := lo + uint64(i)
			t.slotAddr[s] = uint32(e.Addr)
			t.slotLeaf[s] = uint32(e.Leaf)
		}
		t.occ[w] = uint64(1)<<uint(len(entries)) - 1
		t.occupied[level] += uint64(len(entries))
		return
	}
	free := ^o & t.zmask[level]
	for _, e := range entries {
		if !SameSubtree(leaf, e.Leaf, level, t.levels) {
			panic(fmt.Sprintf("tree: block %v (leaf %d) misplaced at level %d of path %d",
				e.Addr, e.Leaf, level, leaf))
		}
		if free == 0 {
			panic(fmt.Sprintf("tree: bucket overflow at level %d", level))
		}
		b := uint64(bits.TrailingZeros64(free))
		free &= free - 1
		o |= uint64(1) << b
		s := lo + b
		t.slotAddr[s] = uint32(e.Addr)
		t.slotLeaf[s] = uint32(e.Leaf)
	}
	t.occ[w] = o
	t.occupied[level] += uint64(len(entries))
}

// Find scans the path of leaf for addr without modifying the tree and
// returns the level holding it.
func (t *Tree) Find(addr block.ID, leaf block.Leaf) (level int, ok bool) {
	for l := t.minLevel; l < t.levels; l++ {
		idx := t.BucketIndex(l, leaf)
		o := t.occ[t.occBase[l]+idx]
		lo := t.levelBase[l] + idx*uint64(t.z[l])
		for o != 0 {
			s := lo + uint64(bits.TrailingZeros64(o))
			o &= o - 1
			if block.ID(t.slotAddr[s]) == addr {
				return l, true
			}
		}
	}
	return 0, false
}

// Remove deletes addr from the path of leaf; it reports whether the block
// was found.
func (t *Tree) Remove(addr block.ID, leaf block.Leaf) bool {
	for l := t.minLevel; l < t.levels; l++ {
		idx := t.BucketIndex(l, leaf)
		w := t.occBase[l] + idx
		o := t.occ[w]
		lo := t.levelBase[l] + idx*uint64(t.z[l])
		for m := o; m != 0; m &= m - 1 {
			b := uint64(bits.TrailingZeros64(m))
			s := lo + b
			if block.ID(t.slotAddr[s]) == addr {
				t.occ[w] = o &^ (uint64(1) << b)
				t.occupied[l]--
				return true
			}
		}
	}
	return false
}

// Place inserts e at the deepest level of its leaf's path with a free slot,
// used for initial placement. It reports the level used; ok is false when
// every memory-resident bucket on the path is full.
func (t *Tree) Place(e Entry) (level int, ok bool) {
	for l := t.levels - 1; l >= t.minLevel; l-- {
		idx := t.BucketIndex(l, e.Leaf)
		w := t.occBase[l] + idx
		free := ^t.occ[w] & t.zmask[l]
		if free == 0 {
			continue
		}
		b := uint64(bits.TrailingZeros64(free))
		s := t.levelBase[l] + idx*uint64(t.z[l]) + b
		t.slotAddr[s] = uint32(e.Addr)
		t.slotLeaf[s] = uint32(e.Leaf)
		t.occ[w] |= uint64(1) << b
		t.occupied[l]++
		return l, true
	}
	return 0, false
}

// FreeAt returns the number of free slots in the bucket the path of leaf
// crosses at level — one popcount of the bucket's free mask. The eviction
// drain uses it to cap a level's fill without probing slots.
func (t *Tree) FreeAt(level int, leaf block.Leaf) int {
	o := t.occ[t.occBase[level]+t.BucketIndex(level, leaf)]
	return bits.OnesCount64(^o & t.zmask[level])
}

// Occupied returns the total number of real blocks in the tree.
func (t *Tree) Occupied() uint64 {
	var n uint64
	for _, o := range t.occupied {
		n += o
	}
	return n
}

// OccupiedAt returns the number of real blocks at one level.
func (t *Tree) OccupiedAt(level int) uint64 { return t.occupied[level] }

// Utilization returns the per-level space utilization (real blocks over
// allocated slots), Fig 3's y-axis. On-chip levels report zero here; the
// controller overlays their occupancy from the stash structures.
func (t *Tree) Utilization() []float64 {
	u := make([]float64, t.levels)
	for l := t.minLevel; l < t.levels; l++ {
		slots := (uint64(1) << uint(l)) * uint64(t.z[l])
		if slots > 0 {
			u[l] = float64(t.occupied[l]) / float64(slots)
		}
	}
	return u
}
