package tree

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
)

// scanBucket is one bucket of the oracle: a fixed slot array with per-slot
// validity flags — the pre-occupancy-word representation.
type scanBucket struct {
	live []bool
	ent  []Entry
}

// scanTree is the historical slot-scan tree retained as the differential
// oracle for the occupancy-bitmap engine: validity sentinels per slot,
// linear probes everywhere. Its contract is the one the bitmap code must
// reproduce bit for bit — fills claim the lowest free slot, walks and
// probes visit slots in ascending order — so every observable output
// (emission order included) must match Tree exactly.
type scanTree struct {
	levels, minLevel int
	z                []int
	buckets          [][]scanBucket // [level][bucketIndex]
}

func newScanTree(o config.ORAM, minLevel int) *scanTree {
	s := &scanTree{levels: o.Levels, minLevel: minLevel, z: o.Z}
	s.buckets = make([][]scanBucket, o.Levels)
	for l := minLevel; l < o.Levels; l++ {
		s.buckets[l] = make([]scanBucket, uint64(1)<<uint(l))
		for i := range s.buckets[l] {
			s.buckets[l][i] = scanBucket{
				live: make([]bool, o.Z[l]),
				ent:  make([]Entry, o.Z[l]),
			}
		}
	}
	return s
}

func (s *scanTree) bucket(level int, leaf block.Leaf) *scanBucket {
	return &s.buckets[level][uint64(leaf)>>(uint(s.levels-1)-uint(level))]
}

func (s *scanTree) readPathEach(leaf block.Leaf, visit func(Entry, int)) {
	for l := s.minLevel; l < s.levels; l++ {
		b := s.bucket(l, leaf)
		for i := range b.live {
			if b.live[i] {
				b.live[i] = false
				visit(b.ent[i], l)
			}
		}
	}
}

func (s *scanTree) fillBucket(level int, leaf block.Leaf, entries []Entry) {
	b := s.bucket(level, leaf)
	for _, e := range entries {
		placed := false
		for i := range b.live {
			if !b.live[i] {
				b.live[i] = true
				b.ent[i] = e
				placed = true
				break
			}
		}
		if !placed {
			panic("scanTree: bucket overflow")
		}
	}
}

func (s *scanTree) find(addr block.ID, leaf block.Leaf) (int, bool) {
	for l := s.minLevel; l < s.levels; l++ {
		b := s.bucket(l, leaf)
		for i := range b.live {
			if b.live[i] && b.ent[i].Addr == addr {
				return l, true
			}
		}
	}
	return 0, false
}

func (s *scanTree) remove(addr block.ID, leaf block.Leaf) bool {
	for l := s.minLevel; l < s.levels; l++ {
		b := s.bucket(l, leaf)
		for i := range b.live {
			if b.live[i] && b.ent[i].Addr == addr {
				b.live[i] = false
				return true
			}
		}
	}
	return false
}

func (s *scanTree) place(e Entry) (int, bool) {
	for l := s.levels - 1; l >= s.minLevel; l-- {
		b := s.bucket(l, e.Leaf)
		for i := range b.live {
			if !b.live[i] {
				b.live[i] = true
				b.ent[i] = e
				return l, true
			}
		}
	}
	return 0, false
}

func (s *scanTree) freeAt(level int, leaf block.Leaf) int {
	b := s.bucket(level, leaf)
	n := 0
	for _, v := range b.live {
		if !v {
			n++
		}
	}
	return n
}

func (s *scanTree) occupied() uint64 {
	var n uint64
	for l := s.minLevel; l < s.levels; l++ {
		for i := range s.buckets[l] {
			for _, v := range s.buckets[l][i].live {
				if v {
					n++
				}
			}
		}
	}
	return n
}

// visitRec is one emitted (entry, level) observation for order comparison.
type visitRec struct {
	e Entry
	l int
}

// subtreeLeaf builds a uniformly random leaf whose path crosses the bucket
// that leaf's path crosses at level — the constraint FillBucket enforces.
func subtreeLeaf(r *rng.Source, leaf block.Leaf, level, levels int) block.Leaf {
	shift := uint(levels-1) - uint(level)
	base := (uint64(leaf) >> shift) << shift
	return block.Leaf(base | r.Uint64n(uint64(1)<<shift))
}

// TestOccupancyDifferential drives the bitmap tree and the slot-scan oracle
// through a long randomized schedule of the full operation mix — path
// drains, per-level fills, probes, removals, deepest-first placements —
// asserting identical observable behavior after every step: emission
// sequences (order included), Find/Remove/Place results, free-slot counts
// and occupancy totals. Directed pressure phases push buckets to full
// (zero free mask) and drain paths twice in a row (the empty-bucket O(1)
// skip), the two edges where a bitmap bug would hide.
func TestOccupancyDifferential(t *testing.T) {
	o := tinyORAM()
	minLevel := o.TopLevels
	tr := New(o, minLevel)
	or := newScanTree(o, minLevel)
	r := rng.New(77)
	leaves := o.LeafCount()

	var got, want []visitRec
	var fill []Entry
	nextAddr := block.ID(1)

	checkPathDrain := func(leaf block.Leaf) {
		got, want = got[:0], want[:0]
		tr.ReadPathEach(leaf, func(e Entry, l int) { got = append(got, visitRec{e, l}) })
		or.readPathEach(leaf, func(e Entry, l int) { want = append(want, visitRec{e, l}) })
		if len(got) != len(want) {
			t.Fatalf("leaf %d: drained %d entries, oracle %d", leaf, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("leaf %d: emission %d = %+v, oracle %+v", leaf, i, got[i], want[i])
			}
		}
	}

	for i := 0; i < 4000; i++ {
		leaf := block.Leaf(r.Uint64n(leaves))
		level := minLevel + int(r.Uint64n(uint64(o.Levels-minLevel)))
		switch op := r.Uint64n(100); {
		case op < 25:
			// Drain a path, then re-place a random subset deepest-first so
			// occupancy keeps churning instead of being restored verbatim.
			checkPathDrain(leaf)
			for _, v := range want {
				if r.Uint64n(8) == 0 {
					continue // drop ~1/8 of the drained blocks
				}
				gl, gok := tr.Place(v.e)
				wl, wok := or.place(v.e)
				if gl != wl || gok != wok {
					t.Fatalf("re-place %+v: (%d,%v), oracle (%d,%v)", v.e, gl, gok, wl, wok)
				}
			}
		case op < 30:
			// Empty-skip edge: drain the same path twice; the second walk
			// crosses only zero occupancy words and must emit nothing.
			checkPathDrain(leaf)
			checkPathDrain(leaf)
		case op < 55:
			// Fill one bucket toward (sometimes exactly to) capacity.
			n := int(r.Uint64n(uint64(o.Z[level]) + 1))
			if free := tr.FreeAt(level, leaf); n > free {
				n = free // exactly-full is reachable; overflow is a panic
			}
			fill = fill[:0]
			for k := 0; k < n; k++ {
				fill = append(fill, Entry{
					Addr: nextAddr,
					Leaf: subtreeLeaf(r, leaf, level, o.Levels),
				})
				nextAddr++
			}
			tr.FillBucket(level, leaf, fill)
			or.fillBucket(level, leaf, fill)
		case op < 75:
			// Probe then remove whatever the oracle says is on this path at
			// this level (or a guaranteed-absent address).
			addr := nextAddr + 1000 // absent
			if b := or.bucket(level, leaf); true {
				for s := range b.live {
					if b.live[s] {
						addr = b.ent[s].Addr
						break
					}
				}
			}
			gl, gok := tr.Find(addr, leaf)
			wl, wok := or.find(addr, leaf)
			if gl != wl || gok != wok {
				t.Fatalf("find %v on leaf %d: (%d,%v), oracle (%d,%v)", addr, leaf, gl, gok, wl, wok)
			}
			if gr, wr := tr.Remove(addr, leaf), or.remove(addr, leaf); gr != wr {
				t.Fatalf("remove %v on leaf %d: %v, oracle %v", addr, leaf, gr, wr)
			}
		default:
			e := Entry{Addr: nextAddr, Leaf: leaf}
			nextAddr++
			gl, gok := tr.Place(e)
			wl, wok := or.place(e)
			if gl != wl || gok != wok {
				t.Fatalf("place %+v: (%d,%v), oracle (%d,%v)", e, gl, gok, wl, wok)
			}
		}
		if g, w := tr.FreeAt(level, leaf), or.freeAt(level, leaf); g != w {
			t.Fatalf("op %d: FreeAt(%d, %d) = %d, oracle %d", i, level, leaf, g, w)
		}
	}
	if g, w := tr.Occupied(), or.occupied(); g != w {
		t.Fatalf("Occupied = %d, oracle %d", g, w)
	}
	for l := minLevel; l < o.Levels; l++ {
		var w uint64
		for i := range or.buckets[l] {
			for _, v := range or.buckets[l][i].live {
				if v {
					w++
				}
			}
		}
		if g := tr.OccupiedAt(l); g != w {
			t.Fatalf("OccupiedAt(%d) = %d, oracle %d", l, g, w)
		}
	}
}
