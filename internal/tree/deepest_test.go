package tree

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/rng"
)

// TestDeepestLevelMatchesSameSubtree pins DeepestLevel's defining property:
// d = DeepestLevel(a, b, levels) is exactly the deepest level l for which
// SameSubtree(a, b, l, levels) holds — the paths of a and b share buckets at
// levels [0, d] and diverge below.
func TestDeepestLevelMatchesSameSubtree(t *testing.T) {
	r := rng.New(5)
	for _, levels := range []int{2, 3, 5, 14, 20} {
		leaves := uint64(1) << uint(levels-1)
		for trial := 0; trial < 2000; trial++ {
			a := block.Leaf(r.Uint64n(leaves))
			b := block.Leaf(r.Uint64n(leaves))
			d := DeepestLevel(a, b, levels)
			if d < 0 || d >= levels {
				t.Fatalf("DeepestLevel(%d, %d, %d) = %d out of range", a, b, levels, d)
			}
			for l := 0; l < levels; l++ {
				if got, want := SameSubtree(a, b, l, levels), l <= d; got != want {
					t.Fatalf("levels=%d a=%d b=%d: SameSubtree at level %d = %v, but DeepestLevel = %d",
						levels, a, b, l, got, d)
				}
			}
		}
	}
}

// TestDeepestLevelIdentical pins the equal-leaf case: a block whose leaf is
// the accessed path can go all the way to the leaf bucket.
func TestDeepestLevelIdentical(t *testing.T) {
	for _, levels := range []int{1, 2, 14} {
		leaf := block.Leaf((uint64(1) << uint(levels-1)) - 1)
		if got := DeepestLevel(leaf, leaf, levels); got != levels-1 {
			t.Fatalf("DeepestLevel(%d, %d, %d) = %d, want %d", leaf, leaf, levels, got, levels-1)
		}
	}
}
