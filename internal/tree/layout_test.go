package tree

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
)

func TestPathPhysCountMatchesProfile(t *testing.T) {
	for _, sys := range []config.System{config.Tiny(), config.Scaled()} {
		o := sys.ORAM
		for _, prof := range []config.ZProfile{
			config.Uniform(o.Levels, 4),
			config.IROramProfile(o.Levels, o.TopLevels),
			config.Alloc4Profile(o.Levels, o.TopLevels),
		} {
			o.Z = prof
			ly := NewLayout(o, o.TopLevels, 128)
			got := ly.PathPhys(0, nil)
			want := prof.BlocksPerPath(o.TopLevels)
			if len(got) != want {
				t.Errorf("L=%d: path has %d phys blocks, want %d", o.Levels, len(got), want)
			}
		}
	}
}

func TestPhysAddressesUniquePerPath(t *testing.T) {
	o := config.Tiny().ORAM
	ly := NewLayout(o, o.TopLevels, 128)
	for leaf := block.Leaf(0); leaf < 8; leaf++ {
		addrs := ly.PathPhys(leaf, nil)
		seen := map[uint64]bool{}
		for _, a := range addrs {
			if seen[a] {
				t.Fatalf("leaf %d: duplicate phys addr %d", leaf, a)
			}
			seen[a] = true
		}
	}
}

func TestDistinctBucketsDistinctPhys(t *testing.T) {
	// Leaf-level buckets of different leaves must not collide physically.
	o := config.Tiny().ORAM
	ly := NewLayout(o, o.TopLevels, 128)
	seen := map[uint64]block.Leaf{}
	for leaf := block.Leaf(0); leaf < block.Leaf(o.LeafCount()); leaf++ {
		base, z := ly.BucketPhys(o.Levels-1, leaf)
		for j := uint64(0); j < uint64(z); j++ {
			if prev, dup := seen[base+j]; dup {
				t.Fatalf("phys %d shared by leaves %d and %d", base+j, prev, leaf)
			}
			seen[base+j] = leaf
		}
	}
}

func TestSharedBucketsSharePhys(t *testing.T) {
	// Two leaves in the same half of the tree share every bucket above
	// their divergence point; physical addresses must agree there.
	o := config.Tiny().ORAM
	ly := NewLayout(o, o.TopLevels, 128)
	a, b := block.Leaf(0), block.Leaf(1)
	for l := o.TopLevels; l < o.Levels-1; l++ {
		if !SameSubtree(a, b, l, o.Levels) {
			continue
		}
		ba, _ := ly.BucketPhys(l, a)
		bb, _ := ly.BucketPhys(l, b)
		if ba != bb {
			t.Errorf("level %d: shared bucket at different phys %d vs %d", l, ba, bb)
		}
	}
}

func TestRowLocality(t *testing.T) {
	// A path's accesses must touch about one row per chunk, the whole point
	// of the subtree layout.
	o := config.Scaled().ORAM
	const rowBlocks = 128
	ly := NewLayout(o, o.TopLevels, rowBlocks)
	addrs := ly.PathPhys(12345, nil)
	rows := map[uint64]bool{}
	for _, a := range addrs {
		rows[a/rowBlocks] = true
	}
	if len(rows) > ly.Chunks()+1 {
		t.Errorf("path touches %d rows for %d chunks", len(rows), ly.Chunks())
	}
	if ly.Chunks() > 4 {
		t.Errorf("scaled geometry should need <= 4 chunks, got %d", ly.Chunks())
	}
}

func TestSubtreeRowAlignment(t *testing.T) {
	// Subtrees are padded so they never straddle a row boundary: either the
	// row size is a multiple of the subtree stride, or vice versa.
	o := config.Scaled().ORAM
	ly := NewLayout(o, o.TopLevels, 128)
	for i := range ly.chunks {
		c := ly.chunks[i]
		if 128%c.padded != 0 && c.padded%128 != 0 {
			t.Errorf("chunk %d stride %d straddles 128-block rows", i, c.padded)
		}
	}
}

func TestPhysicalSlotsCoverAllBuckets(t *testing.T) {
	o := config.Tiny().ORAM
	ly := NewLayout(o, o.TopLevels, 128)
	max := uint64(0)
	for leaf := block.Leaf(0); leaf < block.Leaf(o.LeafCount()); leaf += 7 {
		for _, a := range ly.PathPhys(leaf, nil) {
			if a > max {
				max = a
			}
		}
	}
	if max >= ly.PhysicalSlots() {
		t.Errorf("phys addr %d outside space %d", max, ly.PhysicalSlots())
	}
}

func TestChunkOfPanicsOutsideRange(t *testing.T) {
	o := config.Tiny().ORAM
	ly := NewLayout(o, o.TopLevels, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ly.BucketPhys(0, 0) // level 0 is on-chip, not in layout
}

func TestIRAllocShrinksPathNotFootprint(t *testing.T) {
	// IR-Alloc must shorten every path (the bandwidth win) without growing
	// the physical footprint; the <1% logical space claim is covered by the
	// config package's SpaceReductionVs tests.
	o := config.Scaled().ORAM
	base := NewLayout(o, o.TopLevels, 128)
	o2 := o
	o2.Z = config.IROramProfile(o.Levels, o.TopLevels)
	alloc := NewLayout(o2, o.TopLevels, 128)
	if alloc.PhysicalSlots() > base.PhysicalSlots() {
		t.Errorf("IR-Alloc layout %d slots exceeds baseline %d",
			alloc.PhysicalSlots(), base.PhysicalSlots())
	}
	if got, want := len(alloc.PathPhys(0, nil)), len(base.PathPhys(0, nil)); got >= want {
		t.Errorf("IR-Alloc path %d blocks, baseline %d", got, want)
	}
}
