package tree

import (
	"testing"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
)

// WalkBenchmark is the body of BenchmarkTreeWalk. It lives in the package
// (not a _test file) so cmd/benchjson snapshots the same code via
// testing.Benchmark; the root bench_test.go wraps it for `make bench`.
//
// One op is one full path round-trip over the memory-resident levels: the
// occupancy-word walk (ReadPathEach) removes every real block on a random
// path, then FillBucket restores each bucket exactly as read, so occupancy
// is identical across ops. That isolates the bitmap engine — set-bit
// iteration, empty-bucket skips, free-mask fills — from stash and DRAM
// costs, which the Evict and PathAccess benchmarks layer back in.
func WalkBenchmark(b *testing.B) {
	o := config.Tiny().ORAM
	minLevel := o.TopLevels
	t := New(o, minLevel)
	r := rng.New(1)
	leaves := o.LeafCount()
	// Steady-state load: place every data block deepest-first along a
	// random path (the controller's initial placement), letting blocks
	// whose path is full fall off — bucket occupancy ends realistically
	// mixed, full near the leaves with slack above.
	for id := uint64(0); id < o.DataBlocks(); id++ {
		t.Place(Entry{Addr: block.ID(id), Leaf: block.Leaf(r.Uint64n(leaves))})
	}
	scratch := make([][]Entry, o.Levels)
	for l := range scratch {
		scratch[l] = make([]Entry, 0, o.Z[l])
	}
	visit := func(e Entry, l int) { scratch[l] = append(scratch[l], e) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := block.Leaf(r.Uint64n(leaves))
		t.ReadPathEach(leaf, visit)
		for l := minLevel; l < o.Levels; l++ {
			t.FillBucket(l, leaf, scratch[l])
			scratch[l] = scratch[l][:0]
		}
	}
}
