package tree

import (
	"testing"
	"testing/quick"

	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/rng"
)

func tinyORAM() config.ORAM {
	o := config.Tiny().ORAM
	return o
}

func TestNewEmpty(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	if tr.Occupied() != 0 {
		t.Fatalf("new tree occupied %d", tr.Occupied())
	}
	if got := tr.ReadPath(0, nil); len(got) != 0 {
		t.Fatalf("empty tree path returned %d blocks", len(got))
	}
}

func TestPlaceAndFind(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	e := Entry{Addr: 42, Leaf: 5}
	level, ok := tr.Place(e)
	if !ok {
		t.Fatal("place failed on empty tree")
	}
	if level != o.Levels-1 {
		t.Errorf("placed at level %d, want leaf level %d", level, o.Levels-1)
	}
	if l, ok := tr.Find(42, 5); !ok || l != level {
		t.Errorf("Find = %d,%v", l, ok)
	}
	if _, ok := tr.Find(42, 6); ok && !SameSubtree(5, 6, o.Levels-1, o.Levels) {
		t.Error("found block on wrong path at leaf level")
	}
}

func TestReadPathRemovesBlocks(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	tr.Place(Entry{Addr: 1, Leaf: 9})
	tr.Place(Entry{Addr: 2, Leaf: 9})
	got := tr.ReadPath(9, nil)
	if len(got) != 2 {
		t.Fatalf("read %d blocks, want 2", len(got))
	}
	if tr.Occupied() != 0 {
		t.Errorf("occupied %d after draining path", tr.Occupied())
	}
	if got2 := tr.ReadPath(9, nil); len(got2) != 0 {
		t.Error("second read should find nothing")
	}
}

func TestReadPathOnlyTouchesOwnPath(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	leaves := o.LeafCount()
	// Two leaves in different halves of the tree share no bucket below the
	// on-chip levels when their top bits differ.
	a := block.Leaf(0)
	b := block.Leaf(leaves - 1)
	tr.Place(Entry{Addr: 1, Leaf: a})
	tr.Place(Entry{Addr: 2, Leaf: b})
	got := tr.ReadPath(a, nil)
	if len(got) != 1 || got[0].Addr != 1 {
		t.Fatalf("ReadPath(a) = %v", got)
	}
	if _, ok := tr.Find(2, b); !ok {
		t.Error("block on the other path vanished")
	}
}

func TestFillBucketRoundTrip(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	leaf := block.Leaf(3)
	level := o.Levels - 1
	es := []Entry{{Addr: 7, Leaf: leaf}, {Addr: 8, Leaf: leaf}}
	tr.FillBucket(level, leaf, es)
	if tr.OccupiedAt(level) != 2 {
		t.Fatalf("occupied at leaf level = %d", tr.OccupiedAt(level))
	}
	got := tr.ReadPath(leaf, nil)
	if len(got) != 2 {
		t.Fatalf("read back %d blocks", len(got))
	}
}

func TestFillBucketPanicsOnOverflow(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	es := make([]Entry, o.Z[o.Levels-1]+1)
	for i := range es {
		es[i] = Entry{Addr: block.ID(i), Leaf: 0}
	}
	tr.FillBucket(o.Levels-1, 0, es)
}

func TestFillBucketPanicsOnWrongSubtree(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	other := block.Leaf(o.LeafCount() - 1)
	tr.FillBucket(o.Levels-1, 0, []Entry{{Addr: 1, Leaf: other}})
}

func TestRemove(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	tr.Place(Entry{Addr: 11, Leaf: 2})
	if !tr.Remove(11, 2) {
		t.Fatal("Remove failed")
	}
	if tr.Remove(11, 2) {
		t.Fatal("double Remove should fail")
	}
	if tr.Occupied() != 0 {
		t.Errorf("occupied %d", tr.Occupied())
	}
}

// TestPathInvariant: every block read from a path belongs on that path.
func TestPathInvariant(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	r := rng.New(5)
	leaves := o.LeafCount()
	for i := 0; i < 3000; i++ {
		tr.Place(Entry{Addr: block.ID(i), Leaf: block.Leaf(r.Uint64n(leaves))})
	}
	for probe := 0; probe < 100; probe++ {
		leaf := block.Leaf(r.Uint64n(leaves))
		got := tr.ReadPath(leaf, nil)
		for _, e := range got {
			onPath := false
			for l := o.TopLevels; l < o.Levels; l++ {
				if SameSubtree(leaf, e.Leaf, l, o.Levels) {
					onPath = true
					break
				}
			}
			if !onPath {
				t.Fatalf("block %v (leaf %d) was on path %d but shares no bucket",
					e.Addr, e.Leaf, leaf)
			}
			// Put it back at its deepest legal spot.
			if _, ok := tr.Place(e); !ok {
				t.Fatalf("could not re-place %v", e.Addr)
			}
		}
	}
}

// TestOccupancyConservation: place/read/fill cycles conserve block count.
func TestOccupancyConservation(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	r := rng.New(8)
	leaves := o.LeafCount()
	placed := uint64(0)
	for i := 0; i < 2000; i++ {
		if _, ok := tr.Place(Entry{Addr: block.ID(i), Leaf: block.Leaf(r.Uint64n(leaves))}); ok {
			placed++
		}
	}
	if tr.Occupied() != placed {
		t.Fatalf("occupied %d != placed %d", tr.Occupied(), placed)
	}
	util := tr.Utilization()
	for l, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("level %d utilization %v out of [0,1]", l, u)
		}
	}
}

func TestUtilizationBottomHeavier(t *testing.T) {
	// With random leaves and deepest-first placement, the leaf level must
	// fill far more than the mid levels — the root cause of Fig 3's shape.
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	r := rng.New(9)
	leaves := o.LeafCount()
	target := o.Z.Slots() / 2
	for i := uint64(0); i < target; i++ {
		tr.Place(Entry{Addr: block.ID(i), Leaf: block.Leaf(r.Uint64n(leaves))})
	}
	u := tr.Utilization()
	if u[o.Levels-1] < u[o.TopLevels]*1.5 {
		t.Errorf("leaf utilization %.3f not clearly above top memory level %.3f",
			u[o.Levels-1], u[o.TopLevels])
	}
}

func TestBucketIndexProperties(t *testing.T) {
	o := tinyORAM()
	tr := New(o, o.TopLevels)
	check := func(leafSeed uint64) bool {
		leaf := block.Leaf(leafSeed % o.LeafCount())
		// Root bucket index is always 0; leaf-level index equals the leaf.
		if tr.BucketIndex(0, leaf) != 0 {
			return false
		}
		return tr.BucketIndex(o.Levels-1, leaf) == uint64(leaf)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSameSubtreeRootAlwaysShared(t *testing.T) {
	o := tinyORAM()
	if !SameSubtree(0, block.Leaf(o.LeafCount()-1), 0, o.Levels) {
		t.Error("all leaves share the root")
	}
}

func TestMinLevelZeroStoresWholeTree(t *testing.T) {
	o := tinyORAM()
	tr := New(o, 0)
	tr.Place(Entry{Addr: 1, Leaf: 0})
	// With an empty tree, deepest-first placement lands at the leaf; force
	// root placement by filling everything below.
	if l, ok := tr.Find(1, 0); !ok || l != o.Levels-1 {
		t.Errorf("Find = %d,%v", l, ok)
	}
}
