package metrics_test

import (
	"encoding/json"
	"fmt"
	"os"

	"iroram/internal/metrics"
)

// ExampleRegistry shows the intended wiring: instruments live as plain
// fields in the component they measure and are updated directly (the
// zero-allocation hot path); the registry binds them to names once at
// construction and is consulted only to describe or snapshot them.
func ExampleRegistry() {
	// The component's own state: a counter and a latency histogram.
	var served uint64
	var latency metrics.Hist

	reg := metrics.NewRegistry()
	reg.Counter("demo_served", "requests", "requests served", &served)
	reg.Histogram("demo_latency", "cycles", "request latency", &latency)
	reg.GaugeFunc("demo_backlog", "requests", "queued requests",
		func() float64 { return 3 })

	// Hot path: direct field updates, no registry involvement.
	for _, cycles := range []uint64{100, 120, 1000} {
		served++
		latency.Observe(cycles)
	}

	for _, d := range reg.Descs() {
		fmt.Printf("%s (%s, %s): %s\n", d.Name, d.Kind, d.Unit, d.Help)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(reg.Snapshot())
	// Output:
	// demo_backlog (gauge, requests): queued requests
	// demo_latency (histogram, cycles): request latency
	// demo_served (counter, requests): requests served
	// {"counters":{"demo_served":3},"gauges":{"demo_backlog":3},"histograms":{"demo_latency":{"count":3,"sum":1220,"min":100,"max":1000,"buckets":[{"lo":64,"hi":127,"n":2},{"lo":512,"hi":1023,"n":1}]}}}
}
