package metrics

import (
	"fmt"
	"sort"
)

// Kind classifies a registered metric.
type Kind string

// The metric kinds a Registry distinguishes; Desc.Kind is one of these.
const (
	// KindCounter is a monotonically increasing uint64.
	KindCounter Kind = "counter"
	// KindGauge is a point-in-time sampled value.
	KindGauge Kind = "gauge"
	// KindHistogram is a power-of-two-bucket Hist.
	KindHistogram Kind = "histogram"
	// KindLinearHistogram is a per-index LinearHist.
	KindLinearHistogram Kind = "linear_histogram"
)

// Desc describes one registered metric: its unique name, unit, kind and a
// one-line help string. Descs are the registry's self-description — `make
// docscheck` validates docs/METRICS.md against them.
type Desc struct {
	Name string `json:"name"`
	Unit string `json:"unit"`
	Help string `json:"help"`
	Kind Kind   `json:"kind"`
}

// entry binds a Desc to exactly one value source.
type entry struct {
	desc        Desc
	counter     *uint64
	counterFunc func() uint64
	gaugeFunc   func() float64
	hist        *Hist
	linear      *LinearHist
}

// Registry binds metric names to the instruments that hold their values.
// It is consulted only at registration and snapshot time — instruments are
// updated through direct field access, so the registry adds no work to the
// simulator's access path. A Registry is not synchronized; like the System
// that owns it, it is single-goroutine (see internal/sim).
type Registry struct {
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) add(d Desc, e *entry) {
	if d.Name == "" {
		panic("metrics: empty metric name")
	}
	for _, c := range d.Name {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_') {
			panic(fmt.Sprintf("metrics: invalid metric name %q (want [a-z0-9_]+)", d.Name))
		}
	}
	if _, dup := r.entries[d.Name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", d.Name))
	}
	e.desc = d
	r.entries[d.Name] = e
}

// Counter registers v as a named monotonic counter. The caller keeps
// updating *v directly (v must outlive the registry).
func (r *Registry) Counter(name, unit, help string, v *uint64) {
	r.add(Desc{Name: name, Unit: unit, Help: help, Kind: KindCounter},
		&entry{counter: v})
}

// CounterFunc registers a counter whose value is produced by f at snapshot
// time — for counters owned by a subsystem that exposes them only through an
// accessor (e.g. the DRAM model's Stats()).
func (r *Registry) CounterFunc(name, unit, help string, f func() uint64) {
	r.add(Desc{Name: name, Unit: unit, Help: help, Kind: KindCounter},
		&entry{counterFunc: f})
}

// GaugeFunc registers a gauge sampled by f at snapshot time (occupancies,
// queue lengths). f runs only when a snapshot is taken, never per access.
func (r *Registry) GaugeFunc(name, unit, help string, f func() float64) {
	r.add(Desc{Name: name, Unit: unit, Help: help, Kind: KindGauge},
		&entry{gaugeFunc: f})
}

// Histogram registers h as a named power-of-two-bucket histogram. The
// caller keeps calling h.Observe directly.
func (r *Registry) Histogram(name, unit, help string, h *Hist) {
	r.add(Desc{Name: name, Unit: unit, Help: help, Kind: KindHistogram},
		&entry{hist: h})
}

// LinearHistogram registers h as a named per-index histogram.
func (r *Registry) LinearHistogram(name, unit, help string, h *LinearHist) {
	r.add(Desc{Name: name, Unit: unit, Help: help, Kind: KindLinearHistogram},
		&entry{linear: h})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.entries) }

// Descs returns every registered metric's description, sorted by name —
// the registry's self-description, used by `make docscheck` to validate
// docs/METRICS.md and by the JSONL schema tests.
func (r *Registry) Descs() []Desc {
	out := make([]Desc, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.desc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot is one deterministic dump of every registered metric, grouped by
// kind. It marshals to canonical JSON (map keys sort), so equal registry
// states produce byte-identical snapshots.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot   `json:"histograms,omitempty"`
	Linear     map[string]LinearSnapshot `json:"linear_histograms,omitempty"`
}

// Snapshot reads every registered instrument and returns the dump. It
// allocates; callers take snapshots at run boundaries, not per access.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	for name, e := range r.entries {
		switch {
		case e.counter != nil:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[name] = *e.counter
		case e.counterFunc != nil:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[name] = e.counterFunc()
		case e.gaugeFunc != nil:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[name] = e.gaugeFunc()
		case e.hist != nil:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistSnapshot)
			}
			s.Histograms[name] = e.hist.Snapshot()
		case e.linear != nil:
			if s.Linear == nil {
				s.Linear = make(map[string]LinearSnapshot)
			}
			s.Linear[name] = e.linear.Snapshot()
		}
	}
	return s
}
