// Package metrics is the simulator's observability primitive layer: named
// uint64 counters, sampled gauges, fixed-bucket power-of-two latency
// histograms, and linear (per-level) histograms, bound into a Registry that
// can describe and snapshot itself for machine-readable run artifacts
// (docs/METRICS.md is the schema reference, validated by `make docscheck`).
//
// # Zero-allocation contract
//
// The instrument types (Hist, LinearHist, plain uint64 counters) are updated
// on the simulator's access path, which must not allocate (see
// TestPathAccessZeroAllocs and the `make alloccheck` gate). Hist.Observe and
// LinearHist.Add are plain array writes with no interface dispatch, no
// atomics and no allocation; instruments are embedded by value in the stats
// structures they measure and updated through direct field access. The
// Registry only binds names to those instruments — registration happens at
// construction time, and the registry is consulted again only when a
// Snapshot is taken (end of run, epoch boundary, or telemetry poll), never
// per access.
//
// # Determinism contract
//
// Everything here is deterministic: instruments are plain memory written by
// the single goroutine that owns the enclosing System, Snapshot enumerates
// metrics in sorted-name order, and snapshots marshal to canonical JSON
// (encoding/json sorts map keys), so two runs with the same seed produce
// byte-identical metric dumps regardless of worker count.
package metrics

import (
	"fmt"
	"math/bits"
)

// NumBuckets is the number of power-of-two histogram buckets. Bucket 0
// holds exactly the value 0; bucket k (k >= 1) holds values in
// [2^(k-1), 2^k - 1], i.e. values whose bit length is k.
const NumBuckets = 65

// Hist is a fixed-bucket power-of-two histogram for cycle-valued samples
// (latencies, depths). The zero value is ready to use. Observe is
// allocation-free; see the package comment for the hot-path contract.
type Hist struct {
	counts   [NumBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Min returns the smallest observed sample, or 0 before any observation.
func (h *Hist) Min() uint64 { return h.min }

// Max returns the largest observed sample, or 0 before any observation.
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of observed samples, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the raw count of bucket i (see BucketBounds).
func (h *Hist) Bucket(i int) uint64 { return h.counts[i] }

// BucketIndex returns the bucket a value falls into: its bit length.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
// Bucket 0 is [0, 0]; bucket k >= 1 is [2^(k-1), 2^k - 1].
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << uint(i-1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<uint(i) - 1
}

// BucketCount is one non-empty histogram bucket in a snapshot: N samples
// with values in [Lo, Hi].
type BucketCount struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  uint64 `json:"n"`
}

// HistSnapshot is the serializable state of a Hist: summary statistics plus
// the non-empty buckets, in ascending value order.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, N: n})
	}
	return s
}

// LinearHist is a histogram with one bucket per small integer index — the
// simulator uses it for per-tree-level measurements (hit level, placement
// level). Add is allocation-free. The exported Counts slice is part of the
// legacy stats API (internal/stats aliases LevelHist to this type).
type LinearHist struct {
	Counts []uint64
}

// NewLinearHist returns a histogram with n buckets.
func NewLinearHist(n int) *LinearHist {
	return &LinearHist{Counts: make([]uint64, n)}
}

// Add increments bucket i.
func (h *LinearHist) Add(i int) { h.Counts[i]++ }

// AddN adds n to bucket i — the bulk form for callers that tally a batch
// locally and flush once.
func (h *LinearHist) AddN(i int, n uint64) { h.Counts[i] += n }

// Total returns the histogram mass.
func (h *LinearHist) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// FractionUpTo returns the share of mass at buckets [0, l].
func (h *LinearHist) FractionUpTo(l int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var n uint64
	for i := 0; i <= l && i < len(h.Counts); i++ {
		n += h.Counts[i]
	}
	return float64(n) / float64(total)
}

// LinearSnapshot is the serializable state of a LinearHist.
type LinearSnapshot struct {
	Total  uint64   `json:"total"`
	Counts []uint64 `json:"counts"`
}

// Snapshot captures the linear histogram's current state.
func (h *LinearHist) Snapshot() LinearSnapshot {
	return LinearSnapshot{
		Total:  h.Total(),
		Counts: append([]uint64(nil), h.Counts...),
	}
}

// String renders the summary fields compactly (buckets elided).
func (s HistSnapshot) String() string {
	return fmt.Sprintf("hist{n=%d sum=%d min=%d max=%d}", s.Count, s.Sum, s.Min, s.Max)
}
