package metrics

import (
	"encoding/json"
	"testing"
)

// TestHistBucketBoundaries pins the power-of-two bucketing: bucket 0 is
// exactly {0}, bucket k holds [2^(k-1), 2^k - 1], and the boundary values
// land on the correct side.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11}, {1<<11 - 1, 11},
		{1 << 62, 63},
		{1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.bucket {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d]", c.v, c.bucket, lo, hi)
		}
	}
	// Bounds must tile the uint64 range with no gaps or overlaps.
	_, prevHi := BucketBounds(0)
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("bucket %d has hi %d < lo %d", i, hi, lo)
		}
		prevHi = hi
	}
	if prevHi != ^uint64(0) {
		t.Errorf("buckets end at %d, want MaxUint64", prevHi)
	}
}

func TestHistObserveAndSnapshot(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 1, 5, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1007 || h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("summary = count %d sum %d min %d max %d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 1007.0/5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	s := h.Snapshot()
	var total uint64
	for _, b := range s.Buckets {
		total += b.N
		if b.N == 0 {
			t.Errorf("snapshot contains empty bucket [%d, %d]", b.Lo, b.Hi)
		}
	}
	if total != 5 {
		t.Fatalf("snapshot bucket mass %d, want 5", total)
	}
	// 0 -> bucket 0; the two 1s -> bucket 1; 5 -> [4,7]; 1000 -> [512,1023].
	want := []BucketCount{{0, 0, 1}, {1, 1, 2}, {4, 7, 1}, {512, 1023, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestLinearHist(t *testing.T) {
	h := NewLinearHist(4)
	h.Add(0)
	h.Add(2)
	h.Add(2)
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.FractionUpTo(1); got != 1.0/3 {
		t.Fatalf("FractionUpTo(1) = %v", got)
	}
	s := h.Snapshot()
	if s.Total != 3 || len(s.Counts) != 4 || s.Counts[2] != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	// The snapshot must be a copy, not an aliased view.
	h.Add(3)
	if s.Counts[3] != 0 {
		t.Fatal("snapshot aliases live counts")
	}
}

func TestRegistrySnapshotAndDescs(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 7
	var h Hist
	h.Observe(12)
	lh := NewLinearHist(2)
	lh.Add(1)
	r.Counter("test_counter", "events", "a counter", &c)
	r.CounterFunc("test_counter_fn", "events", "a derived counter", func() uint64 { return 21 })
	r.GaugeFunc("test_gauge", "blocks", "a gauge", func() float64 { return 2.5 })
	r.Histogram("test_hist", "cycles", "a histogram", &h)
	r.LinearHistogram("test_linear", "levels", "a linear histogram", lh)

	descs := r.Descs()
	if len(descs) != 5 || r.Len() != 5 {
		t.Fatalf("descs = %+v", descs)
	}
	for i := 1; i < len(descs); i++ {
		if descs[i-1].Name >= descs[i].Name {
			t.Fatalf("descs not sorted: %q before %q", descs[i-1].Name, descs[i].Name)
		}
	}

	s := r.Snapshot()
	if s.Counters["test_counter"] != 7 || s.Counters["test_counter_fn"] != 21 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Gauges["test_gauge"] != 2.5 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if s.Histograms["test_hist"].Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	if s.Linear["test_linear"].Total != 1 {
		t.Fatalf("linear = %+v", s.Linear)
	}

	// Registered instruments stay live: later updates appear in the next
	// snapshot, and equal states marshal to identical bytes.
	c = 8
	b1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("equal registry states marshaled differently")
	}
	var round Snapshot
	if err := json.Unmarshal(b1, &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["test_counter"] != 8 {
		t.Fatalf("round-trip counters = %+v", round.Counters)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "Bad", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			var v uint64
			NewRegistry().Counter(name, "u", "h", &v)
		}()
	}
	// Duplicate registration must panic too.
	r := NewRegistry()
	var v uint64
	r.Counter("dup", "u", "h", &v)
	defer func() {
		if recover() == nil {
			t.Error("duplicate name accepted")
		}
	}()
	r.Counter("dup", "u", "h", &v)
}

// BenchmarkHistObserve is the metrics-overhead microbenchmark: one
// histogram observation, the unit of work instrumentation adds per path
// access. Gated at 0 allocs/op by `make alloccheck` (via cmd/benchjson).
func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
	if h.Count() == 0 {
		b.Fatal("no observations")
	}
}
