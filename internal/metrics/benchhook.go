package metrics

import "testing"

// ObserveBenchmark measures Hist.Observe, the one metrics operation on the
// simulator's access path. cmd/benchjson runs it programmatically and
// `make alloccheck` gates it at 0 allocs/op — the registry design promises
// that instrumentation never allocates in steady state, and this is the
// benchmark that enforces it.
func ObserveBenchmark(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
	if h.Count() == 0 {
		b.Fatal("metrics: no observations recorded")
	}
}
