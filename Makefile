# Verification targets for the iroram reproduction.
#
#   make build   compile everything
#   make vet     static analysis
#   make test    unit + experiment tests (tier-1)
#   make race    full tree under the race detector (the parallel
#                experiment engine must stay race-clean)
#   make check   all of the above — the documented verification flow
#   make bench   benchmark harness (one benchmark per paper figure)

GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
