# Verification targets for the iroram reproduction.
#
#   make build       compile everything
#   make vet         static analysis
#   make test        unit + experiment tests (tier-1)
#   make race        full tree under the race detector (the parallel
#                    experiment engine must stay race-clean)
#   make alloccheck  gate: the steady-state hot paths (path access, evict,
#                    tree walk, tree-top find, LLC access, DWB scan,
#                    histogram observe, fully-traced flight access) must not
#                    allocate
#   make docscheck   gate: exported facade/metrics identifiers must carry doc
#                    comments, and docs/METRICS.md must match the metrics
#                    registry's self-description both ways
#   make check       all of the above — the documented verification flow
#   make bench       benchmark harness (one benchmark per paper figure)
#   make benchjson   performance-trajectory snapshot (BENCH_pr10.json, min of
#                    5 reps per benchmark); fails if the quick fig10 gmeans
#                    drift from BENCH_pr9.json
#   make benchcmp    compare BENCH_pr10.json against BENCH_pr9.json: fails on
#                    >10% ns/op regression or any metric drift
#   make flightcheck trace a quick fig10 run, validate it with flightstat,
#                    and diff the trace bytes across -jobs 1 and -jobs 4
#   make profile     CPU+heap profile of a quick fig10 regeneration
#   make profile-top profile, then print the top 25 flat-cost functions

GO ?= go

.PHONY: build vet test race alloccheck docscheck check bench benchjson benchcmp flightcheck profile profile-top

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

alloccheck:
	$(GO) run ./cmd/benchjson -check

docscheck:
	$(GO) run ./cmd/docscheck

check: build vet test race alloccheck docscheck

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

benchjson:
	$(GO) run ./cmd/benchjson -out BENCH_pr10.json -baseline BENCH_pr9.json

benchcmp:
	$(GO) run ./cmd/benchjson -diff BENCH_pr10.json -against BENCH_pr9.json

flightcheck:
	$(GO) run ./cmd/experiments -fig fig10 -quick -progress=false -jobs 4 \
		-flight flight-j4 -flight-sample 8 > /dev/null
	$(GO) run ./cmd/experiments -fig fig10 -quick -progress=false -jobs 1 \
		-dedup=false -overlap=false -flight flight-j1 -flight-sample 8 > /dev/null
	diff -r flight-j4 flight-j1
	$(GO) run ./cmd/flightstat flight-j4/fig10.trace.json
	rm -r flight-j4 flight-j1

profile:
	$(GO) run ./cmd/experiments -fig fig10 -quick -progress=false \
		-cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with:"
	@echo "  $(GO) tool pprof -top cpu.pprof"
	@echo "  $(GO) tool pprof -sample_index=alloc_space -top mem.pprof"

profile-top: profile
	$(GO) tool pprof -top -nodecount=25 cpu.pprof
