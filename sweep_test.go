package iroram

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// sweepFixture is a small but representative figure subset: table2/fig2
// re-request the Baseline row, fig10 builds the scheme grid, fig12 reuses
// both, and ablation-mlp shares the default-MLP Baseline cells.
var sweepFixture = []string{"table2", "fig2", "fig10", "fig12", "ablation-mlp"}

func runSweep(t *testing.T, dedup, overlap bool, jobs int) (stdout, artifacts string, hits int64) {
	t.Helper()
	opts := QuickExperiments()
	opts.Requests = 400
	opts.Benchmarks = []string{"gcc", "mcf"}
	opts.Jobs = jobs
	log := &ArtifactLog{}
	opts.Artifacts = log

	var tables strings.Builder
	sw := Sweep{Options: opts, Names: sweepFixture, Dedup: dedup, Overlap: overlap}
	err := sw.Run(func(fr FigureRun) {
		if fr.Err != nil {
			t.Fatalf("%s: %v", fr.Name, fr.Err)
		}
		tables.WriteString(fr.Table.String())
		tables.WriteString("\n")
		hits += fr.Hits
	})
	if err != nil {
		t.Fatal(err)
	}
	var art strings.Builder
	if err := log.Encode(&art); err != nil {
		t.Fatal(err)
	}
	return tables.String(), art.String(), hits
}

// TestSweepDifferential pins the tentpole's determinism contract: tables and
// JSONL artifact bytes are identical across {dedup on, off} × {overlap on,
// off} × {jobs 1, 4}, and dedup actually eliminates duplicate cells.
func TestSweepDifferential(t *testing.T) {
	baseOut, baseArt, baseHits := runSweep(t, false, false, 1)
	if baseHits != 0 {
		t.Errorf("cache-less sweep reported %d hits", baseHits)
	}
	combos := []struct {
		name           string
		dedup, overlap bool
		jobs           int
	}{
		{"dedup-seq-j1", true, false, 1},
		{"dedup-seq-j4", true, false, 4},
		{"dedup-overlap-j1", true, true, 1},
		{"dedup-overlap-j4", true, true, 4},
		{"nodedup-overlap-j4", false, true, 4},
	}
	for _, c := range combos {
		out, art, hits := runSweep(t, c.dedup, c.overlap, c.jobs)
		if out != baseOut {
			t.Errorf("%s: stdout diverges from sequential cache-less run", c.name)
		}
		if art != baseArt {
			t.Errorf("%s: artifact bytes diverge from sequential cache-less run", c.name)
		}
		if c.dedup && hits == 0 {
			t.Errorf("%s: dedup enabled but no cell was served from the cache", c.name)
		}
		if !c.dedup && hits != 0 {
			t.Errorf("%s: dedup disabled but %d hits reported", c.name, hits)
		}
	}
}

// TestSweepHitAttributionDeterministic pins the per-figure cells=N hits=M
// accounting: under an overlapped dedup sweep the split must not depend on
// which driver won a duplicated cell's single-flight race — it is replayed
// in canonical figure order and must be identical for every Jobs value, and
// equal to what the sequential (non-overlapped) sweep reports.
func TestSweepHitAttributionDeterministic(t *testing.T) {
	counts := func(overlap bool, jobs int) (cells, hits map[string]int64) {
		t.Helper()
		opts := QuickExperiments()
		opts.Requests = 400
		opts.Benchmarks = []string{"gcc", "mcf"}
		opts.Jobs = jobs
		cells = make(map[string]int64)
		hits = make(map[string]int64)
		sw := Sweep{Options: opts, Names: sweepFixture, Dedup: true, Overlap: overlap}
		if err := sw.Run(func(fr FigureRun) {
			if fr.Err != nil {
				t.Fatalf("%s: %v", fr.Name, fr.Err)
			}
			cells[fr.Name] = fr.Cells
			hits[fr.Name] = fr.Hits
		}); err != nil {
			t.Fatal(err)
		}
		return cells, hits
	}

	seqCells, seqHits := counts(false, 1)
	total := int64(0)
	for _, h := range seqHits {
		total += h
	}
	if total == 0 {
		t.Fatal("fixture produced no cache hits; the attribution test is vacuous")
	}
	for _, c := range []struct {
		name    string
		overlap bool
		jobs    int
	}{
		{"overlap-j1", true, 1},
		{"overlap-j4", true, 4},
		{"seq-j4", false, 4},
	} {
		cells, hits := counts(c.overlap, c.jobs)
		for _, name := range sweepFixture {
			if cells[name] != seqCells[name] {
				t.Errorf("%s: %s cells = %d, want %d", c.name, name, cells[name], seqCells[name])
			}
			if hits[name] != seqHits[name] {
				t.Errorf("%s: %s hits = %d, want %d", c.name, name, hits[name], seqHits[name])
			}
		}
	}
}

// TestSweepStopsOnError: a failing figure is delivered last with its error,
// figures after it are not, and Run returns the error — sequential and
// overlapped.
func TestSweepStopsOnError(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		opts := QuickExperiments()
		opts.Requests = 200
		opts.Benchmarks = []string{"gcc"}
		opts.Jobs = 2
		sw := Sweep{
			Options: opts,
			Names:   []string{"table2", "no-such-figure", "fig2"},
			Dedup:   true,
			Overlap: overlap,
		}
		var seen []string
		err := sw.Run(func(fr FigureRun) {
			seen = append(seen, fr.Name)
			if fr.Name == "no-such-figure" && fr.Err == nil {
				t.Errorf("overlap=%v: failing figure delivered without error", overlap)
			}
		})
		var unknown *UnknownExperimentError
		if !errors.As(err, &unknown) {
			t.Errorf("overlap=%v: err = %v, want UnknownExperimentError", overlap, err)
		}
		if len(seen) == 0 || seen[len(seen)-1] != "no-such-figure" {
			t.Errorf("overlap=%v: delivery order %v, want failure delivered last", overlap, seen)
		}
		for _, name := range seen[:len(seen)-1] {
			if name == "fig2" {
				t.Errorf("overlap=%v: figure after the failure was delivered", overlap)
			}
		}
	}
}

// TestSweepSerializesProgress: overlapped figures must never invoke two
// progress observers at once (the stderr/telemetry path is unsynchronized
// by contract).
func TestSweepSerializesProgress(t *testing.T) {
	opts := QuickExperiments()
	opts.Requests = 200
	opts.Benchmarks = []string{"gcc"}
	opts.Jobs = 4
	var inFlight, violations atomic.Int64
	sw := Sweep{
		Options: opts,
		Names:   []string{"table2", "fig2", "fig10"},
		Dedup:   false, // every cell simulates, maximizing callback overlap
		Overlap: true,
		ProgressFor: func(string) func(Progress) {
			return func(Progress) {
				if inFlight.Add(1) > 1 {
					violations.Add(1)
				}
				inFlight.Add(-1)
			}
		},
	}
	if err := sw.Run(func(fr FigureRun) {
		if fr.Err != nil {
			t.Fatalf("%s: %v", fr.Name, fr.Err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("%d concurrent progress observations", v)
	}
}
