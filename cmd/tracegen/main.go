// Command tracegen writes synthetic workload traces to disk in the binary
// trace format, for replay via examples/tracereplay or external tools.
//
// Usage:
//
//	tracegen -bench mcf -n 100000 -o mcf.trace
//	tracegen -bench random -n 50000 -o rnd.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"iroram"
	"iroram/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "mix", `workload: Table II benchmark, "mix", or "random"`)
		n        = flag.Int("n", 100000, "number of records")
		outPath  = flag.String("o", "", "output file (required)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		universe = flag.Uint64("universe", 0, "protected space in blocks (0 = scaled default)")
		text     = flag.Bool("text", false, "write the human-readable text format instead of binary")
	)
	flag.Parse()
	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(2)
	}
	u := *universe
	if u == 0 {
		u = iroram.ScaledConfig().ORAM.DataBlocks()
	}
	var gen trace.Generator
	switch *bench {
	case "mix":
		gen = trace.PaperMix(u, *seed)
	case "random":
		gen = trace.Random(u, 0.5, *seed)
	default:
		g, err := trace.Benchmark(*bench, u, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(2)
		}
		gen = g
	}
	reqs := trace.Collect(gen, *n)
	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	write := trace.Write
	if *text {
		write = trace.WriteText
	}
	if err := write(f, *bench, reqs); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records of %q to %s\n", len(reqs), *bench, *outPath)
}
