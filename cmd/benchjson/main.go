// Command benchjson runs the repository's performance-trajectory
// benchmarks programmatically (testing.Benchmark, no `go test` plumbing)
// and writes one JSON snapshot per PR: benchmark name -> ns/op, B/op and
// allocs/op, plus the headline quick-scale figure metrics so a perf
// regression that shifts paper-facing numbers is visible in the same file.
//
// Usage:
//
//	benchjson -out BENCH_pr8.json          # write the snapshot (make benchjson);
//	                                       # -baseline pins the fig10 gmeans to the
//	                                       # previous PR's to machine precision;
//	                                       # -reps N (default 5) repeats each wall-
//	                                       # clock benchmark and keeps the minimum
//	benchjson -check                       # gate: fail if any zero-alloc hot-path
//	                                       # benchmark allocates (make alloccheck)
//	benchjson -diff NEW -against OLD       # gate: fail on >10% ns/op regression or
//	                                       # any metric drift (make benchcmp)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"iroram"
	"iroram/internal/block"
	"iroram/internal/cache"
	"iroram/internal/config"
	"iroram/internal/core"
	"iroram/internal/dram"
	"iroram/internal/flight"
	"iroram/internal/metrics"
	"iroram/internal/rng"
	"iroram/internal/stash"
	"iroram/internal/tree"
)

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// hostInfo records the machine a snapshot was taken on. Wall-clock numbers
// are only comparable within one host — the benchcmp gate already allows
// for scheduler noise, but cross-host diffs need this context to be read
// correctly.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// hostSnapshot collects the host metadata. The CPU model is best-effort:
// /proc/cpuinfo exists only on Linux, and its absence just leaves the field
// empty.
func hostSnapshot() hostInfo {
	h := hostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok &&
				strings.TrimSpace(name) == "model name" {
				h.CPUModel = strings.TrimSpace(val)
				break
			}
		}
	}
	return h
}

type report struct {
	// Host describes the machine that produced the snapshot.
	Host hostInfo `json:"host"`
	// Reps is how many repetitions each wall-clock benchmark ran; the
	// recorded entry is the minimum ns/op over them (the run least
	// disturbed by the host), which keeps the 10% benchcmp gate from
	// tripping on scheduler noise.
	Reps int `json:"reps"`
	// Benchmarks are wall-clock microbenchmarks; they vary run to run with
	// the host, unlike Metrics, which are deterministic simulation outputs.
	Benchmarks map[string]benchEntry `json:"benchmarks"`
	// Metrics are the quick-scale fig10 geomean speedups over Baseline —
	// the repository's headline paper-facing numbers.
	Metrics map[string]float64 `json:"metrics"`
}

// zeroAllocBenchmarks are the steady-state hot paths gated at 0 allocs/op
// by `make alloccheck`: the end-to-end path access plus the PR 4
// data-structure microbenchmarks (eviction round-trip, LLC access with LRU
// tracking, DWB candidate scan), the PR 6 histogram observation (the one
// metrics operation on the access path), the PR 9 bitmap-engine
// microbenchmarks (the occupancy-word tree walk, the lazily-indexed
// tree-top lookup — whose alloc gate proves the index sweeps in place
// instead of growing), and the PR 10 flight-recorder path (every access
// traced into the ring — recording must reuse ring slots, never allocate).
var zeroAllocBenchmarks = []struct {
	name string
	fn   func(*testing.B)
}{
	{"PathAccess", benchPathAccess},
	{"Evict", core.EvictBenchmark},
	{"TreeWalk", tree.WalkBenchmark},
	{"TopCacheFind", stash.TopCacheFindBenchmark},
	{"LLCAccess", cache.AccessBenchmark},
	{"DWBScan", cache.ScanBenchmark},
	{"HistObserve", metrics.ObserveBenchmark},
	{"FlightAccess", benchFlightAccess},
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out   = flag.String("out", "BENCH_pr10.json", "output file")
		check = flag.Bool("check", false,
			"only verify that the hot-path benchmarks perform 0 allocs/op; no file is written")
		reps = flag.Int("reps", 5,
			"repetitions per wall-clock benchmark; the minimum ns/op is recorded")
		baseline = flag.String("baseline", "",
			"previous PR's snapshot; the deterministic metrics must match it exactly")
		diff = flag.String("diff", "",
			"snapshot to compare (with -against); fails on >10% ns/op regression or metric drift")
		against = flag.String("against", "",
			"baseline snapshot for -diff")
	)
	flag.Parse()

	if *diff != "" {
		return runDiff(*diff, *against)
	}

	if *check {
		ok := true
		for _, bm := range zeroAllocBenchmarks {
			res := testing.Benchmark(bm.fn)
			if allocs := res.AllocsPerOp(); allocs != 0 {
				fmt.Fprintf(os.Stderr,
					"benchjson: %s allocates (%d allocs/op, %d B/op); the hot path must stay allocation-free\n",
					bm.name, allocs, res.AllocedBytesPerOp())
				ok = false
			}
		}
		if !ok {
			return 1
		}
		names := make([]string, len(zeroAllocBenchmarks))
		for i, bm := range zeroAllocBenchmarks {
			names[i] = bm.name
		}
		fmt.Printf("benchjson: %s all 0 allocs/op ok\n", strings.Join(names, ", "))
		return 0
	}

	if *reps < 1 {
		*reps = 1
	}
	rep := report{
		Host: hostSnapshot(),
		Reps: *reps,
		Benchmarks: map[string]benchEntry{
			"ServiceBatch": benchMin(benchServiceBatch, *reps),
			"ServicePath":  benchMin(benchServicePath, *reps),
			"ServiceRuns":  benchMin(benchServiceRuns, *reps),
		},
		Metrics: map[string]float64{},
	}
	for _, bm := range zeroAllocBenchmarks {
		rep.Benchmarks[bm.name] = benchMin(bm.fn, *reps)
	}

	opts := iroram.QuickExperiments()
	tab, err := iroram.Experiment("fig10", opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: fig10: %v\n", err)
		return 1
	}
	for _, series := range []string{"Rho", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM"} {
		if v, ok := tab.Get("gmean", series); ok {
			rep.Metrics["fig10_gmean_"+series] = v
		}
	}

	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			return 1
		}
		// The PR 4 contract: pure data-structure swaps, so every
		// deterministic metric must match the previous PR bit for bit.
		for name, want := range base.Metrics {
			if got, ok := rep.Metrics[name]; !ok || got != want {
				fmt.Fprintf(os.Stderr,
					"benchjson: metric %s = %v, baseline %s has %v — deterministic output drifted\n",
					name, rep.Metrics[name], *baseline, want)
				return 1
			}
		}
		fmt.Printf("benchjson: %d metrics match %s exactly\n", len(base.Metrics), *baseline)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	pa := rep.Benchmarks["PathAccess"]
	fmt.Printf("benchjson: wrote %s (PathAccess %.0f ns/op, %d allocs/op)\n",
		*out, pa.NsPerOp, pa.AllocsPerOp)
	return 0
}

// runDiff is the `make benchcmp` gate: metrics must match exactly
// (deterministic outputs), ns/op of shared benchmarks may not regress more
// than 10%. Benchmarks present on only one side are reported but not fatal
// (PRs add benchmarks). Sub-10% ratios aside, a regression must also clear
// an absolute floor of 5 ns/op: the smallest benchmarks (DWBScan at ~28
// ns/op, HistObserve at ~2) move several ns with the binary's code layout
// whenever any linked package is recompiled, and a gate that fails on
// layout noise of unchanged code trains people to ignore it.
func runDiff(newPath, oldPath string) int {
	if oldPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -diff requires -against")
		return 1
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	ok := true
	for name, want := range oldRep.Metrics {
		got, present := newRep.Metrics[name]
		if !present || got != want {
			fmt.Fprintf(os.Stderr, "benchjson: metric drift: %s = %v, was %v\n",
				name, got, want)
			ok = false
		}
	}
	const (
		maxRegression = 1.10
		noiseFloorNs  = 5.0
	)
	for name, old := range oldRep.Benchmarks {
		cur, present := newRep.Benchmarks[name]
		if !present {
			fmt.Printf("benchjson: %s: only in %s (skipped)\n", name, oldPath)
			continue
		}
		ratio := cur.NsPerOp / old.NsPerOp
		fmt.Printf("benchjson: %-14s %9.1f -> %9.1f ns/op (%.2fx)\n",
			name, old.NsPerOp, cur.NsPerOp, ratio)
		if ratio > maxRegression && cur.NsPerOp-old.NsPerOp > noiseFloorNs {
			fmt.Fprintf(os.Stderr, "benchjson: %s regressed %.0f%% (limit 10%%, noise floor %.0f ns)\n",
				name, (ratio-1)*100, noiseFloorNs)
			ok = false
		}
	}
	if !ok {
		return 1
	}
	fmt.Printf("benchjson: %s vs %s ok\n", newPath, oldPath)
	return 0
}

func loadReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func toEntry(r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchMin runs a benchmark reps times and keeps the repetition with the
// lowest ns/op — the one least disturbed by the host.
func benchMin(fn func(*testing.B), reps int) benchEntry {
	best := toEntry(testing.Benchmark(fn))
	for i := 1; i < reps; i++ {
		if e := toEntry(testing.Benchmark(fn)); e.NsPerOp < best.NsPerOp {
			best = e
		}
	}
	return best
}

// benchFlightAccess is benchPathAccess with a flight recorder attached and
// sampling every access — the fully traced path. Gating it at 0 allocs/op
// proves tracing itself stays allocation-free: events land in pre-allocated
// ring slots.
func benchFlightAccess(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := core.NewController(cfg, mem, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	fl := flight.New(1<<14, 1)
	c.AttachFlight(fl)
	mem.AttachFlight(fl)
	is := core.NewIssuer(c, nil)
	r := rng.New(2)
	nd := cfg.ORAM.DataBlocks()
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
}

// benchPathAccess mirrors BenchmarkPathAccess in bench_test.go: end-to-end
// demand accesses (PLB misses and all) on the tiny geometry, warmed up so
// the steady state is measured.
func benchPathAccess(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := core.NewController(cfg, mem, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	is := core.NewIssuer(c, nil)
	r := rng.New(2)
	nd := cfg.ORAM.DataBlocks()
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
}

func benchServiceBatch(b *testing.B) {
	m := dram.New(config.Scaled().DRAM)
	accs := make([]dram.Access, 44)
	for i := range accs {
		accs[i] = dram.Access{Addr: uint64(i * 37)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServiceBatch(now, accs)
	}
}

func benchServicePath(b *testing.B) {
	m := dram.New(config.Scaled().DRAM)
	phys := make([]uint64, 44)
	for i := range phys {
		phys[i] = uint64(i * 37)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServicePath(now, phys, 0, false)
	}
}

// benchServiceRuns measures the schedule-cache hit path: the run list is
// built once (what PathSched memoizes per leaf) and only serviced per
// access, skipping address decomposition entirely.
func benchServiceRuns(b *testing.B) {
	m := dram.New(config.Scaled().DRAM)
	phys := make([]uint64, 44)
	for i := range phys {
		phys[i] = uint64(i * 37)
	}
	runs := m.AppendRuns(phys, 0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServiceRuns(now, runs, false)
	}
}
