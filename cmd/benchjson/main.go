// Command benchjson runs the repository's performance-trajectory
// benchmarks programmatically (testing.Benchmark, no `go test` plumbing)
// and writes one JSON snapshot per PR: benchmark name -> ns/op, B/op and
// allocs/op, plus the headline quick-scale figure metrics so a perf
// regression that shifts paper-facing numbers is visible in the same file.
//
// Usage:
//
//	benchjson -out BENCH_pr3.json   # write the snapshot (make benchjson)
//	benchjson -check                # gate: fail if the steady-state path
//	                                # access allocates (make check)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"iroram"
	"iroram/internal/block"
	"iroram/internal/config"
	"iroram/internal/core"
	"iroram/internal/dram"
	"iroram/internal/rng"
)

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	// Benchmarks are wall-clock microbenchmarks; they vary run to run with
	// the host, unlike Metrics, which are deterministic simulation outputs.
	Benchmarks map[string]benchEntry `json:"benchmarks"`
	// Metrics are the quick-scale fig10 geomean speedups over Baseline —
	// the repository's headline paper-facing numbers.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out   = flag.String("out", "BENCH_pr3.json", "output file")
		check = flag.Bool("check", false,
			"only verify that BenchmarkPathAccess performs 0 allocs/op; no file is written")
	)
	flag.Parse()

	pathAccess := testing.Benchmark(benchPathAccess)
	if *check {
		if allocs := pathAccess.AllocsPerOp(); allocs != 0 {
			fmt.Fprintf(os.Stderr,
				"benchjson: steady-state path access allocates (%d allocs/op, %d B/op); the hot path must stay allocation-free\n",
				allocs, pathAccess.AllocedBytesPerOp())
			return 1
		}
		fmt.Println("benchjson: PathAccess 0 allocs/op ok")
		return 0
	}

	rep := report{
		Benchmarks: map[string]benchEntry{
			"PathAccess":   toEntry(pathAccess),
			"ServiceBatch": toEntry(testing.Benchmark(benchServiceBatch)),
			"ServicePath":  toEntry(testing.Benchmark(benchServicePath)),
		},
		Metrics: map[string]float64{},
	}

	opts := iroram.QuickExperiments()
	tab, err := iroram.Experiment("fig10", opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: fig10: %v\n", err)
		return 1
	}
	for _, series := range []string{"Rho", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM"} {
		if v, ok := tab.Get("gmean", series); ok {
			rep.Metrics["fig10_gmean_"+series] = v
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Printf("benchjson: wrote %s (PathAccess %.0f ns/op, %d allocs/op)\n",
		*out, float64(pathAccess.NsPerOp()), pathAccess.AllocsPerOp())
	return 0
}

func toEntry(r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchPathAccess mirrors BenchmarkPathAccess in bench_test.go: end-to-end
// demand accesses (PLB misses and all) on the tiny geometry, warmed up so
// the steady state is measured.
func benchPathAccess(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := core.NewController(cfg, mem, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	is := core.NewIssuer(c, nil)
	r := rng.New(2)
	nd := cfg.ORAM.DataBlocks()
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
}

func benchServiceBatch(b *testing.B) {
	m := dram.New(config.Scaled().DRAM)
	accs := make([]dram.Access, 44)
	for i := range accs {
		accs[i] = dram.Access{Addr: uint64(i * 37)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServiceBatch(now, accs)
	}
}

func benchServicePath(b *testing.B) {
	m := dram.New(config.Scaled().DRAM)
	phys := make([]uint64, 44)
	for i := range phys {
		phys[i] = uint64(i * 37)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServicePath(now, phys, 0, false)
	}
}
