// Command docscheck is the documentation gate wired into `make check`. It
// fails when:
//
//   - an exported identifier of the facade package (the repository root) or
//     of internal/metrics lacks a doc comment — these are the two packages
//     whose godoc is the public contract;
//   - docs/METRICS.md is out of sync with the metrics registry's
//     self-description: every registered instrument name must appear in the
//     document (as a backticked token), and every metric-shaped backticked
//     token in the document must name a registered instrument. The
//     registry is the source of truth; the document may not invent or omit
//     names.
//
// Run from the repository root (as the Makefile does): paths are relative.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strings"

	"iroram"
)

func main() {
	os.Exit(run())
}

func run() int {
	bad := 0
	for _, dir := range []string{".", "internal/metrics"} {
		n, err := auditPackageDocs(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			return 2
		}
		bad += n
	}
	n, err := auditMetricsDoc("docs/METRICS.md")
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	bad += n
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problems\n", bad)
		return 1
	}
	fmt.Println("docscheck: godoc coverage and docs/METRICS.md in sync ok")
	return 0
}

// auditPackageDocs parses the non-test files of dir and reports every
// exported declaration (package clause included) without a doc comment.
func auditPackageDocs(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	complain := func(what string) {
		fmt.Fprintf(os.Stderr, "docscheck: %s: %s lacks a doc comment\n", dir, what)
		bad++
	}
	for _, pkg := range pkgs {
		d := doc.New(pkg, dir, 0)
		if strings.TrimSpace(d.Doc) == "" {
			complain("package " + d.Name)
		}
		for _, v := range append(append([]*doc.Value{}, d.Consts...), d.Vars...) {
			if strings.TrimSpace(v.Doc) == "" && hasExportedName(v.Names) {
				complain(strings.Join(exportedNames(v.Names), ", "))
			}
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
				complain("type " + t.Name)
			}
			for _, m := range t.Methods {
				if ast.IsExported(m.Name) && strings.TrimSpace(m.Doc) == "" {
					complain("method " + t.Name + "." + m.Name)
				}
			}
			for _, f := range t.Funcs {
				if ast.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
					complain("func " + f.Name)
				}
			}
			for _, v := range append(append([]*doc.Value{}, t.Consts...), t.Vars...) {
				if strings.TrimSpace(v.Doc) == "" && hasExportedName(v.Names) {
					complain(strings.Join(exportedNames(v.Names), ", "))
				}
			}
		}
		for _, f := range d.Funcs {
			if ast.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
				complain("func " + f.Name)
			}
		}
	}
	return bad, nil
}

func hasExportedName(names []string) bool { return len(exportedNames(names)) > 0 }

func exportedNames(names []string) []string {
	var out []string
	for _, n := range names {
		if ast.IsExported(n) {
			out = append(out, n)
		}
	}
	return out
}

// metricToken matches backticked identifiers in docs/METRICS.md that look
// like registered instrument names (the four stable prefixes).
var metricToken = regexp.MustCompile("`((?:oram|sim|llc|dram)_[a-z0-9_]+)`")

// auditMetricsDoc checks the two-way correspondence between docs/METRICS.md
// and the registry self-description of a live System.
func auditMetricsDoc(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("%s missing (the metrics schema reference is mandatory): %w", path, err)
	}
	text := string(data)

	registered := map[string]bool{}
	bad := 0
	for _, d := range iroram.MetricDescriptors() {
		registered[d.Name] = true
		if !strings.Contains(text, "`"+d.Name+"`") {
			fmt.Fprintf(os.Stderr, "docscheck: %s: registered metric %q (%s, %s) is undocumented\n",
				path, d.Name, d.Kind, d.Unit)
			bad++
		}
	}
	seen := map[string]bool{}
	for _, m := range metricToken.FindAllStringSubmatch(text, -1) {
		name := m[1]
		if seen[name] {
			continue
		}
		seen[name] = true
		if !registered[name] {
			fmt.Fprintf(os.Stderr, "docscheck: %s: documented metric %q is not registered (stale name?)\n",
				path, name)
			bad++
		}
	}
	return bad, nil
}
