// Command docscheck is the documentation gate wired into `make check`. It
// fails when:
//
//   - an exported identifier of the facade package (the repository root) or
//     of internal/metrics lacks a doc comment — these are the two packages
//     whose godoc is the public contract;
//   - docs/METRICS.md is out of sync with the metrics registry's
//     self-description: every registered instrument name must appear in the
//     document (as a backticked token), and every metric-shaped backticked
//     token in the document must name a registered instrument. The
//     registry is the source of truth; the document may not invent or omit
//     names.
//   - a command-line flag of cmd/experiments, cmd/irsim or cmd/flightstat
//     is missing from README.md: every flag.Xxx("name", ...) declaration
//     must appear as a backticked `-name` token in the README's flag
//     tables, so the user-facing surface cannot drift undocumented.
//
// Run from the repository root (as the Makefile does): paths are relative.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strings"

	"iroram"
)

func main() {
	os.Exit(run())
}

func run() int {
	bad := 0
	for _, dir := range []string{".", "internal/metrics"} {
		n, err := auditPackageDocs(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			return 2
		}
		bad += n
	}
	n, err := auditMetricsDoc("docs/METRICS.md")
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	bad += n
	n, err = auditFlagsDoc("README.md", "cmd/experiments", "cmd/irsim", "cmd/flightstat")
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	bad += n
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problems\n", bad)
		return 1
	}
	fmt.Println("docscheck: godoc coverage, docs/METRICS.md and README flags in sync ok")
	return 0
}

// auditPackageDocs parses the non-test files of dir and reports every
// exported declaration (package clause included) without a doc comment.
func auditPackageDocs(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	complain := func(what string) {
		fmt.Fprintf(os.Stderr, "docscheck: %s: %s lacks a doc comment\n", dir, what)
		bad++
	}
	for _, pkg := range pkgs {
		d := doc.New(pkg, dir, 0)
		if strings.TrimSpace(d.Doc) == "" {
			complain("package " + d.Name)
		}
		for _, v := range append(append([]*doc.Value{}, d.Consts...), d.Vars...) {
			if strings.TrimSpace(v.Doc) == "" && hasExportedName(v.Names) {
				complain(strings.Join(exportedNames(v.Names), ", "))
			}
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
				complain("type " + t.Name)
			}
			for _, m := range t.Methods {
				if ast.IsExported(m.Name) && strings.TrimSpace(m.Doc) == "" {
					complain("method " + t.Name + "." + m.Name)
				}
			}
			for _, f := range t.Funcs {
				if ast.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
					complain("func " + f.Name)
				}
			}
			for _, v := range append(append([]*doc.Value{}, t.Consts...), t.Vars...) {
				if strings.TrimSpace(v.Doc) == "" && hasExportedName(v.Names) {
					complain(strings.Join(exportedNames(v.Names), ", "))
				}
			}
		}
		for _, f := range d.Funcs {
			if ast.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
				complain("func " + f.Name)
			}
		}
	}
	return bad, nil
}

func hasExportedName(names []string) bool { return len(exportedNames(names)) > 0 }

func exportedNames(names []string) []string {
	var out []string
	for _, n := range names {
		if ast.IsExported(n) {
			out = append(out, n)
		}
	}
	return out
}

// metricToken matches backticked identifiers in docs/METRICS.md that look
// like registered instrument names (the five stable prefixes).
var metricToken = regexp.MustCompile("`((?:oram|sim|llc|dram|flight)_[a-z0-9_]+)`")

// auditMetricsDoc checks the two-way correspondence between docs/METRICS.md
// and the registry self-description of a live System.
func auditMetricsDoc(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("%s missing (the metrics schema reference is mandatory): %w", path, err)
	}
	text := string(data)

	registered := map[string]bool{}
	bad := 0
	for _, d := range iroram.MetricDescriptors() {
		registered[d.Name] = true
		if !strings.Contains(text, "`"+d.Name+"`") {
			fmt.Fprintf(os.Stderr, "docscheck: %s: registered metric %q (%s, %s) is undocumented\n",
				path, d.Name, d.Kind, d.Unit)
			bad++
		}
	}
	seen := map[string]bool{}
	for _, m := range metricToken.FindAllStringSubmatch(text, -1) {
		name := m[1]
		if seen[name] {
			continue
		}
		seen[name] = true
		if !registered[name] {
			fmt.Fprintf(os.Stderr, "docscheck: %s: documented metric %q is not registered (stale name?)\n",
				path, name)
			bad++
		}
	}
	return bad, nil
}

// flagDecl matches flag declarations in command sources — the user-facing
// flag surface README.md must document.
var flagDecl = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint64|Float64|Duration)\(\s*"([a-z][a-z0-9-]*)"`)

// auditFlagsDoc checks that every flag declared in the given command
// directories appears as a backticked `-name` token in the README. The
// reverse direction is not audited: the README may discuss flags in prose
// beyond the declaration list, but it may not omit a declared flag.
func auditFlagsDoc(readme string, dirs ...string) (int, error) {
	data, err := os.ReadFile(readme)
	if err != nil {
		return 0, fmt.Errorf("%s missing (the command reference is mandatory): %w", readme, err)
	}
	text := string(data)
	bad := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(dir + "/" + e.Name())
			if err != nil {
				return 0, err
			}
			for _, m := range flagDecl.FindAllStringSubmatch(string(src), -1) {
				if !strings.Contains(text, "`-"+m[1]+"`") {
					fmt.Fprintf(os.Stderr, "docscheck: %s: flag -%s of %s is undocumented\n",
						readme, m[1], dir)
					bad++
				}
			}
		}
	}
	return bad, nil
}
