// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig fig10                 # one figure at default scale
//	experiments -fig all -out results.md   # everything, markdown report
//	experiments -fig fig3 -requests 60000  # more trace records
//	experiments -fig all -jobs 8           # fan cells across 8 workers
//	experiments -fig fig10 -emit jsonl -out artifacts/   # JSONL sidecars
//	experiments -fig all -telemetry :8080  # live JSON progress snapshots
//
// Tables go to stdout (and -out); progress and per-figure timing go to
// stderr, so stdout is byte-identical for every -jobs value and safe to
// diff or commit. Ctrl-C cancels the sweep at the next cell boundary.
//
// By default the figures run as one deduplicated batch: -dedup shares a
// cell-result cache across drivers (a cell several figures re-request
// simulates once) and -overlap submits all drivers concurrently on one
// shared worker budget of -jobs cells, buffering tables and printing them
// in figure order. Both default on and change no output byte — disable
// with -dedup=false -overlap=false to reproduce the serial, cache-less
// runs. The per-figure stderr line reports cells=N hits=M cache accounting
// (cached cells still count in -progress and telemetry totals).
//
// With -emit jsonl, -out names a directory instead of an append file: one
// <figure>.jsonl sidecar per figure, one record per simulated cell with the
// full metric dump (schema in docs/METRICS.md). Artifact bytes, like
// stdout, are identical for every -jobs value. -telemetry serves the latest
// progress snapshot as JSON over HTTP (plus /healthz and a Prometheus
// text-format /metrics view), published from the serialized progress
// callback so no simulation state is shared across goroutines.
//
// With -flight <dir>, every simulated cell carries a cycle-domain flight
// recorder sampling one in every -flight-sample path accesses, and the run
// writes one <figure>.trace.json Chrome trace-event file per figure under
// the directory — load it at https://ui.perfetto.dev or summarize it with
// cmd/flightstat (see docs/OBSERVABILITY.md). Trace bytes are identical
// for every -jobs value and for -dedup/-overlap on or off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"time"

	"iroram"
	"iroram/internal/prof"
)

// main defers to run so profile flushing (and every other defer) survives
// the error exits; os.Exit directly in the work loop would truncate the
// pprof output.
func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		fig      = flag.String("fig", "all", "experiment: table2, fig2..fig16, notp, zsearch, or all")
		requests = flag.Int("requests", 30000, "trace records per run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 13)")
		out      = flag.String("out", "", "append results to this file; with -emit jsonl, the artifact directory")
		quick    = flag.Bool("quick", false, "tiny geometry smoke run")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"parallel simulation cells (1 = sequential; results are identical for every value)")
		progress  = flag.Bool("progress", true, "report cell progress and ETA on stderr")
		emitMode  = flag.String("emit", "", `artifact emission: "jsonl" writes per-figure sidecars under -out`)
		telemetry = flag.String("telemetry", "", "serve live JSON progress snapshots on this HTTP address (e.g. :8080)")
		epochs    = flag.Uint64("epochs", 0, "with -emit jsonl: record an epoch snapshot every N issued paths (0 = off)")
		dedup     = flag.Bool("dedup", true,
			"share one cell-result cache across figures (identical cells simulate once; output bytes are unchanged)")
		overlap = flag.Bool("overlap", true,
			"run figure drivers concurrently on one shared worker budget (tables still print in figure order)")
		flightDir = flag.String("flight", "",
			"write per-figure Chrome trace-event files (<figure>.trace.json) under this directory")
		flightSample = flag.Uint64("flight-sample", 1,
			"with -flight: trace one in every N path accesses (1 = every access)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *emitMode != "" && *emitMode != "jsonl" {
		fmt.Fprintf(os.Stderr, "experiments: unknown -emit mode %q (only \"jsonl\")\n", *emitMode)
		return 2
	}
	if *emitMode == "jsonl" && *out == "" {
		fmt.Fprintln(os.Stderr, "experiments: -emit jsonl requires -out <dir>")
		return 2
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	// A profile that failed to flush is worse than none: it looks like a
	// successful run but lies to pprof. Surface it and fail the command.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := iroram.DefaultExperiments()
	if *quick {
		opts = iroram.QuickExperiments()
	}
	opts.Requests = *requests
	opts.Seed = *seed
	opts.Jobs = *jobs
	opts.Context = ctx
	if *benches != "" {
		list, err := parseBenchmarks(*benches)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		opts.Benchmarks = list
	}

	var artifacts *iroram.ArtifactLog
	if *emitMode == "jsonl" {
		artifacts = &iroram.ArtifactLog{}
		opts.Artifacts = artifacts
		opts.EpochInterval = *epochs
	}

	var flightLog *iroram.FlightLog
	if *flightDir != "" {
		if *flightSample == 0 {
			fmt.Fprintln(os.Stderr, "experiments: -flight-sample must be >= 1")
			return 2
		}
		flightLog = &iroram.FlightLog{}
		opts.Flight = flightLog
		opts.FlightSample = *flightSample
	}

	// Sidecar files (JSONL artifacts, flight traces) are written after the
	// run from both the sweep path and the zsearch branch.
	writeSidecars := func() int {
		if artifacts != nil {
			if err := artifacts.WriteDir(*out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "[wrote %d artifact records under %s]\n",
				artifacts.Len(), *out)
		}
		if flightLog != nil {
			if err := flightLog.WriteDir(*flightDir); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "[wrote %d flight traces under %s]\n",
				flightLog.Len(), *flightDir)
		}
		return 0
	}

	var sink *os.File
	if *out != "" && *emitMode == "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		// A sink that failed to close may have lost buffered results; like
		// the profile flush above, surface it and fail the command.
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: closing %s: %v\n", *out, err)
				if code == 0 {
					code = 1
				}
			}
		}()
		sink = f
	}
	emit := func(s string) {
		fmt.Print(s)
		if sink != nil {
			fmt.Fprint(sink, s)
		}
	}

	var tele *telemetryServer
	if *telemetry != "" {
		t, err := startTelemetry(*telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: telemetry: %v\n", err)
			return 2
		}
		defer t.Close()
		tele = t
		fmt.Fprintf(os.Stderr, "telemetry: serving snapshots on http://%s/\n", t.Addr())
	}

	if *fig == "zsearch" {
		opts.Progress = progressObserver("zsearch", *progress, tele)
		zprof, desc, err := iroram.SearchZProfile(opts)
		clearProgress(*progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: zsearch: %v\n", err)
			return 1
		}
		emit(fmt.Sprintf("Z-search result: %s\n(per-path blocks: %d)\n\n",
			desc, zprof.BlocksPerPath(opts.Base.ORAM.TopLevels)))
		return writeSidecars()
	}

	names := []string{*fig}
	if *fig == "all" {
		names = append([]string{}, iroram.FigureNames...)
	}
	sweep := iroram.Sweep{
		Options: opts,
		Names:   names,
		Dedup:   *dedup,
		Overlap: *overlap,
		ProgressFor: func(name string) func(iroram.Progress) {
			return progressObserver(name, *progress, tele)
		},
	}
	if err := sweep.Run(func(fr iroram.FigureRun) {
		clearProgress(*progress)
		if fr.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", fr.Name, fr.Err)
			return
		}
		emit(fr.Table.String())
		emit("\n")
		fmt.Fprintf(os.Stderr, "[%s took %v, jobs=%d, cells=%d hits=%d]\n",
			fr.Name, fr.Elapsed.Round(time.Millisecond), *jobs, fr.Cells, fr.Hits)
	}); err != nil {
		return 1
	}
	return writeSidecars()
}

// parseBenchmarks splits a comma-separated benchmark list, trimming
// whitespace around each name (so "-benchmarks 'gcc, mcf'" works) and
// rejecting empty or unknown entries with the valid names spelled out.
func parseBenchmarks(s string) ([]string, error) {
	valid := map[string]bool{"mix": true, "random": true}
	names := append([]string{}, iroram.Benchmarks()...)
	for _, b := range names {
		valid[b] = true
	}
	sort.Strings(names)
	usage := fmt.Sprintf("valid names: %s, mix, random", strings.Join(names, ", "))

	var list []string
	for _, raw := range strings.Split(s, ",") {
		b := strings.TrimSpace(raw)
		if b == "" {
			return nil, fmt.Errorf("empty benchmark name in %q (%s)", s, usage)
		}
		if !valid[b] {
			return nil, fmt.Errorf("unknown benchmark %q (%s)", b, usage)
		}
		list = append(list, b)
	}
	return list, nil
}

// progressObserver combines the stderr progress line with telemetry
// publication. Both run on the runner's serialized progress-callback path,
// so neither touches simulation state and no extra synchronization is
// needed. It returns nil when both outputs are off.
func progressObserver(name string, stderrLine bool, tele *telemetryServer) func(iroram.Progress) {
	if !stderrLine && tele == nil {
		return nil
	}
	return func(p iroram.Progress) {
		if stderrLine {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells (elapsed %v, eta %v)   ",
				name, p.Done, p.Total,
				p.Elapsed.Round(time.Second), p.ETA().Round(time.Second))
		}
		if tele != nil {
			tele.publishProgress(name, p)
		}
	}
}

func clearProgress(enabled bool) {
	if enabled {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}
