// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig fig10                 # one figure at default scale
//	experiments -fig all -out results.md   # everything, markdown report
//	experiments -fig fig3 -requests 60000  # more trace records
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iroram"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment: table2, fig2..fig16, notp, zsearch, or all")
		requests = flag.Int("requests", 30000, "trace records per run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 13)")
		out      = flag.String("out", "", "also append results to this file")
		quick    = flag.Bool("quick", false, "tiny geometry smoke run")
	)
	flag.Parse()

	opts := iroram.DefaultExperiments()
	if *quick {
		opts = iroram.QuickExperiments()
	}
	opts.Requests = *requests
	opts.Seed = *seed
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	var sink *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	emit := func(s string) {
		fmt.Print(s)
		if sink != nil {
			fmt.Fprint(sink, s)
		}
	}

	names := []string{*fig}
	if *fig == "all" {
		names = append([]string{}, iroram.FigureNames...)
	}
	for _, name := range names {
		start := time.Now()
		if name == "zsearch" {
			prof, desc, err := iroram.SearchZProfile(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: zsearch: %v\n", err)
				os.Exit(1)
			}
			emit(fmt.Sprintf("Z-search result: %s\n(per-path blocks: %d)\n\n",
				desc, prof.BlocksPerPath(opts.Base.ORAM.TopLevels)))
			continue
		}
		tab, err := iroram.Experiment(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		emit(tab.String())
		emit(fmt.Sprintf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond)))
	}
}
