package main

import (
	"iroram"
	"iroram/internal/telemetry"
)

// telemetryServer wraps the shared snapshot server with the experiment
// progress record shape. Publication happens on the runner's serialized
// progress-callback path; the server itself holds only marshalled bytes.
type telemetryServer struct {
	*telemetry.Server
}

// progressSnapshot is the JSON document served at the telemetry address
// while a sweep runs.
type progressSnapshot struct {
	Figure    string  `json:"figure"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Fraction  float64 `json:"fraction"`
	ElapsedMS int64   `json:"elapsed_ms"`
	ETAMS     int64   `json:"eta_ms"`
}

func startTelemetry(addr string) (*telemetryServer, error) {
	s, err := telemetry.Start(addr)
	if err != nil {
		return nil, err
	}
	return &telemetryServer{Server: s}, nil
}

func (t *telemetryServer) publishProgress(name string, p iroram.Progress) {
	t.Publish(progressSnapshot{ //nolint:errcheck // progress snapshots are best-effort
		Figure:    name,
		Done:      p.Done,
		Total:     p.Total,
		Fraction:  p.Fraction(),
		ElapsedMS: p.Elapsed.Milliseconds(),
		ETAMS:     p.ETA().Milliseconds(),
	})
}
