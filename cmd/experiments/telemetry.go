package main

import (
	"bytes"
	"fmt"

	"iroram"
	"iroram/internal/telemetry"
)

// telemetryServer wraps the shared snapshot server with the experiment
// progress record shape. Publication happens on the runner's serialized
// progress-callback path; the server itself holds only marshalled bytes.
type telemetryServer struct {
	*telemetry.Server
}

// progressSnapshot is the JSON document served at the telemetry address
// while a sweep runs.
type progressSnapshot struct {
	Figure    string  `json:"figure"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Fraction  float64 `json:"fraction"`
	ElapsedMS int64   `json:"elapsed_ms"`
	ETAMS     int64   `json:"eta_ms"`
}

func startTelemetry(addr string) (*telemetryServer, error) {
	s, err := telemetry.Start(addr)
	if err != nil {
		return nil, err
	}
	return &telemetryServer{Server: s}, nil
}

func (t *telemetryServer) publishProgress(name string, p iroram.Progress) {
	t.Publish(progressSnapshot{ //nolint:errcheck // progress snapshots are best-effort
		Figure:    name,
		Done:      p.Done,
		Total:     p.Total,
		Fraction:  p.Fraction(),
		ElapsedMS: p.Elapsed.Milliseconds(),
		ETAMS:     p.ETA().Milliseconds(),
	})
	// The Prometheus view of a sweep is the progress of the figure that
	// last reported — the same document /snapshot serves, as gauges.
	var b bytes.Buffer
	fmt.Fprintf(&b, "# TYPE exp_cells_done gauge\nexp_cells_done{figure=%q} %d\n", name, p.Done)
	fmt.Fprintf(&b, "# TYPE exp_cells_total gauge\nexp_cells_total{figure=%q} %d\n", name, p.Total)
	fmt.Fprintf(&b, "# TYPE exp_elapsed_seconds gauge\nexp_elapsed_seconds{figure=%q} %.3f\n",
		name, p.Elapsed.Seconds())
	t.PublishProm(b.Bytes())
}
