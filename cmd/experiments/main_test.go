package main

import (
	"strings"
	"testing"
)

func TestParseBenchmarksTrimsWhitespace(t *testing.T) {
	got, err := parseBenchmarks("gcc, mcf ,\tlbm")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gcc", "mcf", "lbm"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestParseBenchmarksAcceptsSyntheticNames(t *testing.T) {
	for _, name := range []string{"mix", "random"} {
		if _, err := parseBenchmarks(name); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
}

func TestParseBenchmarksRejectsUnknown(t *testing.T) {
	_, err := parseBenchmarks("gcc,nosuch")
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	for _, want := range []string{"nosuch", "valid names", "gcc", "mix"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestParseBenchmarksRejectsEmpties(t *testing.T) {
	for _, s := range []string{"gcc,,mcf", " ", "gcc,"} {
		if _, err := parseBenchmarks(s); err == nil {
			t.Errorf("%q accepted despite empty entry", s)
		}
	}
}
