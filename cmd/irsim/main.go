// Command irsim runs one (scheme, workload) simulation and prints a result
// summary: cycles, path-access breakdown, PLB and DRAM behaviour.
//
// Usage:
//
//	irsim -scheme IR-ORAM -bench mcf -requests 30000
//	irsim -scheme Baseline -bench mix -levels 25   # Table I geometry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iroram"
	"iroram/internal/block"
	"iroram/internal/prof"
)

// main defers to run so the pprof outputs flush on every exit path.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		scheme   = flag.String("scheme", "Baseline", "scheme: Baseline, Rho, IR-Alloc, IR-Stash, IR-DWB, IR-ORAM, LLC-D")
		bench    = flag.String("bench", "mix", `workload: a Table II benchmark, "mix", or "random"`)
		requests = flag.Int("requests", 30000, "trace records to simulate")
		levels   = flag.Int("levels", 0, "override ORAM tree levels (0 = scaled default, 25 = Table I)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		compare  = flag.Bool("compare", false, "run every scheme on the workload and print a comparison")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 2
	}
	defer stopProf()

	if *compare {
		return runComparison(*bench, *requests, *levels, *seed)
	}

	cfg := iroram.ScaledConfig()
	if *levels == 25 {
		cfg = iroram.PaperConfig()
	} else if *levels != 0 {
		cfg.ORAM.Levels = *levels
		cfg.ORAM.Z = nil // rebuilt by WithScheme
	}
	cfg.Seed = *seed

	var found bool
	for _, sch := range iroram.AllSchemes() {
		if strings.EqualFold(sch.Name, *scheme) {
			cfg = cfg.WithScheme(sch)
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "irsim: unknown scheme %q\n", *scheme)
		return 2
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 2
	}

	res, err := iroram.RunBenchmark(cfg, *bench, *requests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 1
	}

	fmt.Printf("scheme        %s\n", cfg.Scheme.Name)
	fmt.Printf("workload      %s (%d requests, %d instructions)\n",
		res.Name, res.Requests, res.Instructions)
	fmt.Printf("geometry      L=%d, top %d levels on-chip, %d blocks/path\n",
		cfg.ORAM.Levels, cfg.ORAM.TopLevels, cfg.ORAM.Z.BlocksPerPath(cfg.ORAM.TopLevels))
	fmt.Printf("cycles        %d (IPC %.3f)\n", res.Cycles, res.IPC())
	fmt.Printf("LLC           %.1f%% miss, %d read misses, %d write-backs (r/w MPKI %.2f/%.2f)\n",
		100*res.LLC.MissRate(), res.ReadMisses, res.DirtyWBs, res.ReadMPKI(), res.WriteMPKI())
	total := res.ORAM.Paths.Total()
	fmt.Printf("paths         %d total\n", total)
	for _, pt := range []block.PathType{block.PathData, block.PathPos1,
		block.PathPos2, block.PathDummy, block.PathEvict, block.PathDWB} {
		if n := res.ORAM.Paths.Paths[pt]; n > 0 {
			fmt.Printf("  %-11s %8d (%.1f%%)\n", pt, n, 100*res.ORAM.Paths.Fraction(pt))
		}
	}
	fmt.Printf("on-chip hits  stash %d, S-Stash %d, tree-top %d\n",
		res.ORAM.StashHits, res.ORAM.SStashHits, res.ORAM.TopHits)
	fmt.Printf("PLB           %d hits / %d misses\n", res.ORAM.PLBHits, res.ORAM.PLBMisses)
	fmt.Printf("DRAM          %d reads, %d writes, %.1f%% row hits\n",
		res.DRAM.Reads, res.DRAM.Writes, 100*res.DRAM.RowHitRate())
	if res.ORAM.DWBCompleted > 0 {
		fmt.Printf("IR-DWB        %d converted, %d completed, %d aborted\n",
			res.ORAM.DWBConverted, res.ORAM.DWBCompleted, res.ORAM.DWBAborted)
	}
	if res.ORAM.NonUniformIssues > 0 {
		fmt.Printf("WARNING       %d issue-gap violations (obliviousness audit)\n",
			res.ORAM.NonUniformIssues)
	}
	return 0
}

// runComparison is -compare: every scheme on one workload, one line each.
func runComparison(bench string, requests, levels int, seed uint64) int {
	fmt.Printf("%-10s %14s %9s %8s %8s %8s %8s\n",
		"scheme", "cycles", "speedup", "paths", "PTp", "dummies", "blk/acc")
	var baseCycles float64
	for _, sch := range iroram.AllSchemes() {
		cfg := iroram.ScaledConfig()
		if levels == 25 {
			cfg = iroram.PaperConfig()
		} else if levels != 0 {
			cfg.ORAM.Levels = levels
			cfg.ORAM.Z = nil
		}
		cfg.Seed = seed
		cfg = cfg.WithScheme(sch)
		res, err := iroram.RunBenchmark(cfg, bench, requests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsim: %s: %v\n", sch.Name, err)
			return 1
		}
		if baseCycles == 0 {
			baseCycles = float64(res.Cycles)
		}
		total := res.ORAM.Paths.Total()
		blkPerAcc := 0.0
		if total > 0 {
			blkPerAcc = float64(res.ORAM.Paths.BlocksRead+res.ORAM.Paths.BlocksWrit) / float64(total)
		}
		fmt.Printf("%-10s %14d %9.3f %8d %8d %8d %8.1f\n",
			sch.Name, res.Cycles, baseCycles/float64(res.Cycles), total,
			res.ORAM.PosMapPaths, res.ORAM.DummyPaths, blkPerAcc)
	}
	return 0
}
