// Command irsim runs one (scheme, workload) simulation and prints a result
// summary: cycles, path-access breakdown, PLB and DRAM behaviour.
//
// Usage:
//
//	irsim -scheme IR-ORAM -bench mcf -requests 30000
//	irsim -scheme Baseline -bench mix -levels 25   # Table I geometry
//	irsim -scheme IR-ORAM -bench mcf -emit jsonl -out artifacts/
//	irsim -bench lbm -telemetry :8080 -epochs 1000
//
// With -emit jsonl, the run additionally writes artifacts/irsim.jsonl: one
// record carrying the full metric dump (docs/METRICS.md schema), plus the
// epoch time series when -epochs is set. -telemetry serves the live metrics
// snapshot as JSON over HTTP (plus /healthz and a Prometheus text-format
// /metrics view), refreshed between simulation steps on the run's own
// goroutine.
//
// With -flight <file>, the run records cycle-domain spans (one in every
// -flight-sample path accesses) and writes them as a Chrome trace-event
// file — load it at https://ui.perfetto.dev or summarize it with
// cmd/flightstat. Under -compare each scheme becomes one trace process in
// the same file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iroram"
	"iroram/internal/block"
	"iroram/internal/prof"
	"iroram/internal/telemetry"
)

// main defers to run so the pprof outputs flush on every exit path.
func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		scheme   = flag.String("scheme", "Baseline", "scheme: Baseline, Rho, IR-Alloc, IR-Stash, IR-DWB, IR-ORAM, LLC-D")
		bench    = flag.String("bench", "mix", `workload: a Table II benchmark, "mix", or "random"`)
		requests = flag.Int("requests", 30000, "trace records to simulate")
		levels   = flag.Int("levels", 0, "override ORAM tree levels (0 = scaled default, 25 = Table I)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		compare   = flag.Bool("compare", false, "run every scheme on the workload and print a comparison")
		emitMode  = flag.String("emit", "", `artifact emission: "jsonl" writes irsim.jsonl under -out`)
		out       = flag.String("out", "", "artifact directory for -emit jsonl")
		telemAddr = flag.String("telemetry", "", "serve live JSON metric snapshots on this HTTP address (e.g. :8080)")
		epochs    = flag.Uint64("epochs", 0, "record an epoch snapshot every N issued paths (0 = off)")
		flightOut = flag.String("flight", "", "write a Chrome trace-event file of the run to this path")
		flightSample = flag.Uint64("flight-sample", 1,
			"with -flight: trace one in every N path accesses (1 = every access)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *flightOut != "" && *flightSample == 0 {
		fmt.Fprintln(os.Stderr, "irsim: -flight-sample must be >= 1")
		return 2
	}

	if *emitMode != "" && *emitMode != "jsonl" {
		fmt.Fprintf(os.Stderr, "irsim: unknown -emit mode %q (only \"jsonl\")\n", *emitMode)
		return 2
	}
	if *emitMode == "jsonl" && *out == "" {
		fmt.Fprintln(os.Stderr, "irsim: -emit jsonl requires -out <dir>")
		return 2
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 2
	}
	// A profile that failed to flush is worse than none: it looks like a
	// successful run but lies to pprof. Surface it and fail the command.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *compare {
		return runComparison(*bench, *requests, *levels, *seed, *emitMode, *out, *epochs,
			*flightSample, *flightOut)
	}

	cfg := iroram.ScaledConfig()
	if *levels == 25 {
		cfg = iroram.PaperConfig()
	} else if *levels != 0 {
		cfg.ORAM.Levels = *levels
		cfg.ORAM.Z = nil // rebuilt by WithScheme
	}
	cfg.Seed = *seed

	var found bool
	for _, sch := range iroram.AllSchemes() {
		if strings.EqualFold(sch.Name, *scheme) {
			cfg = cfg.WithScheme(sch)
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "irsim: unknown scheme %q\n", *scheme)
		return 2
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 2
	}

	sys, err := iroram.NewSystem(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 1
	}
	gen, err := iroram.NewTrace(*bench, cfg.ORAM.DataBlocks(), cfg.Seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
		return 1
	}
	sys.SetEpochInterval(*epochs)
	if *flightOut != "" {
		sys.AttachFlight(iroram.NewFlightRecorder(0, *flightSample))
	}

	// The telemetry callback runs between Step calls on this goroutine —
	// the one point where a registry snapshot is consistent — and the
	// server retains only marshalled bytes, so the System stays
	// single-goroutine.
	var observe func(consumed int)
	if *telemAddr != "" {
		tele, err := telemetry.Start(*telemAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsim: telemetry: %v\n", err)
			return 2
		}
		defer tele.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving snapshots on http://%s/\n", tele.Addr())
		every := *requests / 100
		if every == 0 {
			every = 1
		}
		descs := sys.Metrics().Descs()
		observe = func(consumed int) {
			snap := sys.Metrics().Snapshot()
			tele.Publish(struct { //nolint:errcheck // snapshots are best-effort
				Consumed int                     `json:"consumed"`
				Total    int                     `json:"total"`
				Metrics  *iroram.MetricsSnapshot `json:"metrics"`
			}{consumed, *requests, snap})
			tele.PublishProm(telemetry.PromText(descs, snap))
		}
		res := sys.RunObserved(gen, *requests, every, observe)
		if code := writeFlight(*flightOut, cfg.Scheme.Name+"/"+res.Name, res.Flight); code != 0 {
			return code
		}
		return report(cfg, res, *emitMode, *out, *seed)
	}

	res := sys.RunObserved(gen, *requests, 0, nil)
	if code := writeFlight(*flightOut, cfg.Scheme.Name+"/"+res.Name, res.Flight); code != 0 {
		return code
	}
	return report(cfg, res, *emitMode, *out, *seed)
}

// writeFlight exports one run's flight trace as a Chrome trace-event file.
// A no-op when tracing was off (empty path or nil trace).
func writeFlight(path, name string, tr *iroram.FlightTrace) int {
	if path == "" || tr == nil {
		return 0
	}
	return writeFlightProcs(path, []iroram.FlightProcess{{Name: name, Trace: tr}})
}

func writeFlightProcs(path string, procs []iroram.FlightProcess) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: flight: %v\n", err)
		return 1
	}
	err = iroram.WriteFlightTrace(f, procs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "irsim: flight %s: %v\n", path, err)
		return 1
	}
	var events, dropped uint64
	for _, p := range procs {
		events += uint64(len(p.Trace.Events))
		dropped += p.Trace.Dropped
	}
	fmt.Fprintf(os.Stderr, "[wrote flight trace %s: %d events, %d dropped]\n",
		path, events, dropped)
	return 0
}

// report prints the run summary and writes the JSONL artifact when asked.
func report(cfg iroram.Config, res iroram.Result, emitMode, out string, seed uint64) int {

	fmt.Printf("scheme        %s\n", cfg.Scheme.Name)
	fmt.Printf("workload      %s (%d requests, %d instructions)\n",
		res.Name, res.Requests, res.Instructions)
	fmt.Printf("geometry      L=%d, top %d levels on-chip, %d blocks/path\n",
		cfg.ORAM.Levels, cfg.ORAM.TopLevels, cfg.ORAM.Z.BlocksPerPath(cfg.ORAM.TopLevels))
	fmt.Printf("cycles        %d (IPC %.3f)\n", res.Cycles, res.IPC())
	fmt.Printf("LLC           %.1f%% miss, %d read misses, %d write-backs (r/w MPKI %.2f/%.2f)\n",
		100*res.LLC.MissRate(), res.ReadMisses, res.DirtyWBs, res.ReadMPKI(), res.WriteMPKI())
	total := res.ORAM.Paths.Total()
	fmt.Printf("paths         %d total\n", total)
	for _, pt := range []block.PathType{block.PathData, block.PathPos1,
		block.PathPos2, block.PathDummy, block.PathEvict, block.PathDWB} {
		if n := res.ORAM.Paths.Paths[pt]; n > 0 {
			fmt.Printf("  %-11s %8d (%.1f%%)\n", pt, n, 100*res.ORAM.Paths.Fraction(pt))
		}
	}
	fmt.Printf("on-chip hits  stash %d, S-Stash %d, tree-top %d\n",
		res.ORAM.StashHits, res.ORAM.SStashHits, res.ORAM.TopHits)
	fmt.Printf("PLB           %d hits / %d misses\n", res.ORAM.PLBHits, res.ORAM.PLBMisses)
	fmt.Printf("DRAM          %d reads, %d writes, %.1f%% row hits\n",
		res.DRAM.Reads, res.DRAM.Writes, 100*res.DRAM.RowHitRate())
	if res.ORAM.DWBCompleted > 0 {
		fmt.Printf("IR-DWB        %d converted, %d completed, %d aborted\n",
			res.ORAM.DWBConverted, res.ORAM.DWBCompleted, res.ORAM.DWBAborted)
	}
	if res.ORAM.NonUniformIssues > 0 {
		fmt.Printf("WARNING       %d issue-gap violations (obliviousness audit)\n",
			res.ORAM.NonUniformIssues)
	}
	if emitMode == "jsonl" {
		log := &iroram.ArtifactLog{}
		log.Add(iroram.NewArtifactRecord("irsim", cfg.Scheme.Name, res.Name, "", seed, res))
		if err := log.WriteDir(out); err != nil {
			fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[wrote artifact record under %s]\n", out)
	}
	return 0
}

// runComparison is -compare: every scheme on one workload, one line each.
// With -emit jsonl it also writes one artifact record per scheme; with
// -flight, one trace file where each scheme is a process.
func runComparison(bench string, requests, levels int, seed uint64, emitMode, out string,
	epochs, flightSample uint64, flightOut string) int {
	fmt.Printf("%-10s %14s %9s %8s %8s %8s %8s\n",
		"scheme", "cycles", "speedup", "paths", "PTp", "dummies", "blk/acc")
	var baseCycles float64
	artifacts := &iroram.ArtifactLog{}
	var procs []iroram.FlightProcess
	for _, sch := range iroram.AllSchemes() {
		cfg := iroram.ScaledConfig()
		if levels == 25 {
			cfg = iroram.PaperConfig()
		} else if levels != 0 {
			cfg.ORAM.Levels = levels
			cfg.ORAM.Z = nil
		}
		cfg.Seed = seed
		cfg = cfg.WithScheme(sch)
		sys, err := iroram.NewSystem(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsim: %s: %v\n", sch.Name, err)
			return 1
		}
		gen, err := iroram.NewTrace(bench, cfg.ORAM.DataBlocks(), cfg.Seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsim: %s: %v\n", sch.Name, err)
			return 1
		}
		sys.SetEpochInterval(epochs)
		if flightOut != "" {
			sys.AttachFlight(iroram.NewFlightRecorder(0, flightSample))
		}
		res := sys.RunObserved(gen, requests, 0, nil)
		if emitMode == "jsonl" {
			artifacts.Add(iroram.NewArtifactRecord("irsim", sch.Name, res.Name, "", seed, res))
		}
		if flightOut != "" && res.Flight != nil {
			procs = append(procs, iroram.FlightProcess{
				Name: sch.Name + "/" + res.Name, Trace: res.Flight})
		}
		if baseCycles == 0 {
			baseCycles = float64(res.Cycles)
		}
		total := res.ORAM.Paths.Total()
		blkPerAcc := 0.0
		if total > 0 {
			blkPerAcc = float64(res.ORAM.Paths.BlocksRead+res.ORAM.Paths.BlocksWrit) / float64(total)
		}
		fmt.Printf("%-10s %14d %9.3f %8d %8d %8d %8.1f\n",
			sch.Name, res.Cycles, baseCycles/float64(res.Cycles), total,
			res.ORAM.PosMapPaths, res.ORAM.DummyPaths, blkPerAcc)
	}
	if emitMode == "jsonl" {
		if err := artifacts.WriteDir(out); err != nil {
			fmt.Fprintf(os.Stderr, "irsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[wrote %d artifact records under %s]\n", artifacts.Len(), out)
	}
	if flightOut != "" && len(procs) > 0 {
		if code := writeFlightProcs(flightOut, procs); code != 0 {
			return code
		}
	}
	return 0
}
