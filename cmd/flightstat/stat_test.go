package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"iroram/internal/flight"
)

// exportEvents records a known event set and round-trips it through the
// exporter, returning the parsed trace-event stream.
func exportEvents(t *testing.T) []event {
	t.Helper()
	rec := flight.New(64, 1)
	rec.SampleAccess()
	rec.Record(flight.Event{Start: 0, End: 200, Arg: 42, Aux: 50, Kind: flight.KindRequest})
	rec.Record(flight.Event{Start: 0, End: 100, Kind: flight.KindPhaseRead, Sub: 0})
	rec.Record(flight.Event{Start: 100, End: 160, Kind: flight.KindPhaseWrite, Sub: 0})
	rec.Record(flight.Event{Start: 100, End: 130, Kind: flight.KindPhaseDecrypt, Sub: 0})
	rec.Record(flight.Event{Start: 0, End: 130, Arg: 7, Kind: flight.KindAccess, Sub: 0})
	rec.Record(flight.Event{Start: 5, End: 60, Arg: 3, Aux: 4, Kind: flight.KindDramRun, Sub: 1, Ch: 0, Bank: 2})
	rec.Record(flight.Event{Start: 60, End: 90, Arg: 4, Aux: 2, Kind: flight.KindDramRun, Sub: 0, Ch: 1})
	rec.Record(flight.Event{Start: 90, End: 95, Aux: 6, Kind: flight.KindDramDrain, Ch: 0})
	rec.Record(flight.Event{Start: 130, Arg: 9, Aux: 3, Kind: flight.KindOccupancy})

	var buf bytes.Buffer
	if err := flight.Write(&buf, []flight.Process{{Name: "t/x", Trace: rec.Snapshot()}}); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("re-parse export: %v", err)
	}
	return doc.TraceEvents
}

// TestSummarizeReconciles checks the analyzer's sums against the known
// event set: the breakdown must reproduce the recorded span durations
// exactly — the same property the acceptance check asserts against the
// simulator's phase cycle counters.
func TestSummarizeReconciles(t *testing.T) {
	procs, err := summarize(exportEvents(t))
	if err != nil {
		t.Fatalf("summarize: %v", err)
	}
	if len(procs) != 1 {
		t.Fatalf("processes = %d, want 1", len(procs))
	}
	p := procs[0]
	if p.name != "t/x" {
		t.Errorf("process name = %q, want t/x", p.name)
	}
	ps := p.paths["ptd"]
	if ps == nil {
		t.Fatal("no ptd path stats")
	}
	if ps.count != 1 || ps.total != 130 || ps.read != 100 || ps.decrypt != 30 || ps.write != 60 {
		t.Errorf("ptd = %+v, want count 1 total 130 read 100 decrypt 30 write 60", *ps)
	}
	if p.reqs.count != 1 || p.reqs.cycles != 200 || p.reqs.wait != 50 {
		t.Errorf("requests = %+v, want count 1 cycles 200 wait 50", p.reqs)
	}
	if ch := p.chans[0]; ch == nil || ch.hits != 4 || ch.misses != 0 {
		t.Errorf("ch0 = %+v, want 4 hits 0 misses", p.chans[0])
	}
	if ch := p.chans[1]; ch == nil || ch.hits != 0 || ch.misses != 2 {
		t.Errorf("ch1 = %+v, want 0 hits 2 misses", p.chans[1])
	}
	if p.occ.samples != 1 || p.occ.stashMax != 9 || p.occ.writeQMax != 3 {
		t.Errorf("occupancy = %+v, want 1 sample stashMax 9 writeQMax 3", p.occ)
	}
}

// TestPrintDeterministic renders the summary twice and checks the bytes
// match and carry the headline numbers.
func TestPrintDeterministic(t *testing.T) {
	procs, err := summarize(exportEvents(t))
	if err != nil {
		t.Fatalf("summarize: %v", err)
	}
	render := func() string {
		var buf bytes.Buffer
		for _, p := range procs {
			p.print(&buf, 4)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("print output differs between renders")
	}
	for _, want := range []string{"t/x", "ptd", "TOTAL", "queue wait 50 cycles", "row-hit rate"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q:\n%s", want, a)
		}
	}
}

// TestSummarizeRejectsUnknownPhase guards the parser against documents the
// exporter cannot have produced.
func TestSummarizeRejectsUnknownPhase(t *testing.T) {
	if _, err := summarize([]event{{Ph: "B", Pid: 1}}); err == nil {
		t.Fatal("summarize accepted a begin-phase event")
	}
}
