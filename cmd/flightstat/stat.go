package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The thread-id vocabulary of the exporter (internal/flight/export.go):
// one trace process per simulated cell, with fixed thread roles.
const (
	tidRequest   = 1
	tidAccess    = 2
	tidRead      = 3
	tidDecrypt   = 4
	tidWrite     = 5
	tidOccupancy = 6
	tidDramBase  = 16
)

// pathTypeSlugs is the exporter's span-name vocabulary on the access and
// phase threads, in block.PathType order.
var pathTypeSlugs = []string{"ptd", "ptp1", "ptp2", "ptm", "evict", "dwb"}

// event is one Chrome trace-event JSON object, restricted to the fields the
// simulator emits.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// traceDoc is the document wrapper.
type traceDoc struct {
	TraceEvents []event `json:"traceEvents"`
}

// pathStat accumulates one path type's spans across the four span threads.
type pathStat struct {
	count                       uint64
	total, read, decrypt, write uint64
	readN, decryptN, writeN     uint64
}

// chanStat accumulates one DRAM channel's run service, bucketed over the
// trace's cycle range for the row-hit timeline. Blocks are weighted by run
// length, so the rates match the DRAM model's per-access accounting.
type chanStat struct {
	hits, misses uint64 // blocks served from an open/closed row
	runs         []event
}

// procStat is the full summary of one trace process (one simulated cell).
type procStat struct {
	pid   int
	name  string
	meta  map[string]any // recorded / dropped / sampled_accesses / sample_every
	paths map[string]*pathStat
	chans map[int]*chanStat
	reqs  struct{ count, cycles, wait uint64 }
	occ   struct {
		samples              uint64
		stashSum, stashMax   uint64
		writeQSum, writeQMax uint64
	}
	minTS, maxTS uint64
	spanEvents   uint64
}

// parseTrace reads one Chrome trace-event file and returns its per-process
// summaries in first-appearance (= emission) order.
func parseTrace(path string) ([]*procStat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("not a trace-event document: %w", err)
	}
	return summarize(doc.TraceEvents)
}

// summarize folds the event stream into per-process statistics.
func summarize(events []event) ([]*procStat, error) {
	byPid := map[int]*procStat{}
	var order []*procStat
	get := func(pid int) *procStat {
		p, ok := byPid[pid]
		if !ok {
			p = &procStat{pid: pid, paths: map[string]*pathStat{},
				chans: map[int]*chanStat{}, minTS: ^uint64(0)}
			byPid[pid] = p
			order = append(order, p)
		}
		return p
	}
	for _, e := range events {
		p := get(e.Pid)
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				if n, ok := e.Args["name"].(string); ok {
					p.name = n
				}
				p.meta = e.Args
			}
		case "X":
			p.span(e)
		case "C":
			p.counter(e)
		default:
			return nil, fmt.Errorf("unsupported event phase %q", e.Ph)
		}
	}
	return order, nil
}

// span folds one complete ("X") event.
func (p *procStat) span(e event) {
	p.spanEvents++
	if e.TS < p.minTS {
		p.minTS = e.TS
	}
	if end := e.TS + e.Dur; end > p.maxTS {
		p.maxTS = end
	}
	pathOf := func() *pathStat {
		ps, ok := p.paths[e.Name]
		if !ok {
			ps = &pathStat{}
			p.paths[e.Name] = ps
		}
		return ps
	}
	switch e.Tid {
	case tidRequest:
		p.reqs.count++
		p.reqs.cycles += e.Dur
		p.reqs.wait += argU64(e.Args, "wait")
	case tidAccess:
		ps := pathOf()
		ps.count++
		ps.total += e.Dur
	case tidRead:
		ps := pathOf()
		ps.read += e.Dur
		ps.readN++
	case tidDecrypt:
		ps := pathOf()
		ps.decrypt += e.Dur
		ps.decryptN++
	case tidWrite:
		ps := pathOf()
		ps.write += e.Dur
		ps.writeN++
	default:
		if e.Tid >= tidDramBase && e.Name != "drain" {
			ch, ok := p.chans[e.Tid-tidDramBase]
			if !ok {
				ch = &chanStat{}
				p.chans[e.Tid-tidDramBase] = ch
			}
			n := argU64(e.Args, "n")
			if e.Name == "hit" {
				ch.hits += n
			} else {
				ch.misses += n
			}
			ch.runs = append(ch.runs, e)
		}
	}
}

// counter folds one counter ("C") sample — the stash / write-queue
// occupancy series.
func (p *procStat) counter(e event) {
	if e.Tid != tidOccupancy {
		return
	}
	stash, writeQ := argU64(e.Args, "stash"), argU64(e.Args, "writeq")
	p.occ.samples++
	p.occ.stashSum += stash
	p.occ.writeQSum += writeQ
	if stash > p.occ.stashMax {
		p.occ.stashMax = stash
	}
	if writeQ > p.occ.writeQMax {
		p.occ.writeQMax = writeQ
	}
}

func argU64(args map[string]any, key string) uint64 {
	if f, ok := args[key].(float64); ok && f >= 0 {
		return uint64(f)
	}
	return 0
}

// print renders the process summary: the per-path-type critical-path table,
// the demand-queue wait, occupancy extremes, and the per-channel row-hit
// timeline over `buckets` equal slices of the traced cycle range.
func (p *procStat) print(w io.Writer, buckets int) {
	fmt.Fprintf(w, "\n== %s (pid %d)\n", p.name, p.pid)
	if p.meta != nil {
		fmt.Fprintf(w, "   recorded %d events, dropped %d, sampled %d accesses (1 in %d)\n",
			argU64(p.meta, "recorded"), argU64(p.meta, "dropped"),
			argU64(p.meta, "sampled_accesses"), argU64(p.meta, "sample_every"))
	}
	if p.spanEvents == 0 {
		fmt.Fprintln(w, "   (no span events)")
		return
	}

	fmt.Fprintf(w, "   %-6s %8s %12s %10s %12s %12s %12s\n",
		"path", "count", "cycles", "avg", "read", "decrypt", "writeback")
	var tot pathStat
	for _, slug := range pathTypeSlugs {
		ps, ok := p.paths[slug]
		if !ok {
			continue
		}
		avg := uint64(0)
		if ps.count > 0 {
			avg = ps.total / ps.count
		}
		fmt.Fprintf(w, "   %-6s %8d %12d %10d %12d %12d %12d\n",
			slug, ps.count, ps.total, avg, ps.read, ps.decrypt, ps.write)
		tot.count += ps.count
		tot.total += ps.total
		tot.read += ps.read
		tot.decrypt += ps.decrypt
		tot.write += ps.write
	}
	if tot.count > 0 {
		fmt.Fprintf(w, "   %-6s %8d %12d %10d %12d %12d %12d\n",
			"TOTAL", tot.count, tot.total, tot.total/tot.count, tot.read, tot.decrypt, tot.write)
	}
	if p.reqs.count > 0 {
		avg, waitPct := p.reqs.cycles/p.reqs.count, 0.0
		if p.reqs.cycles > 0 {
			waitPct = 100 * float64(p.reqs.wait) / float64(p.reqs.cycles)
		}
		fmt.Fprintf(w, "   requests: %d spans, %d cycles (avg %d), queue wait %d cycles (%.1f%%)\n",
			p.reqs.count, p.reqs.cycles, avg, p.reqs.wait, waitPct)
	}
	if p.occ.samples > 0 {
		fmt.Fprintf(w, "   occupancy: stash avg %.1f max %d; write queue avg %.1f max %d (%d samples)\n",
			float64(p.occ.stashSum)/float64(p.occ.samples), p.occ.stashMax,
			float64(p.occ.writeQSum)/float64(p.occ.samples), p.occ.writeQMax, p.occ.samples)
	}
	p.printTimeline(w, buckets)
}

// printTimeline renders per-channel row-hit rates over equal time buckets.
// A run is attributed to the bucket holding its start timestamp; "--"
// marks buckets with no traffic on the channel.
func (p *procStat) printTimeline(w io.Writer, buckets int) {
	if len(p.chans) == 0 || p.maxTS <= p.minTS {
		return
	}
	span := p.maxTS - p.minTS
	width := (span + uint64(buckets) - 1) / uint64(buckets)
	if width == 0 {
		width = 1
	}
	chs := make([]int, 0, len(p.chans))
	for c := range p.chans {
		chs = append(chs, c)
	}
	sort.Ints(chs)
	fmt.Fprintf(w, "   row-hit rate (%d buckets of %d cycles):\n", buckets, width)
	for _, c := range chs {
		st := p.chans[c]
		hits := make([]uint64, buckets)
		total := make([]uint64, buckets)
		for _, e := range st.runs {
			b := int((e.TS - p.minTS) / width)
			if b >= buckets {
				b = buckets - 1
			}
			n := argU64(e.Args, "n")
			total[b] += n
			if e.Name == "hit" {
				hits[b] += n
			}
		}
		line := fmt.Sprintf("   ch%-3d", c)
		for b := 0; b < buckets; b++ {
			if total[b] == 0 {
				line += "   -- "
			} else {
				line += fmt.Sprintf(" %.3f", float64(hits[b])/float64(total[b]))
			}
		}
		rate := 0.0
		if st.hits+st.misses > 0 {
			rate = float64(st.hits) / float64(st.hits+st.misses)
		}
		fmt.Fprintf(w, "%s  (overall %.3f over %d blocks)\n", line, rate, st.hits+st.misses)
	}
}
