// Command flightstat summarizes flight-recorder traces written by
// cmd/experiments -flight or cmd/irsim -flight: per-path-type critical-path
// breakdowns (DRAM read vs decrypt vs writeback cycles, plus demand queue
// wait) and per-channel DRAM row-hit-rate timelines.
//
// Usage:
//
//	flightstat out/fig10.trace.json
//	flightstat -buckets 20 irsim.trace.json
//
// The input is the Chrome trace-event JSON the simulator exports (see
// docs/OBSERVABILITY.md for the event vocabulary); every process in the
// file — one per traced simulation cell — is summarized independently, in
// file order. Output is a pure function of the trace bytes, so identical
// traces summarize identically.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	buckets := flag.Int("buckets", 10, "time buckets in the per-channel row-hit-rate timeline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: flightstat [-buckets N] <trace.json> [more traces]")
		os.Exit(2)
	}
	if *buckets < 1 {
		fmt.Fprintln(os.Stderr, "flightstat: -buckets must be >= 1")
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		procs, err := parseTrace(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flightstat: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s:\n", path)
		for _, p := range procs {
			p.print(os.Stdout, *buckets)
		}
	}
	os.Exit(code)
}
