// Command zsearch runs the greedy IR-Alloc bucket-size search of Section
// IV-B: shrink middle-level Z values on random traces while the space loss
// stays under 1% and background evictions grow at most 15%.
//
// Usage:
//
//	zsearch -requests 20000
//	zsearch -levels 25 -requests 5000   # Table I geometry (slow)
//	zsearch -jobs 8                     # parallel candidate evaluation
//
// The greedy loop is sequential, but every candidate evaluation within one
// iteration is an independent simulation; -jobs fans them across workers
// with the chosen profile identical for every value. Ctrl-C cancels at the
// next candidate boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"iroram"
	"iroram/internal/config"
)

func main() {
	var (
		requests = flag.Int("requests", 20000, "trace records per candidate evaluation")
		levels   = flag.Int("levels", 0, "tree levels (0 = scaled default)")
		seed     = flag.Uint64("seed", 1, "evaluation seed")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"parallel candidate evaluations (1 = sequential; same result for every value)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := iroram.DefaultExperiments()
	opts.Requests = *requests
	opts.Seed = *seed
	opts.Jobs = *jobs
	opts.Context = ctx
	if *levels != 0 {
		opts.Base.ORAM.Levels = *levels
		opts.Base.ORAM.Z = config.Uniform(*levels, 4)
		opts.Base.ORAM.UserBlocks = 0
	}

	prof, desc, err := iroram.SearchZProfile(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zsearch: %v\n", err)
		os.Exit(1)
	}
	o := opts.Base.ORAM
	base := config.Uniform(o.Levels, 4)
	fmt.Printf("geometry      L=%d, top %d levels on-chip\n", o.Levels, o.TopLevels)
	fmt.Printf("profile       %s\n", desc)
	fmt.Printf("blocks/path   %d (baseline %d)\n",
		prof.BlocksPerPath(o.TopLevels), base.BlocksPerPath(o.TopLevels))
	fmt.Printf("space loss    %.3f%%\n", 100*prof.SpaceReductionVs(base, o.TopLevels))
}
