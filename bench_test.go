package iroram

// The benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating it at reduced scale and reporting its headline metric via
// b.ReportMetric), plus microbenchmarks of the core primitives. Full-scale
// regeneration is cmd/experiments; EXPERIMENTS.md records the
// paper-vs-measured values at the default scale.

import (
	"bytes"
	"fmt"

	"testing"

	"iroram/internal/block"
	"iroram/internal/cache"
	"iroram/internal/config"
	"iroram/internal/core"
	"iroram/internal/dram"
	"iroram/internal/rng"
	"iroram/internal/stash"
	"iroram/internal/trace"
	"iroram/internal/tree"
)

// benchOpts is the reduced scale every figure benchmark runs at.
func benchOpts() ExperimentOptions {
	opts := QuickExperiments()
	opts.Requests = 1500
	opts.Benchmarks = []string{"gcc", "mcf", "lbm"}
	return opts
}

func reportTable(b *testing.B, tab *Table, row, series, metric string) {
	b.Helper()
	if v, ok := tab.Get(row, series); ok {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkTable2MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("table2", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "mcf", "read MPKI (sim)", "mcf-readMPKI")
	}
}

func BenchmarkFig02PathTypeDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig2", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "avg", "PTd", "PTd-share")
		reportTable(b, tab, "avg", "PTm", "PTm-share")
	}
}

func BenchmarkFig03Utilization(b *testing.B) {
	opts := benchOpts()
	opts.Requests = 3000
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig3", opts)
		if err != nil {
			b.Fatal(err)
		}
		levels := opts.Base.ORAM.Levels
		final := tab.Series[len(tab.Series)-1]
		b.ReportMetric(final.Values[levels-1], "leaf-util")
		b.ReportMetric(final.Values[levels-4], "mid-util")
	}
}

func BenchmarkFig04UtilizationPerBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Experiment("fig4", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05Migration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Experiment("fig5", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06TreeTopReuse(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig6", opts)
		if err != nil {
			b.Fatal(err)
		}
		top := opts.Base.ORAM.TopLevels
		reportTable(b, tab, tab.Rows[top-1], "cumulative", "top-hit-share")
	}
}

func BenchmarkFig07BlocksPerPath(b *testing.B) {
	opts := DefaultExperiments()
	opts.Base = PaperConfig() // pure arithmetic, full scale is free
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig7", opts)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "IR-Alloc (IR-ORAM profile)", "blocks/path", "PL")
	}
}

func BenchmarkFig10Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig10", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "gmean", "IR-ORAM", "iroram-speedup")
		reportTable(b, tab, "gmean", "IR-Alloc", "iralloc-speedup")
	}
}

// BenchmarkFig10ByJobs measures the parallel experiment engine: the same
// Fig 10 sweep fanned across 1, 2 and 4 workers. On a multicore host the
// wall-clock per op drops roughly linearly until the core count; the tables
// are byte-identical at every width (asserted by TestParallelDeterminism).
func BenchmarkFig10ByJobs(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			opts := benchOpts()
			opts.Jobs = jobs
			for i := 0; i < b.N; i++ {
				if _, err := Experiment("fig10", opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig11LLCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig11", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "gmean", "IR-Stash+IR-Alloc vs LLC-D", "combo-speedup")
	}
}

func BenchmarkFig12AllocConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig12", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "mean", "IR-Alloc4", "alloc4-normtime")
	}
}

func BenchmarkFig13AllocUtilization(b *testing.B) {
	opts := benchOpts()
	opts.Requests = 3000
	for i := 0; i < b.N; i++ {
		if _, err := Experiment("fig13", opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14PosMapReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig14", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "mean", "normalized PosMap accesses", "posmap-ratio")
	}
}

func BenchmarkFig15DWBConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig15", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, "avg", "dummy (IR-DWB)", "dummy-share")
		reportTable(b, tab, "avg", "converted (IR-DWB)", "converted-share")
	}
}

func BenchmarkFig16Scalability(b *testing.B) {
	opts := benchOpts()
	opts.Requests = 1000
	for i := 0; i < b.N; i++ {
		tab, err := Experiment("fig16", opts)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tab, tab.Rows[1], "speedup", "alloc-speedup")
	}
}

func BenchmarkAblationNoTimingProtection(b *testing.B) {
	opts := benchOpts()
	opts.Requests = 1000
	for i := 0; i < b.N; i++ {
		if _, err := Experiment("notp", opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks of the core primitives ---

// BenchmarkPathAccess measures end-to-end demand accesses against a cold
// PLB (up to three path accesses each) on the tiny geometry.
func BenchmarkPathAccess(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	mem := dram.New(cfg.DRAM)
	c, err := core.NewController(cfg, mem, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	is := core.NewIssuer(c, nil)
	r := rng.New(2)
	nd := cfg.ORAM.DataBlocks()
	// Warm up out of the timed (and alloc-counted) region so scratch buffers
	// reach steady-state capacity; make check gates on allocs/op == 0 here.
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = is.ReadBlock(now, block.ID(r.Uint64n(nd)))
	}
}

// BenchmarkEvict measures the single-pass write phase (path read into the
// stash + deepest-first eviction) without DRAM timing — the structures the
// PR 4 open-addressed stash index serves. Body in internal/core so
// cmd/benchjson snapshots the same code.
func BenchmarkEvict(b *testing.B) { core.EvictBenchmark(b) }

// BenchmarkTreeWalk measures one path round-trip over the bitmap-indexed
// tree alone: the occupancy-word walk removing every block on a path, then
// exact free-mask refills. Body in internal/tree so cmd/benchjson snapshots
// the same code.
func BenchmarkTreeWalk(b *testing.B) { tree.WalkBenchmark(b) }

// BenchmarkTopCacheFind measures the tree-top lookup mix (hit Find, miss
// Find, Remove+Fill churn) through the lazy address index. Body in
// internal/stash so cmd/benchjson snapshots the same code.
func BenchmarkTopCacheFind(b *testing.B) { stash.TopCacheFindBenchmark(b) }

// BenchmarkLLCAccess measures one LLC access-or-insert with LRU tracking
// enabled (the IR-DWB configuration: mask set indexing + summary refresh).
func BenchmarkLLCAccess(b *testing.B) { cache.AccessBenchmark(b) }

// BenchmarkDWBScan measures the Ptr-register candidate search with one
// dirty-LRU set among 1024 — the sweep the summary bitmaps collapse to a
// word-wise scan.
func BenchmarkDWBScan(b *testing.B) { cache.ScanBenchmark(b) }

// BenchmarkControllerInit measures tree construction + initial placement.
func BenchmarkControllerInit(b *testing.B) {
	cfg := config.Tiny().WithScheme(config.Baseline())
	for i := 0; i < b.N; i++ {
		mem := dram.New(cfg.DRAM)
		if _, err := core.NewController(cfg, mem, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDRAMBatch measures one path-sized read batch.
func BenchmarkDRAMBatch(b *testing.B) {
	cfg := config.Scaled().DRAM
	m := dram.New(cfg)
	accs := make([]dram.Access, 44)
	for i := range accs {
		accs[i] = dram.Access{Addr: uint64(i * 37)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.ServiceBatch(now, accs)
	}
}

// BenchmarkTraceGeneration measures synthetic record production.
func BenchmarkTraceGeneration(b *testing.B) {
	g := trace.MustBenchmark("xz", 1<<22, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("exhausted")
		}
	}
}

// BenchmarkObliviousStoreAccess measures the functional Path ORAM with real
// crypto: one sealed path read+write per operation.
func BenchmarkObliviousStoreAccess(b *testing.B) {
	store, err := NewObliviousStore(ObliviousStoreConfig{
		Blocks: 4096, BlockSize: 64, Key: bytes.Repeat([]byte{1}, 32), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("benchmark-payload")
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Write(r.Uint64n(4096), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemesEndToEnd runs each scheme on a short mcf slice — the
// numbers mirror Fig 10's per-scheme cost at micro scale.
func BenchmarkSchemesEndToEnd(b *testing.B) {
	for _, sch := range AllSchemes() {
		b.Run(sch.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunBenchmark(TinyConfig().WithScheme(sch), "mcf", 1000)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Cycles), "sim-cycles")
				}
			}
		})
	}
}
