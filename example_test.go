package iroram_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"

	"iroram"
)

// Running a workload under two schemes and comparing — the library's core
// loop. (Tiny geometry so the example runs in milliseconds.)
func Example_compareSchemes() {
	base, err := iroram.RunBenchmark(iroram.TinyConfig().WithScheme(iroram.Baseline()), "xz", 2000)
	if err != nil {
		log.Fatal(err)
	}
	ir, err := iroram.RunBenchmark(iroram.TinyConfig().WithScheme(iroram.IROram()), "xz", 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("IR-ORAM is faster:", ir.Cycles < base.Cycles)
	// Output: IR-ORAM is faster: true
}

// The functional oblivious store: encrypted, authenticated, oblivious.
func ExampleNewObliviousStore() {
	store, err := iroram.NewObliviousStore(iroram.ObliviousStoreConfig{
		Blocks:    256,
		BlockSize: 64,
		Key:       bytes.Repeat([]byte{7}, 32),
		Seed:      1,
		Integrity: true, // Merkle tree: replay of stale memory is detected
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Write(42, []byte("attack at dawn")); err != nil {
		log.Fatal(err)
	}
	plain, err := store.Read(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", bytes.TrimRight(plain, "\x00"))
	// Output: attack at dawn
}

// Freecursive-style recursion: the position map itself lives in a second,
// 16x-smaller Path ORAM, so client state is tiny.
func ExampleNewRecursiveObliviousStore() {
	store, err := iroram.NewRecursiveObliviousStore(iroram.ObliviousStoreConfig{
		Blocks:    512,
		BlockSize: 64,
		Key:       bytes.Repeat([]byte{9}, 32),
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Write(3, []byte("hello")); err != nil {
		log.Fatal(err)
	}
	v, err := store.Read(3)
	if err != nil {
		log.Fatal(err)
	}
	data, pm := store.Accesses()
	fmt.Printf("%s (data paths %v, posmap paths %v)\n",
		bytes.TrimRight(v, "\x00"), data >= 2, pm >= 2)
	// Output: hello (data paths true, posmap paths true)
}

// Regenerating one of the paper's figures programmatically.
func ExampleExperiment() {
	opts := iroram.QuickExperiments()
	opts.Base = iroram.PaperConfig() // Fig 7 is pure arithmetic: free at L=25
	tab, err := iroram.Experiment("fig7", opts)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := tab.Get("IR-Alloc (IR-ORAM profile)", "blocks/path")
	fmt.Println("blocks per path under IR-Alloc:", v)
	// Output: blocks per path under IR-Alloc: 43
}

// Emitting a machine-readable JSONL artifact for one run — the same record
// format cmd/experiments and cmd/irsim write with -emit jsonl (schema in
// docs/METRICS.md).
func ExampleArtifactLog() {
	res, err := iroram.RunBenchmark(iroram.TinyConfig().WithScheme(iroram.IROram()), "mcf", 2000)
	if err != nil {
		log.Fatal(err)
	}
	artifacts := &iroram.ArtifactLog{}
	artifacts.Add(iroram.NewArtifactRecord("demo", "IR-ORAM", "mcf", "", 1, res))

	var buf bytes.Buffer
	if err := artifacts.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	var rec iroram.ArtifactRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema:", rec.Schema)
	fmt.Println("cell:", rec.Figure, rec.Scheme, rec.Benchmark)
	fmt.Println("counts cycles:", rec.Metrics.Counters["sim_cycles"] == rec.Cycles)
	fmt.Println("tracks path types:", rec.Metrics.Counters["oram_paths_ptd"] > 0)
	// Output:
	// schema: 2
	// cell: demo IR-ORAM mcf
	// counts cycles: true
	// tracks path types: true
}
