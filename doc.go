// Package iroram is a from-scratch reproduction of IR-ORAM ("IR-ORAM: Path
// Access Type Based Memory Intensity Reduction for Path-ORAM", HPCA 2022):
// a Path ORAM controller simulator implementing the paper's three
// path-type-specific optimizations plus the designs it compares against,
// and a functional oblivious block store usable as a real library.
//
// # The simulator
//
// A System wires a trace-driven core, an LLC, the ORAM controller (with
// Freecursive recursion, a tree-top store, background eviction and
// timing-channel protection) and a DRAM timing model:
//
//	cfg := iroram.ScaledConfig().WithScheme(iroram.IROram())
//	sys, err := iroram.NewSystem(cfg)
//	res := sys.Run(iroram.BenchmarkTrace("mcf", cfg.ORAM.DataBlocks(), 1), 30000)
//	fmt.Println(res.Cycles, res.ORAM.Paths)
//
// Schemes: Baseline (Freecursive + 10-level dedicated tree-top cache +
// subtree layout + background eviction), Rho (ρ, Nagarajan et al.), LLCD
// (delayed block remapping), and the paper's IRAlloc, IRStash, IRDWB and
// the integrated IROram.
//
// # The experiments
//
// Every table and figure of the paper regenerates through the Experiment
// helpers (or the cmd/experiments binary); see EXPERIMENTS.md for the
// paper-vs-measured record. Sweeps decompose into independent
// (scheme, benchmark) cells that fan across ExperimentOptions.Jobs workers
// — one single-goroutine System per worker — with results collected by cell
// index and all randomness derived per cell, so a sweep's tables are
// byte-identical for every worker count (Jobs: 1 reproduces the sequential
// loops exactly):
//
//	opts := iroram.DefaultExperiments()
//	opts.Jobs = 8                       // or go run ./cmd/experiments -jobs 8
//	opts.Progress = func(p iroram.Progress) { fmt.Println(p.Done, p.Total) }
//	tab, err := iroram.Experiment("fig10", opts)
//
// # Observability
//
// Every run snapshots a registry of named instruments — per-path-type
// counters and latency histograms, phase cycle accounting, cache and DRAM
// counters — into Result.Metrics; MetricDescriptors lists the catalogue,
// and docs/METRICS.md is the schema reference (validated against the code
// by `make docscheck`). ArtifactLog and NewArtifactRecord turn results into
// schema-versioned JSONL artifacts, the same format cmd/experiments and
// cmd/irsim write with -emit jsonl; artifact bytes are deterministic and
// independent of the worker count, like the tables. Instrument updates are
// allocation-free on the simulator's access path, and epoch time series
// (ExperimentOptions.EpochInterval, System.SetEpochInterval) are opt-in
// because they allocate. See docs/OBSERVABILITY.md for a walkthrough,
// including the live -telemetry HTTP endpoint.
//
// # The oblivious store
//
// NewObliviousStore returns a working Path ORAM over sealed memory
// (AES-128-CTR + HMAC-SHA-256): every access is one path read + one path
// write regardless of address, operation, or hit/miss, and any tampering
// with the untrusted memory image fails authentication.
package iroram
