// Oblivious store: the library as a real security primitive, not just a
// simulator. A functional Path ORAM keeps a small encrypted key-value store
// in untrusted memory: every access is one path read + one path write
// (indistinguishable regardless of key, operation, or hit/miss), all slots
// are AES-CTR encrypted and HMAC-authenticated, and any tampering with the
// memory image is detected.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"iroram"
)

func main() {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		log.Fatal(err)
	}
	store, err := iroram.NewObliviousStore(iroram.ObliviousStoreConfig{
		Blocks:    1024,
		BlockSize: 64,
		Key:       key,
		Seed:      42, // use a CSPRNG-derived seed in production
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d levels, every slot sealed with AES-128-CTR + HMAC-SHA-256\n\n",
		store.Levels())

	// Write a few records.
	records := map[uint64]string{
		7:   "alice: 1200 credits",
		42:  "bob: 430 credits",
		511: "carol: 99 credits",
	}
	for addr, val := range records {
		if err := store.Write(addr, []byte(val)); err != nil {
			log.Fatal(err)
		}
	}

	// Read them back — note the access counter: one path access per
	// operation, no matter which record or whether it exists.
	before := store.Accesses
	for _, addr := range []uint64{42, 7, 511} {
		val, err := store.Read(addr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read block %3d -> %q\n", addr, trimZero(val))
	}
	fmt.Printf("\n3 reads cost exactly %d path accesses (uniform, oblivious)\n",
		store.Accesses-before)

	// Tamper with the untrusted memory image: the next access through the
	// damaged slot fails authentication.
	img := store.MemoryImage()
	for i := range img {
		img[i][10] ^= 0xFF
	}
	if _, err := store.Read(42); err != nil {
		fmt.Printf("tampering detected: %v\n", err)
	} else {
		log.Fatal("tampering went undetected!")
	}
}

func trimZero(b []byte) string {
	i := len(b)
	for i > 0 && b[i-1] == 0 {
		i--
	}
	return string(b[:i])
}
