// Quickstart: run the same workload under the Baseline Path ORAM and under
// IR-ORAM, and print the speedup with a path-access breakdown — the
// library's one-minute tour.
package main

import (
	"fmt"
	"log"

	"iroram"
)

func main() {
	const requests = 8000
	cfgBase := iroram.TinyConfig().WithScheme(iroram.Baseline())
	cfgIR := iroram.TinyConfig().WithScheme(iroram.IROram())

	base, err := iroram.RunBenchmark(cfgBase, "dee", requests)
	if err != nil {
		log.Fatal(err)
	}
	ir, err := iroram.RunBenchmark(cfgIR, "dee", requests)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload: dee (write-heavy hash-table style, Table II)")
	fmt.Printf("geometry: L=%d levels, %d tree-top levels on-chip\n\n",
		cfgBase.ORAM.Levels, cfgBase.ORAM.TopLevels)

	report := func(name string, r iroram.Result, blocksPerPath int) {
		fmt.Printf("%-9s %12d cycles  %6d paths  %3d blocks/path  PosMap paths %5d\n",
			name, r.Cycles, r.ORAM.Paths.Total(), blocksPerPath, r.ORAM.PosMapPaths)
	}
	report("Baseline", base, cfgBase.ORAM.Z.BlocksPerPath(cfgBase.ORAM.TopLevels))
	report("IR-ORAM", ir, cfgIR.ORAM.Z.BlocksPerPath(cfgIR.ORAM.TopLevels))

	fmt.Printf("\nspeedup: %.2fx", float64(base.Cycles)/float64(ir.Cycles))
	fmt.Printf("  (IR-Alloc shrinks paths, IR-Stash serves %d requests from the\n",
		ir.ORAM.SStashHits)
	fmt.Printf("   double-indexed tree top with no PosMap work, IR-DWB converted %d\n",
		ir.ORAM.DWBConverted)
	fmt.Println("   dummy paths into early write-backs)")
}
