// Alloc sweep: explore the IR-Alloc design space (Section VI-B). Runs the
// four paper configurations plus the greedy Z-search on one workload and
// prints normalized time and background-eviction share — a miniature
// version of Fig 12.
package main

import (
	"fmt"
	"log"

	"iroram"
	"iroram/internal/config"
)

func main() {
	const (
		bench    = "xz"
		requests = 6000
	)
	base := iroram.TinyConfig()
	o := base.ORAM

	profiles := []struct {
		name string
		prof config.ZProfile
	}{
		{"Baseline(Z=4)", config.Uniform(o.Levels, 4)},
		{"IR-Alloc1", config.Alloc1Profile(o.Levels, o.TopLevels)},
		{"IR-Alloc2", config.Alloc2Profile(o.Levels, o.TopLevels)},
		{"IR-Alloc3", config.Alloc3Profile(o.Levels, o.TopLevels)},
		{"IR-Alloc4", config.Alloc4Profile(o.Levels, o.TopLevels)},
	}

	fmt.Printf("IR-Alloc design space on %q (L=%d, top %d on-chip)\n\n",
		bench, o.Levels, o.TopLevels)
	fmt.Printf("%-14s %-12s %6s %12s %10s %8s\n",
		"config", "profile", "PL", "cycles", "norm.time", "bgEvict")

	var baseCycles float64
	for _, p := range profiles {
		cfg := base.WithScheme(iroram.IRAlloc())
		cfg.ORAM.Z = p.prof
		res, err := iroram.RunBenchmark(cfg, bench, requests)
		if err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = float64(res.Cycles)
		}
		fmt.Printf("%-14s %-12s %6d %12d %10.3f %8d\n",
			p.name, shortDesc(p.prof, o.TopLevels), p.prof.BlocksPerPath(o.TopLevels),
			res.Cycles, float64(res.Cycles)/baseCycles, res.ORAM.BgEvictions)
	}

	// The paper's greedy search, run fresh for this geometry.
	opts := iroram.QuickExperiments()
	opts.Requests = 3000
	prof, desc, err := iroram.SearchZProfile(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy Z-search picked: %s (PL=%d)\n",
		desc, prof.BlocksPerPath(o.TopLevels))
}

func shortDesc(p config.ZProfile, top int) string {
	zs := ""
	for l := top; l < len(p); l++ {
		zs += fmt.Sprintf("%d", p[l])
	}
	return zs
}
