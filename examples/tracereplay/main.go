// Trace replay: generate a workload trace, write it to disk in the binary
// trace format, read it back, and replay it under two schemes — the
// workflow for driving the simulator with externally collected traces.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"iroram"
	"iroram/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "iroram-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "workload.trace")

	// 1. Generate and persist a trace.
	cfg := iroram.TinyConfig()
	gen := iroram.BenchmarkTrace("bla", cfg.ORAM.DataBlocks(), 7)
	reqs := trace.Collect(gen, 6000)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(f, "bla", reqs); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %d records to %s (%d bytes)\n", len(reqs), path, info.Size())

	// 2. Read it back.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	name, loaded, err := trace.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded trace %q: %d records\n\n", name, len(loaded))

	// 3. Replay under two schemes. A fixed trace file guarantees both see
	// byte-identical request streams.
	for _, sch := range []iroram.Scheme{iroram.Baseline(), iroram.IROram()} {
		sys, err := iroram.NewSystem(cfg.WithScheme(sch))
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Run(trace.NewSlice(name, loaded), len(loaded))
		fmt.Printf("%-9s %12d cycles, %5d paths, %4d PosMap paths\n",
			sch.Name, res.Cycles, res.ORAM.Paths.Total(), res.ORAM.PosMapPaths)
	}
}
