package iroram

import "iroram/internal/experiments"

// Figure names accepted by Experiment, in paper order.
var FigureNames = []string{
	"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "notp",
	"energy", "corun", "futurework", "ring",
	"ablation-sstash", "ablation-interval", "ablation-mlp", "ablation-plb",
}

// Experiment regenerates one paper table or figure by name ("table2",
// "fig2" ... "fig16", "notp" for the timing-protection ablation) at the
// given scale. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured values.
func Experiment(name string, opts ExperimentOptions) (*Table, error) {
	// Artifact records emitted by the drivers are labelled with the
	// experiment name they ran under.
	opts.Figure = name
	switch name {
	case "table2":
		return experiments.Table2(opts)
	case "fig2":
		return experiments.Fig2(opts)
	case "fig3":
		return experiments.Fig3(opts)
	case "fig4":
		return experiments.Fig4(opts)
	case "fig5":
		return experiments.Fig5(opts)
	case "fig6":
		return experiments.Fig6(opts)
	case "fig7":
		return experiments.Fig7(opts)
	case "fig10":
		return experiments.Fig10(opts)
	case "fig11":
		return experiments.Fig11(opts)
	case "fig12":
		return experiments.Fig12(opts)
	case "fig13":
		return experiments.Fig13(opts)
	case "fig14":
		return experiments.Fig14(opts)
	case "fig15":
		return experiments.Fig15(opts)
	case "fig16":
		return experiments.Fig16(opts, 3)
	case "notp":
		return experiments.NoTimingProtection(opts)
	case "energy":
		return experiments.Energy(opts)
	case "corun":
		return experiments.CoRun(opts, nil)
	case "futurework":
		return experiments.FutureWork(opts)
	case "ring":
		return experiments.Ring(opts)
	case "ablation-sstash":
		return experiments.SStashAssocAblation(opts, nil)
	case "ablation-interval":
		return experiments.IntervalAblation(opts, nil)
	case "ablation-mlp":
		return experiments.MLPAblation(opts, nil)
	case "ablation-plb":
		return experiments.PLBAblation(opts, nil)
	default:
		return nil, &UnknownExperimentError{Name: name}
	}
}

// UnknownExperimentError reports an unrecognized experiment name.
type UnknownExperimentError struct{ Name string }

// Error spells out the unknown name and where the valid ones live.
func (e *UnknownExperimentError) Error() string {
	return "iroram: unknown experiment " + e.Name + " (see FigureNames)"
}

// SearchZProfile runs the greedy IR-Alloc bucket-size search of Section
// IV-B at the given scale and returns the chosen profile with a compact
// description.
func SearchZProfile(opts ExperimentOptions) (ZProfile, string, error) {
	prof, _, err := experiments.ZSearch(opts)
	if err != nil {
		return nil, "", err
	}
	return prof, experiments.DescribeProfile(prof, opts.Base.ORAM.TopLevels), nil
}
