package iroram

import (
	"bytes"
	"testing"
)

func TestPublicQuickstart(t *testing.T) {
	cfg := TinyConfig().WithScheme(IROram())
	res, err := RunBenchmark(cfg, "gcc", 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.ORAM.ServedRequests == 0 {
		t.Fatalf("empty result %+v", res)
	}
}

func TestPublicSchemeSpeedup(t *testing.T) {
	base, err := RunBenchmark(TinyConfig().WithScheme(Baseline()), "xz", 2000)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := RunBenchmark(TinyConfig().WithScheme(IROram()), "xz", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Cycles >= base.Cycles {
		t.Errorf("IR-ORAM %d cycles >= Baseline %d", ir.Cycles, base.Cycles)
	}
}

func TestPublicUnknownBenchmark(t *testing.T) {
	if _, err := RunBenchmark(TinyConfig(), "nope", 10); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPublicExperimentDispatch(t *testing.T) {
	opts := QuickExperiments()
	opts.Requests = 800
	opts.Benchmarks = []string{"gcc"}
	tab, err := Experiment("fig7", opts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Title == "" || len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	if _, err := Experiment("fig99", opts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicAllFigureNamesDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure")
	}
	opts := QuickExperiments()
	opts.Requests = 600
	opts.Benchmarks = []string{"gcc", "lbm"}
	for _, name := range FigureNames {
		if _, err := Experiment(name, opts); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPublicObliviousStore(t *testing.T) {
	store, err := NewObliviousStore(ObliviousStoreConfig{
		Blocks: 128, BlockSize: 64, Key: bytes.Repeat([]byte{1}, 32), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(3, []byte("hello oram")); err != nil {
		t.Fatal(err)
	}
	got, err := store.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(got, "\x00")) != "hello oram" {
		t.Fatalf("got %q", got)
	}
}

func TestPublicZSearch(t *testing.T) {
	opts := QuickExperiments()
	opts.Requests = 800
	prof, desc, err := SearchZProfile(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != opts.Base.ORAM.Levels || desc == "" {
		t.Fatalf("profile %v desc %q", prof, desc)
	}
}

func TestPublicBenchmarksList(t *testing.T) {
	if len(Benchmarks()) != 13 {
		t.Fatalf("got %d benchmarks", len(Benchmarks()))
	}
}
