package iroram

import (
	"context"
	"errors"
	"sync"
	"time"

	"iroram/internal/cellcache"
	"iroram/internal/experiments"
	"iroram/internal/runner"
)

// CellCache memoizes simulation cell results across experiment drivers:
// identical (configuration, benchmark, requests, epoch-interval) cells
// simulate once and every later requester is served the stored Result.
// Attach one to ExperimentOptions.Cache, or let Sweep manage it. See
// internal/cellcache for the single-flight and immutability contracts.
type CellCache = cellcache.Cache

// NewCellCache returns an empty cross-figure cell cache.
func NewCellCache() *CellCache { return cellcache.New() }

// CellCounters tallies cell requests and cache hits across experiment
// batches; attach one to ExperimentOptions.Counters. All fields are atomic,
// so one value may be shared by concurrently running drivers.
type CellCounters = experiments.CellCounters

// CellLimit bounds how many simulation cells execute concurrently across
// every ExperimentOptions sharing it — the machine-wide budget when several
// figure drivers run at once. Attach via ExperimentOptions.Limit, or let
// Sweep manage it.
type CellLimit = runner.Limit

// NewCellLimit returns a limit admitting n concurrent cells; n <= 0 means
// GOMAXPROCS.
func NewCellLimit(n int) *CellLimit { return runner.NewLimit(n) }

// FigureRun reports the outcome of one experiment within a Sweep.
type FigureRun struct {
	// Name is the experiment name the run regenerated.
	Name string
	// Table holds the figure's rows and series; nil when Err is set.
	Table *Table
	// Err is the error that stopped the figure's sweep, nil on success.
	Err error
	// Elapsed is the figure's wall-clock time. Under an overlapped sweep it
	// includes time spent waiting for the shared worker budget.
	Elapsed time.Duration
	// Cells counts the simulation cells the figure requested (cached cells
	// included — they still drive progress and telemetry); Hits counts how
	// many of those were served from the shared cell cache. Both are
	// deterministic for every Jobs value and for Overlap on or off: an
	// overlapped sweep replays the figures' requested cell keys in Names
	// order after the drivers finish, so a duplicated cell's hit is always
	// attributed to the canonically-later figure — exactly the attribution
	// a sequential sweep produces — no matter which driver actually won the
	// single-flight race.
	Cells, Hits int64
}

// Sweep runs a set of experiments as one deduplicated batch. With Dedup the
// figures share a single cell-result cache, so a cell re-requested by
// several drivers (the Baseline row alone is rebuilt by table2, fig2, fig12
// and the ablations) simulates once; with Overlap every driver is submitted
// concurrently against one shared worker budget instead of running as
// serial barriers. Either way the printed tables and JSONL artifacts are
// byte-identical to a plain sequential, cache-less run — memoization and
// overlap change only where the wall-clock time goes. See the
// internal/experiments package doc for the determinism argument.
type Sweep struct {
	// Options scales every figure. Its Cache, Limit, Counters and Progress
	// fields are managed by Run and must be left nil; Artifacts and Flight,
	// when non-nil, receive every figure's records and traces in Names order
	// regardless of execution order.
	Options ExperimentOptions
	// Names lists the experiments to run, in delivery order. Empty means
	// FigureNames. Each must be a name Experiment accepts.
	Names []string
	// Dedup shares one cell-result cache across the sweep.
	Dedup bool
	// Overlap submits all drivers concurrently, bounded by one shared
	// worker budget of Options.Jobs cells (GOMAXPROCS when Jobs <= 0).
	// Tables are buffered and delivered in Names order.
	Overlap bool
	// ProgressFor, when non-nil, supplies the per-figure progress observer.
	// Observer calls are serialized across the whole sweep, even when
	// figures overlap.
	ProgressFor func(name string) func(Progress)
}

// Run executes the sweep and calls deliver once per figure in Names order.
// On failure, delivery stops after the failing figure's FigureRun and Run
// returns its error; under Overlap the first failure cancels the remaining
// drivers at the next cell boundary.
func (s Sweep) Run(deliver func(FigureRun)) error {
	names := s.Names
	if len(names) == 0 {
		names = FigureNames
	}
	var cache *cellcache.Cache
	if s.Dedup {
		cache = cellcache.New()
	}
	if !s.Overlap || len(names) == 1 {
		for _, name := range names {
			fr := s.runFigure(name, s.Options, cache, &CellCounters{})
			deliver(fr)
			if fr.Err != nil {
				return fr.Err
			}
		}
		return nil
	}
	return s.runOverlapped(names, cache, deliver)
}

// runFigure executes one experiment with the supplied counters and reports
// its outcome. The options value is taken by value: each figure gets its
// own copy to mutate.
func (s Sweep) runFigure(name string, opts ExperimentOptions, cache *cellcache.Cache,
	counters *CellCounters) FigureRun {
	opts.Cache = cache
	opts.Counters = counters
	if s.ProgressFor != nil {
		opts.Progress = s.ProgressFor(name)
	}
	start := time.Now()
	tab, err := Experiment(name, opts)
	return FigureRun{
		Name:    name,
		Table:   tab,
		Err:     err,
		Elapsed: time.Since(start),
		Cells:   counters.Cells.Load(),
		Hits:    counters.Hits.Load(),
	}
}

// runOverlapped fans every figure driver onto its own goroutine under one
// shared cell budget, then merges artifacts and delivers tables in
// canonical order. Output bytes match the sequential path exactly: each
// figure records into a private artifact log, merged in Names order.
func (s Sweep) runOverlapped(names []string, cache *cellcache.Cache, deliver func(FigureRun)) error {
	outer := context.Background()
	if s.Options.Context != nil {
		outer = s.Options.Context
	}
	ctx, cancel := context.WithCancel(outer)
	defer cancel()
	limit := runner.NewLimit(s.Options.Jobs)

	var progressMu sync.Mutex
	results := make([]FigureRun, len(names))
	logs := make([]*ArtifactLog, len(names))
	flogs := make([]*FlightLog, len(names))
	counters := make([]*CellCounters, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		opts := s.Options
		opts.Context = ctx
		opts.Limit = limit
		if opts.Artifacts != nil {
			logs[i] = &ArtifactLog{}
			opts.Artifacts = logs[i]
		}
		if opts.Flight != nil {
			flogs[i] = &FlightLog{}
			opts.Flight = flogs[i]
		}
		if s.ProgressFor != nil {
			// Serialize progress observation across figures so stderr
			// rendering and telemetry publication never race; install the
			// wrapped observer here and keep runFigure's own hook disabled.
			if obs := s.ProgressFor(name); obs != nil {
				opts.Progress = func(p Progress) {
					progressMu.Lock()
					defer progressMu.Unlock()
					obs(p)
				}
			}
		}
		counters[i] = &CellCounters{}
		wg.Add(1)
		go func(i int, name string, opts ExperimentOptions) {
			defer wg.Done()
			sub := s
			sub.ProgressFor = nil // observer already installed, pre-wrapped
			fr := sub.runFigure(name, opts, cache, counters[i])
			if fr.Err != nil {
				cancel() // first failure stops the others at a cell boundary
			}
			results[i] = fr
		}(i, name, opts)
	}
	wg.Wait()

	// The live Hits split is a race artifact: whichever driver requested a
	// duplicated cell first simulated it, and everyone else hit. Replay the
	// figures' requested keys in canonical Names order against one seen-set
	// to recover the attribution a sequential sweep would report — the first
	// canonical requester of a key misses, every later request (across or
	// within figures; order within one figure cannot matter) hits. The key
	// multisets are scheduling-independent, so so is this split.
	if cache != nil {
		seen := make(map[string]struct{})
		for i := range results {
			var hits int64
			for _, k := range counters[i].Keys() {
				if _, dup := seen[k]; dup {
					hits++
				} else {
					seen[k] = struct{}{}
				}
			}
			results[i].Hits = hits
		}
	}

	// Deliver the figures that completed before the first (canonical-order)
	// failure, then the failure itself. A driver cancelled because of
	// another driver's error reports context.Canceled; prefer the root
	// cause as the sweep's failing figure so cancellation noise never
	// masks it.
	firstBad, fail := len(results), -1
	for i := range results {
		if results[i].Err == nil {
			continue
		}
		if firstBad > i {
			firstBad = i
		}
		if fail < 0 || (errors.Is(results[fail].Err, context.Canceled) &&
			!errors.Is(results[i].Err, context.Canceled)) {
			fail = i
		}
	}
	for i := 0; i < firstBad; i++ {
		if s.Options.Artifacts != nil && logs[i] != nil {
			for _, rec := range logs[i].Records() {
				s.Options.Artifacts.Add(rec)
			}
		}
		if s.Options.Flight != nil && flogs[i] != nil {
			for _, c := range flogs[i].Cells() {
				s.Options.Flight.Add(c)
			}
		}
		deliver(results[i])
	}
	if fail >= 0 {
		deliver(results[fail])
		return results[fail].Err
	}
	return nil
}
